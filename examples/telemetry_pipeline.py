"""The acquisition chain: CAN frames -> controller -> cloud -> daily series.

Walks the Section-3 pipeline end to end on a simulated work week,
including the transport faults (dropped frames, lost and duplicated
uploads) that the data-cleaning stage exists for.

Run:  python examples/telemetry_pipeline.py
"""

from repro.dataprep import DataPreparationPipeline
from repro.telemetry import (
    CANBus,
    CloudStore,
    OnboardController,
    SECONDS_PER_DAY,
    SignalTrafficGenerator,
)

WORK_SCHEDULE_HOURS = [8.0, 7.5, 0.0, 9.0, 6.0, 8.5, 0.0]  # one week


def main() -> None:
    generator = SignalTrafficGenerator(sample_rate_hz=0.5, seed=0)
    bus = CANBus(drop_probability=0.05, corrupt_probability=0.01, seed=0)
    controller = OnboardController("exc-042", report_interval_s=4 * 3600.0)
    cloud = CloudStore(loss_probability=0.1, duplicate_probability=0.05, seed=0)

    print("Simulating one work week of CAN traffic...")
    frames_sent = 0
    for day, hours in enumerate(WORK_SCHEDULE_HOURS):
        start = day * SECONDS_PER_DAY + 6 * 3600.0  # work starts at 06:00
        if hours > 0:
            window = generator.generate_window(
                start, hours * 3600.0, working=True
            )
        else:
            window = generator.generate_window(start, 3600.0, working=False)
        for frame in window:
            bus.send(frame)
            frames_sent += 1
        controller.process_frames(bus.drain())

    reports = controller.flush(now=7 * SECONDS_PER_DAY)
    stored = cloud.ingest_many(reports)
    print(f"  frames sent        : {frames_sent}")
    print(f"  reports produced   : {len(reports)}")
    print(
        f"  reports stored     : {stored} "
        f"(lost {cloud.n_lost}, duplicated {cloud.n_duplicated})"
    )

    raw = cloud.daily_usage_array("exc-042", n_days=7)
    print("\nRaw daily series from the cloud (NaN = missing day):")
    for day, value in enumerate(raw):
        print(f"  day {day}: {value:10.0f}" if value == value else f"  day {day}:    missing")

    pipeline = DataPreparationPipeline(missing_policy="zero")
    prepared = pipeline.prepare_daily("exc-042", raw, t_v=2_000_000.0)
    report = prepared.cleaning_report
    print(
        f"\nCleaning report: {report.n_missing} missing, "
        f"{report.n_overflow} overflow, {report.n_negative} negative "
        f"({report.fraction_touched:.0%} of days touched)"
    )

    print("\nClean daily utilization vs scheduled work:")
    print(f"  {'day':4s} {'scheduled [h]':>14s} {'measured [h]':>13s}")
    for day, hours in enumerate(WORK_SCHEDULE_HOURS):
        measured = prepared.usage[day] / 3600.0
        marker = "" if abs(measured - hours) < 0.6 else "  <- transport fault"
        print(f"  {day:<4d} {hours:14.1f} {measured:13.1f}{marker}")

    print(
        "\nDays that deviate from the schedule lost an upload (hours "
        "vanish) or stored a duplicated one (hours double) — exactly the "
        "missing/inconsistent values Section 3's cleaning stage exists "
        "for.  Losses are unrecoverable; duplicates beyond 24 h/day are "
        "clipped by the cleaner."
    )


if __name__ == "__main__":
    main()
