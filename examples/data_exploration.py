"""Data exploration: the series behind the paper's Figures 1-3.

Prints compact ASCII renderings of the exploratory plots of Section 3.1:
daily utilization heterogeneity (Figure 1), the target sawtooth
(Figure 2), and the L-vs-D relationship within a cycle (Figure 3),
plus the fleet calibration report.

Run:  python examples/data_exploration.py
"""

import numpy as np

from repro.experiments import (
    ExperimentSetup,
    figure1_data,
    figure2_data,
    figure3_data,
)
from repro.fleet import calibrate

BARS = " .:-=+*#%@"


def sparkline(values, width=72) -> str:
    """Down-sample a series into a one-line character plot."""
    values = np.asarray(values, dtype=float)
    values = np.nan_to_num(values, nan=0.0)
    if values.size > width:
        chunks = np.array_split(values, width)
        values = np.array([chunk.mean() for chunk in chunks])
    top = values.max()
    if top <= 0:
        return " " * len(values)
    levels = np.minimum(
        (values / top * (len(BARS) - 1)).astype(int), len(BARS) - 1
    )
    return "".join(BARS[level] for level in levels)


def main() -> None:
    setup = ExperimentSetup(seed=0)

    print("Fleet calibration (vs the paper's published statistics):")
    print(calibrate(setup.fleet).summary())

    print("\n--- Figure 1: daily utilization U_v(t), first 90 days ---")
    for s in figure1_data(setup, n_days=90):
        profile = setup.fleet[s.label].spec.profile.name
        print(f"{s.label} ({profile})")
        print(f"  {sparkline(s.y)}")
        working = s.y[s.y > 0]
        print(
            f"  working days: {working.size}/90, "
            f"mean {working.mean():,.0f} s, max {s.y.max():,.0f} s"
        )

    print("\n--- Figure 2: days to maintenance D_v(t), full span ---")
    for s in figure2_data(setup):
        print(f"{s.label}")
        print(f"  {sparkline(s.y)}")
        finite = s.y[np.isfinite(s.y)]
        print(
            f"  cycles completed: {int((finite == 0).sum())}, "
            f"max D: {np.nanmax(s.y):.0f} days"
        )

    print("\n--- Figure 3: L_v(t) vs D_v(t), one cycle ---")
    for s in figure3_data(setup):
        flat_steps = int((np.diff(s.x) == 0).sum())
        slope = (s.y[0] - s.y[-1]) / (s.x[0] - s.x[-1] + 1e-12)
        print(
            f"{s.label}: cycle of {len(s.x)} days, "
            f"{flat_steps} zero-usage steps, "
            f"~{1 / (slope * 86400) if slope else 0:.2f} day-equivalents "
            "of budget burned per calendar day"
        )

    print(
        "\nReading: utilization is heterogeneous and non-stationary, and "
        "zero-usage runs put vertical steps into D(L) — which is why the "
        "paper evaluates with E_MRE near the deadline, where usage is "
        "steady and predictions actionable."
    )


if __name__ == "__main__":
    main()
