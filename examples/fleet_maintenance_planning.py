"""Fleet-wide maintenance planning — the deployment scenario.

The paper's application: "a data-driven application to automatically
schedule the periodic maintenance operations of industrial vehicles."
This example trains one predictor per vehicle, produces a fleet-wide
forecast, and builds a capacity-constrained workshop schedule.

Run:  python examples/fleet_maintenance_planning.py
"""

import datetime as dt

from repro.core import (
    FleetMaintenancePlanner,
    VehicleSeries,
    categorize,
    make_predictor,
)
from repro.dataprep import build_relational_dataset
from repro.fleet import FleetGenerator

WINDOW = 6
TODAY = dt.date(2019, 9, 30)  # the day data acquisition ends


def train_fleet_predictors(fleet):
    """One RF per vehicle, trained on its full labeled history."""
    predictors = {}
    for vehicle in fleet:
        series = VehicleSeries.from_vehicle(vehicle)
        dataset = build_relational_dataset(series.bundle, window=WINDOW)
        predictor = make_predictor("RF")
        predictor.fit(dataset)
        predictors[vehicle.vehicle_id] = (series, predictor)
    return predictors


def main() -> None:
    fleet = FleetGenerator(n_vehicles=12, seed=3).generate()
    print(f"Training per-vehicle predictors for {len(fleet)} vehicles...")
    predictors = train_fleet_predictors(fleet)

    planner = FleetMaintenancePlanner(daily_capacity=2, horizon_days=45)
    forecasts = []
    print(
        f"\n{'vehicle':9s} {'type':13s} {'category':9s} "
        f"{'days left':>10s} {'80% band':>14s}"
    )
    for vehicle_id, (series, predictor) in predictors.items():
        # RF exposes per-tree quantiles: carry an 80 % uncertainty band.
        forecast = planner.forecast_vehicle(
            series, predictor, window=WINDOW, quantiles=(0.1, 0.9)
        )
        forecasts.append(forecast)
        band = (
            f"[{forecast.days_lower:.0f}, {forecast.days_upper:.0f}]"
            if forecast.days_lower is not None
            else "-"
        )
        print(
            f"{vehicle_id:9s} "
            f"{fleet[vehicle_id].spec.vehicle_type:13s} "
            f"{categorize(series).value:9s} "
            f"{forecast.days_to_maintenance:10.1f} {band:>14s}"
        )

    # Conservative planning: uncertain vehicles book against the early
    # edge of their band, so a surprise never finds the workshop full.
    schedule = planner.build_schedule(forecasts, today=TODAY, conservative=True)
    print(
        f"\nWorkshop schedule from {TODAY} "
        f"(capacity {planner.daily_capacity}/day, "
        f"horizon {planner.horizon_days} days):\n"
    )
    print(planner.render(schedule))

    pushed = [s for s in schedule if s.slack_days > 0]
    if pushed:
        print(
            f"\n{len(pushed)} vehicle(s) pushed past their due date by "
            "the capacity constraint."
        )


if __name__ == "__main__":
    main()
