"""Quickstart: predict a vehicle's next maintenance in ~40 lines.

Generates the calibrated synthetic fleet, prepares one vehicle, trains
the paper's best model (Random Forest on windowed features, trained on
near-deadline records), and reports the paper's error metrics.

Run:  python examples/quickstart.py
"""

from repro.core import (
    OldVehicleConfig,
    OldVehicleExperiment,
    VehicleSeries,
)
from repro.fleet import FleetGenerator


def main() -> None:
    # 1. A fleet standing in for the paper's 24 Tierra vehicles.
    fleet = FleetGenerator(seed=0).generate()
    vehicle = fleet["v01"]
    print(
        f"Vehicle {vehicle.vehicle_id}: {vehicle.spec.vehicle_type} "
        f"({vehicle.spec.profile.name}), {vehicle.n_days} days of history"
    )

    # 2. The problem instance: usage series + maintenance budget T_v.
    series = VehicleSeries.from_vehicle(vehicle)
    print(
        f"Completed maintenance cycles: {len(series.completed_cycles)} "
        f"(budget T_v = {series.t_v:,.0f} s per cycle)"
    )

    # 3. Train per-vehicle predictors (Section 4.3): first 70 % of days
    #    train, the rest test; training restricted to the last 29 days
    #    of each cycle; W = 6 past-usage lags as features.
    config = OldVehicleConfig(window=6, restrict_to_horizon=True)
    experiment = OldVehicleExperiment(config)

    print("\nPer-algorithm test errors for this vehicle:")
    print(f"{'model':6s} {'E_MRE(1..29)':>14s} {'E_Global':>10s}")
    for algorithm in ("BL", "LR", "LSVR", "RF", "XGB"):
        result = experiment.run_vehicle(series, algorithm)
        print(
            f"{algorithm:6s} {result.e_mre:14.2f} {result.e_global:10.2f}"
        )

    # 4. A live prediction from the latest observed day.
    from repro.core import FleetMaintenancePlanner, make_predictor
    from repro.dataprep import build_relational_dataset

    train = build_relational_dataset(
        series.bundle, window=6, day_range=(0, int(0.7 * series.n_days))
    )
    predictor = make_predictor("RF")
    predictor.fit(train)
    forecast = FleetMaintenancePlanner.forecast_vehicle(
        series, predictor, window=6
    )
    print(
        f"\nToday's forecast for {series.vehicle_id}: next maintenance in "
        f"~{forecast.days_to_maintenance:.0f} days "
        f"({forecast.usage_left:,.0f} s of budget left)"
    )


if __name__ == "__main__":
    main()
