"""Running the system as a deployed service.

The paper closes with "the present application [is] under deployment,
thus enabling further tests, tunings, and extensions".  This example
replays the fleet's history day by day through the online
:class:`~repro.serving.MaintenancePredictionService`: vehicles are
routed by category (per-vehicle / similarity / unified models), models
retrain when cycles complete, fitted models are persisted, and resolved
forecasts feed the drift monitor.

Run:  python examples/deployment_service.py
"""

import tempfile

from repro.core import VehicleCategory
from repro.fleet import FleetGenerator
from repro.serving import DriftMonitor, MaintenancePredictionService, ModelStore


def main() -> None:
    fleet = FleetGenerator(n_vehicles=6, seed=5).generate()
    store_dir = tempfile.mkdtemp(prefix="repro-models-")
    monitor = DriftMonitor(threshold_days=10.0, min_samples=3)
    service = MaintenancePredictionService(
        t_v=fleet.t_v,
        window=3,
        algorithm="XGB",
        store=ModelStore(store_dir),
        monitor=monitor,
    )

    # v02..v05 are the established fleet; warm them up with history.
    veterans = fleet.vehicles[1:5]
    newcomer = fleet.vehicles[0]  # a steady worker joining from day 0
    for vehicle in veterans:
        service.register_vehicle(vehicle.vehicle_id)
        service.ingest_series(vehicle.vehicle_id, vehicle.usage[:900])

    # A newcomer joins the fleet with no history; replay it monthly.
    service.register_vehicle(newcomer.vehicle_id)
    print(f"Newcomer {newcomer.vehicle_id} joins the fleet.\n")
    print(f"{'day':>5s} {'category':10s} {'strategy':12s} {'pred. days left':>16s}")
    for day in range(0, 360, 30):
        service.ingest_series(
            newcomer.vehicle_id, newcomer.usage[day : day + 30]
        )
        if service.series(newcomer.vehicle_id).n_days <= service.window:
            continue
        forecast = service.predict(newcomer.vehicle_id)
        print(
            f"{day + 30:>5d} {forecast.category.value:10s} "
            f"{forecast.strategy:12s} {forecast.days_to_maintenance:16.1f}"
        )

    assert service.category(newcomer.vehicle_id) is VehicleCategory.OLD
    print("\nThe newcomer graduated through new -> semi-new -> old,")
    print("switching from the unified model to a similarity donor to its")
    print("own per-vehicle model along the way.")

    # Veterans keep operating: weekly forecasts over another 200 days,
    # resolved into the monitor as their cycles complete.
    veteran = veterans[0]
    for day in range(900, 1100):
        if (day - 900) % 7 == 0:
            service.predict(veteran.vehicle_id)
        service.ingest(veteran.vehicle_id, float(veteran.usage[day]))

    print(f"\nPersisted model artifacts in {store_dir}:")
    for key in service.store.keys():
        versions = service.store.versions(key)
        print(f"  {key:28s} versions {versions}")

    print("\nDrift monitor summary (resolved forecasts):")
    for vehicle_id, stats in sorted(monitor.summary().items()):
        print(
            f"  {vehicle_id}: n={stats['n']:.0f} "
            f"mae={stats['mae']:.1f} bias={stats['bias']:+.1f}"
        )
    alerts = monitor.alerts()
    print(f"\nActive drift alerts: {len(alerts)}")
    for alert in alerts:
        print(f"  {alert}")
    print(
        "\nNote: these residuals pool forecasts made far from the "
        "deadline, where errors are proportionally larger — the very "
        "observation that led the paper to evaluate with E_MRE over the "
        "last 29 days.  A production threshold would weight residuals "
        "by forecast horizon the same way."
    )


if __name__ == "__main__":
    main()
