"""Cold start: predicting for vehicles without enough history.

Reproduces the Section 4.4 scenario interactively: a vehicle that has
only partially completed its first maintenance cycle gets predictions
from (a) its own past average (the baseline), (b) one model unified over
the fleet's first cycles (``Model_Uni``), and (c) a model trained on the
single most similar fleet vehicle (``Model_Sim``).

Run:  python examples/coldstart_new_vehicle.py
"""

from repro.core import (
    ColdStartConfig,
    ColdStartExperiment,
    VehicleSeries,
    aggregate_by_label,
    categorize,
    half_cycle_day,
)
from repro.fleet import FleetGenerator


def main() -> None:
    fleet = FleetGenerator(seed=0).generate()
    all_series = [VehicleSeries.from_vehicle(v) for v in fleet]

    experiment = ColdStartExperiment(ColdStartConfig(window=0, seed=0))
    train, test = experiment.split_fleet(all_series)
    print(
        f"Fleet split: {len(train)} training vehicles / "
        f"{len(test)} test vehicles (paper: 17 / 7)\n"
    )

    # A close-up on one test vehicle's cold-start timeline.
    target = test[0]
    half = half_cycle_day(target)
    first_cycle_end = target.first_cycle().end
    print(f"Test vehicle {target.vehicle_id}:")
    print(f"  new       : days 0 .. {half - 1} (< T_v/2 used)")
    print(f"  semi-new  : days {half} .. {first_cycle_end}")
    print(f"  old       : day {first_cycle_end + 1} onward")
    print(f"  category today: {categorize(target).value}\n")

    # Which fleet vehicle does Model_Sim pick as a donor?
    predictor, donor_id = experiment.fit_similarity(target, train, "RF")
    donor_profile = fleet[donor_id].spec.profile.name
    target_profile = fleet[target.vehicle_id].spec.profile.name
    print(
        f"Model_Sim donor for {target.vehicle_id} ({target_profile}): "
        f"{donor_id} ({donor_profile})\n"
    )

    # The full Table-3 style evaluation over all test vehicles.
    algorithms = ("LR", "LSVR", "RF", "XGB")
    print("Semi-new vehicles, E_MRE({1..29}) per method:")
    semi = experiment.run_semi_new(train, test, algorithms)
    for label, value in sorted(
        aggregate_by_label(semi, "e_mre").items(), key=lambda kv: kv[1]
    ):
        print(f"  {label:10s} {value:6.1f}")

    print("\nNew vehicles, E_Global (Model_Uni only):")
    new = experiment.run_new(train, test, algorithms)
    for label, value in sorted(
        aggregate_by_label(new, "e_global").items(), key=lambda kv: kv[1]
    ):
        print(f"  {label:10s} {value:6.1f}")

    print(
        "\nReading: the own-history baseline collapses (first cycles ramp "
        "up, so the first-half average underestimates the burn rate), "
        "while donor/unified ML models stay useful."
    )


if __name__ == "__main__":
    main()
