"""Figure 3: D_v(t) against L_v(t) within one cycle.

The paper's reading: near-constant slope where utilization is steady,
vertical steps where zero-usage runs make days pass without burning
budget — the reason E_MRE focuses evaluation near the deadline.
"""

import numpy as np

from repro.experiments.figures_data import figure3_data
from repro.experiments.reporting import format_table


def test_figure3(benchmark, setup, report):
    series = benchmark.pedantic(figure3_data, args=(setup,), rounds=1)

    rows = []
    for s in series:
        flat = int((np.diff(s.x) == 0).sum())  # idle days: L unchanged
        rows.append(
            (
                s.label,
                len(s.x),
                float(s.y.max()),
                flat,
            )
        )
    report(
        "figure3",
        format_table(
            ["vehicle", "cycle days", "D at cycle start", "vertical steps "
             "(zero-usage days)"],
            rows,
            title="Figure 3: L_v(t) vs D_v(t) within a single cycle",
        ),
    )

    for s in series:
        # L and D decrease together from (T_v, D_max) to (>0, 0).
        assert s.x[0] == 2_000_000.0
        assert s.y[-1] == 0.0
        assert np.all(np.diff(s.x) <= 0)
        assert np.all(np.diff(s.y) == -1)
