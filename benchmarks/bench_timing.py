"""Section 5.1 timing paragraph: per-vehicle training cost.

Reproduced shape (paper, on an i7-8750H: XGB 30.4 s > RF 8.1 s > LR
3.8 s > LSVR 2.8 s ~ BL 2.5 s, grid-search included): the ensembles cost
an order of magnitude more than the baseline, and cost grows with the
feature window.  Absolute seconds differ — different machine, smaller
bench grids — the ordering is the claim.
"""

from repro.experiments.timing import run_timing


def test_timing(benchmark, setup, report):
    result = benchmark.pedantic(
        run_timing,
        args=(setup,),
        kwargs={"windows": (0, 6, 12)},
        rounds=1,
    )
    report("timing", result.render())

    at_zero = result.at_window(0)
    # Ensembles are the slow tier; BL the fast one.
    assert at_zero["RF"] > at_zero["BL"]
    assert at_zero["XGB"] > at_zero["BL"]
    assert at_zero["RF"] > at_zero["LR"]

    # Cost grows with the window for the ensembles.
    for key in ("RF", "XGB"):
        curve = result.fit_seconds[key]
        assert curve[12] > curve[0]
