"""Durability overhead benchmark: write-ahead journal on the ingest path.

Measures what crash safety costs on the fleet ingest hot path
(``FleetEngine.ingest_day`` — one bulk CRC-framed ``day`` record per
fleet-day, base64 float64 payload, group-commit fsync batching), with
a tighter variant of ``bench_gateway.py``'s paired interleaved
methodology: one engine, one process, one warmed cycle cache — and
the journal toggled on/off on *alternating days* within each window,
so the two modes share engine state and the machine's
thermal/frequency state down to sub-millisecond granularity.  The
regression is judged on each mode's *fastest-quartile* mean (the
best-of-K idiom from ``bench_gateway.py``, widened to a quartile for
convergence); on shared hardware whole windows dip ±25% under
co-tenancy, noise that dwarfs the overhead itself.

Two numbers are produced, one gated:

* **journal overhead** on the ingest hot path must stay **< 10%** of
  journal-off throughput — the bulk ``day`` record exists precisely to
  amortize framing/CRC/write cost over the whole fleet, where a
  per-reading record would cost several microseconds against a ~1 us
  guarded-append baseline;
* **checkpoint cost** — a full ``state_dict`` snapshot written
  atomically with checksum sidecar — measured separately as
  stop-the-world seconds + bytes, because checkpoints are periodic
  (every ``checkpoint_every`` records), not per-reading.

Run directly (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_durability.py [--quick]

``--quick`` is the ~5 s CI sizing.
"""

from __future__ import annotations

import argparse
import gc
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.durability import CheckpointManager, WriteAheadJournal
from repro.serving import EngineConfig, FleetEngine, IngestionGuard

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

T_V = 2_000_000.0
FSYNC_EVERY = 256


def build_engine(n_vehicles: int) -> tuple[FleetEngine, list[str]]:
    engine = FleetEngine(
        t_v=T_V,
        window=0,
        algorithm="LR",
        guard=IngestionGuard(),
        config=EngineConfig(max_workers=1, executor="serial"),
    )
    ids = [f"v{i:03d}" for i in range(n_vehicles)]
    engine.register_fleet(ids)
    return engine, ids


def paired_window(
    engine: FleetEngine,
    journal: WriteAheadJournal,
    ids: list[str],
    values: np.ndarray,
    start_day: int,
) -> tuple[list[float], list[float]]:
    """One paired window: journal toggled on/off on alternating days.

    ``bench_gateway.py`` pairs whole measurement windows; here the
    pairing is per *day* — the journal is attached on even days and
    detached on odd days, and each day is timed individually.  At a
    few hundred us per fleet-day the machine's co-tenancy/frequency
    state is effectively identical for adjacent days, which matters
    because window-level noise on shared hardware (±25% between
    consecutive windows) dwarfs the overhead being measured.
    Journaled days pay their full steady-state cost inside the timed
    region: one bulk ``day`` record per call, plus a group-commit
    fsync whenever the running append count crosses ``fsync_every``
    (amortized 1-in-``fsync_every``, never a forced fsync per
    window).  Returns (journal-on day times, journal-off day times).
    """
    service = engine.service
    times: dict[bool, list[float]] = {True: [], False: []}
    # The per-day batch dicts churn the allocator enough to trigger
    # cyclic-GC passes mid-window; those pauses land on whichever
    # mode's day is running and swing individual ratios 3x.  Collect
    # once up front, then keep the collector out of the timed region.
    gc.collect()
    gc.disable()
    try:
        for row, day_values in enumerate(values):
            journaled = row % 2 == 0
            service.journal = journal if journaled else None
            batch = dict(zip(ids, day_values))
            started = time.perf_counter()
            engine.ingest_day(batch, day=start_day + row)
            times[journaled].append(time.perf_counter() - started)
    finally:
        gc.enable()
    service.journal = None
    journal.sync()  # tail sync outside the timed region
    return times[True], times[False]


def measure_checkpoint(
    service: MaintenancePredictionService, root: Path, reps: int
) -> tuple[float, int]:
    """Stop-the-world checkpoint cost: best of ``reps`` snapshots."""
    manager = CheckpointManager(root, keep=2)
    best = float("inf")
    size = 0
    for rep in range(reps):
        started = time.perf_counter()
        path = manager.save(service.state_dict(), seq=rep + 1)
        best = min(best, time.perf_counter() - started)
        size = path.stat().st_size
    return best, size


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--vehicles",
        type=int,
        default=1024,
        help="fleet width; the bulk day record carries a ~20 us fixed "
        "framing/CRC cost that amortizes below the 10%% budget only at "
        "realistic fleet scale (the paper's deployment is thousands of "
        "vehicles)",
    )
    parser.add_argument(
        "--days",
        type=int,
        default=32,
        help="days ingested per measurement window",
    )
    parser.add_argument(
        "--pairs", type=int, default=4, help="journal on/off window pairs"
    )
    parser.add_argument(
        "--quick", action="store_true", help="CI sizing: ~5 s total"
    )
    parser.add_argument(
        "--no-enforce",
        action="store_true",
        help="report only; skip the <10%% overhead assertion",
    )
    args = parser.parse_args(argv)

    n_vehicles, days, pairs = args.vehicles, args.days, args.pairs
    if args.quick:
        n_vehicles, days, pairs = 1024, 16, 2

    rng = np.random.default_rng(0)
    engine, ids = build_engine(n_vehicles)
    service = engine.service
    on_times: list[float] = []
    off_times: list[float] = []
    day = 0
    with tempfile.TemporaryDirectory() as tmp:
        journal = WriteAheadJournal(
            Path(tmp) / "journal", fsync_every=FSYNC_EVERY
        )

        def window(record: bool) -> None:
            nonlocal day
            values = rng.uniform(
                10_000, 28_000, size=(days, len(ids))
            )
            on, off = paired_window(engine, journal, ids, values, day)
            day += days
            if record:
                on_times.extend(on)
                off_times.extend(off)

        window(record=False)  # warm-up: caches, page cache, turbo
        for _ in range(pairs):
            window(record=True)
        stats = journal.stats()
        journal.close()

        checkpoint_s, checkpoint_bytes = measure_checkpoint(
            service, Path(tmp) / "checkpoints", reps=3
        )

    # Gate on the mean of each mode's fastest-quartile days — the
    # ``bench_gateway.py`` best-of-K idiom widened to a quartile.  A
    # mean or per-window aggregate lets a single co-tenancy stall
    # that lands on one mode's day swing the verdict by more than the
    # overhead being measured, while the single fastest day converges
    # too slowly (best-of-64 at ~1 ms/day still spreads ±5% run to
    # run); averaging the clean fastest quarter of each mode is
    # stable at ±2-3%.  The per-adjacent-day-pair ratio quartiles are
    # reported alongside as a noise diagnostic.
    def fast_quartile(times: list[float]) -> float:
        fastest = sorted(times)[: max(1, len(times) // 4)]
        return sum(fastest) / len(fastest)

    ratios = sorted(on / off for on, off in zip(on_times, off_times))
    regression = fast_quartile(on_times) / fast_quartile(off_times) - 1.0
    on_rate = n_vehicles / fast_quartile(on_times)
    off_rate = n_vehicles / fast_quartile(off_times)
    appends = stats["records_appended"]
    lines = [
        "Durability overhead benchmark",
        "",
        f"{n_vehicles} vehicles x {days} days per window, "
        f"{pairs} windows of alternating journal-on/off days, "
        f"fsync_every={FSYNC_EVERY}",
        "",
        f"journal off : {off_rate:10.0f} readings/s (fastest-quartile)",
        f"journal on  : {on_rate:10.0f} readings/s (fastest-quartile)",
        "per-day-pair ratio quartiles: "
        + ", ".join(
            f"{ratios[i]:.3f}"
            for i in (0, len(ratios) // 4, len(ratios) // 2,
                      3 * len(ratios) // 4, len(ratios) - 1)
        )
        + " (min/q1/median/q3/max)",
        f"fastest-quartile regression: {regression * 100:+.1f}%",
        "",
        f"journal     : {appends} records appended, {stats['fsyncs']} "
        f"fsyncs ({appends / max(1, stats['fsyncs']):.0f} records per "
        "group commit)",
        f"checkpoint  : {checkpoint_s * 1000:.1f} ms stop-the-world, "
        f"{checkpoint_bytes} bytes "
        f"({n_vehicles} vehicles, {day} days of state)",
    ]
    text = "\n".join(lines)
    print(text)
    if not args.quick:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "durability.txt").write_text(text + "\n")
        print(f"wrote {RESULTS_DIR / 'durability.txt'}")
    if regression >= 0.10 and not args.no_enforce:
        print(
            f"FAIL: journaling costs {regression * 100:.1f}% ingest "
            "throughput (the budget is < 10%)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
