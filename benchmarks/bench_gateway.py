"""Gateway load benchmark: micro-batching throughput vs tail latency.

Closed-loop load generator against a real listening
:class:`~repro.serving.gateway.FleetGateway`: ``--clients`` concurrent
HTTP clients (keep-alive connections) each fire ``GET
/v1/predict/{vehicle_id}`` back-to-back for ``--seconds``, cycling over
the fleet.  The run is repeated per micro-batch window, including the
window = 0 reference (every request dispatched alone).

Three claims are enforced, not just reported:

* **zero 5xx** responses under full load (plus zero 429/504 at this
  sizing — the queue and deadlines are provisioned for the client
  count);
* every forecast body is **bit-identical** to a sequential
  ``MaintenancePredictionService.predict`` on the same history
  (exact ``Forecast`` equality after the JSON round-trip);
* unless ``--no-enforce``, micro-batching (window > 0) reaches
  **strictly higher throughput** than window = 0, and ``/v1/metrics``
  is non-empty at the end of every run;
* request tracing at the gateway's default configuration (anonymous
  traffic head-sampled 1-in-``trace_sample_every``; client-identified
  requests always traced) costs **< 5% throughput**: one long-lived
  gateway serves alternating tracing-on / tracing-off measurement
  windows (same engine, same connections-per-window, same process),
  and the regression is judged on the *best* window of each mode — on
  shared hardware individual windows dip 10–20% under co-tenancy and
  frequency scaling, noise that dwarfs the overhead itself, while the
  best of K windows converges on the machine's true capability in
  each mode.  Per-pair ratios are still printed for diagnostics.
  Forecasts stay bit-identical in both modes.

Run directly (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_gateway.py [--smoke]

``--smoke`` is the ~10 s CI sizing.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path

import numpy as np

from repro.serving import FleetEngine, MaintenancePredictionService
from repro.serving.gateway import FleetGateway, GatewayConfig
from repro.serving.service import Forecast

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

T_V = 200_000.0
WINDOW = 0
ALGORITHM = "LR"
N_DAYS = 40


def synthetic_fleet(n_vehicles: int) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(0)
    return {
        f"v{i:03d}": rng.uniform(12_000, 26_000, size=N_DAYS)
        for i in range(n_vehicles)
    }


def build_engine(usage: dict[str, np.ndarray]) -> FleetEngine:
    engine = FleetEngine(t_v=T_V, window=WINDOW, algorithm=ALGORITHM)
    engine.register_fleet(usage)
    for vehicle_id, series in usage.items():
        engine.ingest_history(vehicle_id, series)
    return engine


def serial_reference(usage: dict[str, np.ndarray]) -> dict[str, Forecast]:
    service = MaintenancePredictionService(
        t_v=T_V, window=WINDOW, algorithm=ALGORITHM
    )
    for vehicle_id in sorted(usage):
        service.register_vehicle(vehicle_id)
        service.ingest_series(vehicle_id, usage[vehicle_id])
    return {
        vehicle_id: service.predict(vehicle_id) for vehicle_id in sorted(usage)
    }


class RunStats:
    def __init__(self):
        self.statuses: dict[int, int] = {}
        self.latencies: list[float] = []
        self.mismatches = 0

    def record(self, status: int, seconds: float) -> None:
        self.statuses[status] = self.statuses.get(status, 0) + 1
        self.latencies.append(seconds)

    @property
    def total(self) -> int:
        return sum(self.statuses.values())

    def errors_5xx(self) -> int:
        return sum(n for code, n in self.statuses.items() if code >= 500)

    def percentile(self, q: float) -> float:
        if not self.latencies:
            return float("nan")
        return float(np.quantile(np.asarray(self.latencies), q))


async def _http_get(reader, writer, path: str):
    writer.write(f"GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n".encode())
    await writer.drain()
    status = int((await reader.readline()).split()[1])
    length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n"):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value)
    body = await reader.readexactly(length) if length else b""
    return status, body


async def _client(
    host: str,
    port: int,
    vehicle_ids: list[str],
    offset: int,
    stop_at: float,
    stats: RunStats,
    reference: dict[str, Forecast],
) -> None:
    loop = asyncio.get_running_loop()
    reader, writer = await asyncio.open_connection(host, port)
    index = offset
    try:
        while loop.time() < stop_at:
            vehicle_id = vehicle_ids[index % len(vehicle_ids)]
            index += 1
            started = loop.time()
            status, body = await _http_get(
                reader, writer, f"/v1/predict/{vehicle_id}"
            )
            stats.record(status, loop.time() - started)
            if status == 200:
                served = Forecast.from_dict(json.loads(body))
                if served != reference[vehicle_id]:
                    stats.mismatches += 1
    finally:
        writer.close()


async def run_load(
    usage: dict[str, np.ndarray],
    reference: dict[str, Forecast],
    *,
    batch_window_s: float,
    clients: int,
    seconds: float,
    tracing: bool = True,
) -> tuple[RunStats, dict, float]:
    engine = build_engine(usage)
    gateway = FleetGateway(
        engine,
        GatewayConfig(
            port=0,
            batch_window_s=batch_window_s,
            max_batch_size=max(64, clients),
            max_queue=max(256, 4 * clients),
            default_deadline_s=30.0,
            tracing=tracing,
        ),
    )
    host, port = await gateway.serve()
    loop = asyncio.get_running_loop()
    vehicle_ids = sorted(usage)
    stats = RunStats()
    started = loop.time()
    stop_at = started + seconds
    await asyncio.gather(
        *(
            _client(host, port, vehicle_ids, i, stop_at, stats, reference)
            for i in range(clients)
        )
    )
    elapsed = loop.time() - started
    _status, metrics_body = await _http_get(
        *(await asyncio.open_connection(host, port)), "/v1/metrics"
    )
    metrics = json.loads(metrics_body)
    await gateway.shutdown()
    return stats, metrics, elapsed


async def run_overhead(
    usage: dict[str, np.ndarray],
    reference: dict[str, Forecast],
    *,
    batch_window_s: float,
    clients: int,
    window_seconds: float,
    pairs: int,
) -> tuple[list[float], list[float], list[str]]:
    """Tracing throughput overhead via paired interleaved windows.

    One engine, one gateway, one process: tracing is toggled on the
    live tracer between back-to-back measurement windows, so each
    on/off pair shares engine state, warmed caches and (approximately)
    the machine's thermal/frequency state of the moment.  The gateway
    runs its default trace sampling — the load clients are anonymous,
    so tracing-on windows record 1-in-``trace_sample_every`` requests,
    which is exactly the configuration the <5% claim is about (full
    per-request tracing is a debugging posture, forced per request by
    supplying an id; see EXPERIMENTS.md for its measured cost).
    Returns the per-window rates plus any correctness failures.
    """
    engine = build_engine(usage)
    gateway = FleetGateway(
        engine,
        GatewayConfig(
            port=0,
            batch_window_s=batch_window_s,
            max_batch_size=max(64, clients),
            max_queue=max(256, 4 * clients),
            default_deadline_s=30.0,
            tracing=True,
        ),
    )
    host, port = await gateway.serve()
    loop = asyncio.get_running_loop()
    vehicle_ids = sorted(usage)
    failures: list[str] = []
    rates: dict[bool, list[float]] = {True: [], False: []}

    async def window(traced: bool, record: bool) -> None:
        gateway.obs.tracer.enabled = traced
        stats = RunStats()
        started = loop.time()
        stop_at = started + window_seconds
        await asyncio.gather(
            *(
                _client(
                    host, port, vehicle_ids, i, stop_at, stats, reference
                )
                for i in range(clients)
            )
        )
        elapsed = loop.time() - started
        if not record:
            return
        rates[traced].append(stats.total / elapsed)
        label = "on" if traced else "off"
        if stats.errors_5xx():
            failures.append(
                f"tracing {label} window served {stats.errors_5xx()} 5xx"
            )
        if stats.mismatches:
            failures.append(
                f"tracing {label} window served {stats.mismatches} "
                "forecasts that diverged from the serial service"
            )

    await window(True, record=False)  # warm-up: training, caches, turbo
    for _ in range(pairs):
        await window(True, record=True)
        await window(False, record=True)
    await gateway.shutdown()
    return rates[True], rates[False], failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vehicles", type=int, default=24)
    parser.add_argument("--clients", type=int, default=64)
    parser.add_argument(
        "--seconds", type=float, default=6.0, help="closed-loop duration per window"
    )
    parser.add_argument(
        "--windows-ms",
        type=float,
        nargs="+",
        default=[0.0, 2.0, 5.0],
        help="micro-batch windows to sweep (0 = no batching reference)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI sizing: ~10 s total, two windows",
    )
    parser.add_argument(
        "--no-enforce",
        action="store_true",
        help="report only; skip the throughput/5xx/identity assertions",
    )
    args = parser.parse_args(argv)

    windows_ms = args.windows_ms
    seconds = args.seconds
    if args.smoke:
        windows_ms = [0.0, 5.0]
        seconds = 4.0
    if 0.0 not in windows_ms:
        windows_ms = [0.0, *windows_ms]

    usage = synthetic_fleet(args.vehicles)
    reference = serial_reference(usage)

    lines = [
        "Gateway load benchmark",
        "",
        f"{args.vehicles} vehicles x {N_DAYS} days, algorithm {ALGORITHM}, "
        f"window {WINDOW}; {args.clients} closed-loop clients, "
        f"{seconds:.1f} s per run",
        "",
    ]
    throughput: dict[float, float] = {}
    failures: list[str] = []
    for window_ms in windows_ms:
        stats, metrics, elapsed = asyncio.run(
            run_load(
                usage,
                reference,
                batch_window_s=window_ms / 1000.0,
                clients=args.clients,
                seconds=seconds,
            )
        )
        rate = stats.total / elapsed
        throughput[window_ms] = rate
        gateway_metrics = metrics["gateway"]
        batch_summary = gateway_metrics["batch"]["sizes"]
        lines += [
            f"batch window {window_ms:4.1f} ms:",
            f"  requests   : {stats.total} in {elapsed:.2f} s "
            f"({rate:8.0f} req/s)",
            f"  status     : "
            + ", ".join(
                f"{code}={n}" for code, n in sorted(stats.statuses.items())
            ),
            f"  latency    : p50 {stats.percentile(0.50) * 1e3:7.2f} ms   "
            f"p95 {stats.percentile(0.95) * 1e3:7.2f} ms   "
            f"p99 {stats.percentile(0.99) * 1e3:7.2f} ms",
            f"  batch size : mean {batch_summary.get('mean', 0):.1f}, "
            f"max {batch_summary.get('max', 0):.0f} "
            f"({batch_summary.get('count', 0)} predict_many calls)",
            f"  queue      : high-water {gateway_metrics['queue_high_water']}, "
            f"429s {gateway_metrics['queue_rejections']}, "
            f"504s {gateway_metrics['deadline_expirations']}",
            f"  tracing    : {metrics['tracing']['traces_started']} traces, "
            f"{metrics['tracing']['spans_recorded']} spans",
        ]
        if stats.errors_5xx():
            failures.append(
                f"window {window_ms} ms served {stats.errors_5xx()} 5xx responses"
            )
        if stats.mismatches:
            failures.append(
                f"window {window_ms} ms served {stats.mismatches} forecasts "
                "that diverged from the serial service"
            )
        if not gateway_metrics.get("requests"):
            failures.append(f"window {window_ms} ms: /v1/metrics came back empty")
        lines.append("")

    reference_rate = throughput[0.0]
    batched = {w: r for w, r in throughput.items() if w > 0}
    best_window, best_rate = max(batched.items(), key=lambda kv: kv[1])
    lines += [
        f"no batching     : {reference_rate:8.0f} req/s",
        f"best batched    : {best_rate:8.0f} req/s "
        f"(window {best_window:.1f} ms, {best_rate / reference_rate:.2f}x)",
    ]
    if all(rate <= reference_rate for rate in batched.values()):
        failures.append(
            "micro-batching did not beat the window=0 reference "
            f"({max(batched.values()):.0f} vs {reference_rate:.0f} req/s)"
        )

    # -- tracing overhead: paired interleaved windows, one gateway --------
    pairs = 6 if args.smoke else 8
    window_seconds = 2.5 if args.smoke else 4.0
    on_rates, off_rates, overhead_failures = asyncio.run(
        run_overhead(
            usage,
            reference,
            batch_window_s=best_window / 1000.0,
            clients=args.clients,
            window_seconds=window_seconds,
            pairs=pairs,
        )
    )
    failures += overhead_failures
    ratios = sorted(on / off for on, off in zip(on_rates, off_rates))
    # Best-of-K per mode: single windows dip 10-20% under co-tenancy,
    # so the max is the only statistic stable enough to gate on.
    regression = 1.0 - max(on_rates) / max(off_rates)
    lines += [
        "",
        f"tracing overhead (window {best_window:.1f} ms, {pairs} paired "
        f"{window_seconds:.1f} s windows, one shared gateway, "
        f"1-in-{GatewayConfig.trace_sample_every} anonymous sampling):",
        f"  tracing off : {max(off_rates):8.0f} req/s (best window)",
        f"  tracing on  : {max(on_rates):8.0f} req/s (best window)",
        f"  per-pair on/off ratios: "
        + ", ".join(f"{r:.3f}" for r in ratios),
        f"  best-window regression: {regression * 100:+.1f}%",
    ]
    if regression >= 0.05:
        failures.append(
            f"tracing costs {regression * 100:.1f}% throughput "
            "(the budget is < 5%)"
        )

    text = "\n".join(lines)
    print(text)
    if not args.smoke:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "gateway.txt").write_text(text + "\n")
        print(f"wrote {RESULTS_DIR / 'gateway.txt'}")
    if failures and not args.no_enforce:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
