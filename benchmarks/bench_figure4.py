"""Figure 4: improvement (%) per algorithm as the window W grows.

Reproduced shape: RF and XGB gain strongly from past-usage lags (paper:
+44 % and +25 %) and plateau by ~W=15; BL is flat by construction; the
linear models gain much less than the ensembles.
"""

from repro.experiments.figure4 import run_figure4


def test_figure4(benchmark, setup, figure4_result, report):
    report("figure4", figure4_result.render())

    # Benchmark one representative slice (the session fixture already
    # paid for the full sweep): RF at W=6 on the bench fleet.
    from repro.core.old_vehicles import OldVehicleConfig, OldVehicleExperiment

    def probe():
        experiment = OldVehicleExperiment(
            OldVehicleConfig(window=6, restrict_to_horizon=True)
        )
        return experiment.run_fleet(setup.old_series[:2], "RF").e_mre

    benchmark.pedantic(probe, rounds=1)

    improvement = figure4_result.improvement()
    assert all(v == 0.0 for v in improvement["BL"].values())
    for key in ("RF", "XGB"):
        assert max(improvement[key].values()) > 10.0

    # Ensembles profit more from lags than the linear baseline model.
    assert max(improvement["RF"].values()) > max(
        improvement["BL"].values()
    )
    best = {
        key: min(figure4_result.e_mre[key].values())
        for key in ("LR", "LSVR", "RF", "XGB")
    }
    assert best["RF"] < best["LR"]
    assert best["XGB"] < best["LR"]
