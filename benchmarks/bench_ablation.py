"""Ablations of the design choices DESIGN.md calls out.

Beyond the paper's own tables, these quantify:

1. the time-shift re-sampling augmentation (Section 4's data
   engineering) — on vs off;
2. the similarity measure behind ``Model_Sim`` — the paper's
   average-usage distance vs point-wise, correlation and DTW;
3. per-vehicle models vs one unified model for *old* vehicles (the
   paper trains per-vehicle; this measures what that buys).
"""

import numpy as np

from repro.core.coldstart import (
    ColdStartConfig,
    ColdStartExperiment,
    aggregate_by_label,
)
from repro.core.old_vehicles import OldVehicleConfig, OldVehicleExperiment
from repro.core.registry import make_predictor
from repro.dataprep.transformation import RelationalDataset, build_relational_dataset
from repro.core.errors import mean_residual_error
from repro.experiments.reporting import format_table


def test_ablation_time_shift_augmentation(benchmark, setup, report):
    """Augmentation on/off for RF at W=0 with horizon-restricted training."""
    series = setup.old_series[:6]

    def run(n_shifts):
        experiment = OldVehicleExperiment(
            OldVehicleConfig(
                window=0,
                restrict_to_horizon=True,
                n_shifts=n_shifts,
                seed=setup.seed,
            )
        )
        return experiment.run_fleet(series, "RF").e_mre

    without = benchmark.pedantic(run, args=(0,), rounds=1)
    with_aug = run(8)
    report(
        "ablation_augmentation",
        format_table(
            ["configuration", "E_MRE({1..29})"],
            [("no augmentation", without), ("8 time shifts", with_aug)],
            title="Ablation: time-shift re-sampling augmentation (RF, W=0)",
        ),
    )
    # Augmentation must not break anything; it usually helps by
    # multiplying near-deadline records.
    assert np.isfinite(with_aug)
    assert with_aug < without * 1.3


def test_ablation_similarity_measures(benchmark, setup, report):
    """Model_Sim donor selection under different similarity measures."""
    measures = ("average_usage", "pointwise", "correlation", "dtw")

    def run(measure):
        experiment = ColdStartExperiment(
            ColdStartConfig(window=0, seed=setup.seed, similarity_measure=measure)
        )
        train, test = experiment.split_fleet(setup.all_series)
        results = experiment.run_semi_new(train, test, ["RF"])
        return aggregate_by_label(results, "e_mre")["RF_Sim"]

    scores = {}
    scores["average_usage"] = benchmark.pedantic(
        run, args=("average_usage",), rounds=1
    )
    for measure in measures[1:]:
        scores[measure] = run(measure)

    report(
        "ablation_similarity",
        format_table(
            ["similarity measure", "RF_Sim E_MRE({1..29})"],
            sorted(scores.items(), key=lambda kv: kv[1]),
            title="Ablation: Model_Sim similarity measure",
        ),
    )
    assert all(np.isfinite(v) for v in scores.values())
    # The paper's measure must be competitive with the alternatives.
    assert scores["average_usage"] <= 1.5 * min(scores.values())


def test_ablation_per_vehicle_vs_unified_old(benchmark, setup, report):
    """Old vehicles: per-vehicle RF vs one RF pooled across the fleet."""
    series = setup.old_series[:6]
    window = 6

    def per_vehicle():
        experiment = OldVehicleExperiment(
            OldVehicleConfig(window=window, restrict_to_horizon=True)
        )
        return experiment.run_fleet(series, "RF").e_mre

    def unified():
        # Pool every vehicle's training records into one model, then
        # score each vehicle's own test span.
        train_sets, tests = [], []
        for s in series:
            cut = int(round(0.7 * s.n_days))
            train_sets.append(
                build_relational_dataset(
                    s.bundle, window, day_range=(0, cut)
                ).restrict_to_horizon(range(1, 30))
            )
            tests.append(
                build_relational_dataset(
                    s.bundle, window, day_range=(cut, s.n_days)
                )
            )
        merged = RelationalDataset.concatenate(train_sets)
        predictor = make_predictor("RF")
        predictor.fit(merged)
        errors = [
            mean_residual_error(t.y, predictor.predict(t.X))
            for t in tests
            if t.n_records
        ]
        finite = [e for e in errors if np.isfinite(e)]
        return float(np.mean(finite))

    per = benchmark.pedantic(per_vehicle, rounds=1)
    pooled = unified()
    report(
        "ablation_per_vehicle",
        format_table(
            ["configuration", "E_MRE({1..29})"],
            [("per-vehicle RF (paper)", per), ("single pooled RF", pooled)],
            title="Ablation: per-vehicle vs unified models for old vehicles "
            f"(W={window})",
        ),
    )
    assert np.isfinite(per) and np.isfinite(pooled)
