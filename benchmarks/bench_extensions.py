"""Benches for the extension features beyond the paper's tables.

1. **MLP on old vehicles** — the neural model the paper deferred
   ("have not been included in this first release due to the lack of a
   sufficiently large amount of training data"); with 4.75 years of
   synthetic history it should sit in the ML pack, not beat it.
2. **Contextual weather enrichment** — the paper's future work; on a
   weather-coupled vehicle, forecast-weather features must not hurt and
   typically reduce E_MRE.
"""

import numpy as np

from repro.context.coupling import apply_weather_to_usage
from repro.context.features import ContextFeatureBuilder
from repro.context.weather import WeatherSimulator
from repro.core.cycles import derive_series
from repro.core.errors import mean_residual_error
from repro.core.old_vehicles import OldVehicleConfig, OldVehicleExperiment
from repro.dataprep.transformation import build_relational_dataset
from repro.experiments.reporting import format_table
from repro.learn.forest import RandomForestRegressor


def test_mlp_extension(benchmark, setup, report):
    series = setup.old_series[:6]
    experiment = OldVehicleExperiment(
        OldVehicleConfig(window=6, restrict_to_horizon=True)
    )

    def run():
        return {
            algorithm: experiment.run_fleet(series, algorithm).e_mre
            for algorithm in ("BL", "LR", "RF", "XGB", "MLP")
        }

    scores = benchmark.pedantic(run, rounds=1)
    report(
        "extension_mlp",
        format_table(
            ["Algorithm", "E_MRE({1..29})"],
            sorted(scores.items(), key=lambda kv: kv[1]),
            title="Extension: MLP vs the paper's algorithms (W=6, "
            "restricted training)",
        ),
    )
    assert np.isfinite(scores["MLP"])
    # The MLP must decisively beat the naive baseline...
    assert scores["MLP"] < scores["BL"]
    # ...and stay in the same league as the other ML models.
    assert scores["MLP"] < 2.5 * min(scores["RF"], scores["XGB"])


def test_weather_context_extension(benchmark, setup, report):
    """Forecast-weather features on a weather-coupled vehicle."""
    rng = np.random.default_rng(setup.seed)
    n_days = 1200
    weather = WeatherSimulator(wet_day_probability=0.35).generate(
        n_days, rng=1
    )
    base = np.where(
        rng.random(n_days) < 0.85,
        rng.normal(22_000, 3_500, n_days).clip(0, 86_400),
        0.0,
    )
    usage = apply_weather_to_usage(base, weather, rng=2)
    dataset = build_relational_dataset(
        derive_series(usage, setup.t_v), window=3
    )
    cut_day = int(0.7 * n_days)
    train_mask = dataset.t_index < cut_day
    test_mask = ~train_mask

    def emre(X) -> float:
        model = RandomForestRegressor(
            n_estimators=50, max_depth=14, random_state=0
        )
        model.fit(X[train_mask], dataset.y[train_mask])
        return mean_residual_error(
            dataset.y[test_mask], model.predict(X[test_mask])
        )

    def run():
        plain = emre(dataset.X)
        contextual = ContextFeatureBuilder(
            lookback=7, forecast_horizon=10, forecast_noise_sd=1.0
        ).augment(dataset, weather)
        return plain, emre(contextual.X)

    plain, enriched = benchmark.pedantic(run, rounds=1)
    report(
        "extension_weather",
        format_table(
            ["features", "E_MRE({1..29})"],
            [
                ("usage only (paper)", plain),
                ("usage + weather forecasts", enriched),
            ],
            title="Extension: contextual weather enrichment "
            "(weather-coupled vehicle, RF, W=3)",
        ),
    )
    assert np.isfinite(plain) and np.isfinite(enriched)
    assert enriched <= plain * 1.1
