"""Shard scaling benchmark: shared-nothing pool vs the single engine.

Closed-loop load generator against a real listening
:class:`~repro.serving.gateway.FleetGateway`, run once per shard count:
``--clients`` concurrent HTTP keep-alive clients fire ``GET
/v1/predict/{vehicle_id}`` back-to-back for ``--seconds``, cycling over
the fleet.  Shard count 1 is the plain single-process
:class:`~repro.serving.engine.FleetEngine` path (the pre-sharding
deployment); higher counts run a
:class:`~repro.serving.sharding.ShardedFleetEngine` — one worker
process per shard, consistent-hash vehicle routing, one gateway lane
per shard.

The workload is deliberately model-heavy (RF, lag window 6, ~90-day
histories) so per-request cost is dominated by per-vehicle model
inference — the GIL-bound work that thread parallelism cannot scale
and process shards can.  The fleet is sized all-OLD (cumulative usage
beyond ``t_v``), where every vehicle serves its *own* model and the
sharded forecasts are bit-identical to the serial service by
construction; cold-start (donor-model) vehicles see shard-local donor
pools instead and are out of scope here.

Three claims are enforced, not just reported:

* every forecast body — from every shard count — is **bit-identical**
  to a sequential ``MaintenancePredictionService.predict`` on the same
  history (exact ``Forecast`` equality after the JSON round-trip);
* **zero 5xx** responses under full load at every shard count;
* unless ``--no-enforce``, the 4-shard pool reaches **>= 1.5x** the
  single-engine throughput — enforced only when the host exposes at
  least 2 usable CPUs (``os.sched_getaffinity``): process shards
  cannot outrun a single engine that already owns the machine's only
  core, so on a 1-CPU host the ratio is measured and reported (the
  bit-identity and 5xx gates still fail the run) but the scaling
  floor is marked "not enforceable".

Run directly (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_shard.py [--smoke]

``--smoke`` is the ~15 s CI sizing (smaller fleet, shorter windows,
and a relaxed 1.2x scaling floor — CI machines have few spare cores).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
from pathlib import Path

import numpy as np

from repro.serving import FleetEngine, MaintenancePredictionService
from repro.serving.gateway import FleetGateway, GatewayConfig
from repro.serving.service import Forecast
from repro.serving.sharding import ShardedFleetEngine

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1

T_V = 600_000.0
WINDOW = 6
ALGORITHM = "RF"
N_DAYS = 90


def synthetic_fleet(n_vehicles: int) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(0)
    # ~19k s/day x 90 days ~ 1.7M cumulative >> t_v: every vehicle OLD.
    return {
        f"v{i:03d}": rng.uniform(16_000, 22_000, size=N_DAYS)
        for i in range(n_vehicles)
    }


def serial_reference(usage: dict[str, np.ndarray]) -> dict[str, Forecast]:
    service = MaintenancePredictionService(
        t_v=T_V, window=WINDOW, algorithm=ALGORITHM
    )
    for vehicle_id in sorted(usage):
        service.register_vehicle(vehicle_id)
        service.ingest_series(vehicle_id, usage[vehicle_id])
    return {
        vehicle_id: service.predict(vehicle_id) for vehicle_id in sorted(usage)
    }


def build_engine(usage: dict[str, np.ndarray], n_shards: int):
    """Shard count 1 = the plain pre-sharding engine; else the pool."""
    if n_shards == 1:
        engine = FleetEngine(t_v=T_V, window=WINDOW, algorithm=ALGORITHM)
        engine.register_fleet(usage)
        for vehicle_id, series in usage.items():
            engine.ingest_history(vehicle_id, series)
        return engine
    pool = ShardedFleetEngine(
        n_shards, t_v=T_V, window=WINDOW, algorithm=ALGORITHM
    )
    pool.register_fleet(usage)
    for vehicle_id, series in usage.items():
        pool.ingest_history(vehicle_id, series)
    return pool


class RunStats:
    def __init__(self):
        self.statuses: dict[int, int] = {}
        self.latencies: list[float] = []
        self.mismatches = 0

    def record(self, status: int, seconds: float) -> None:
        self.statuses[status] = self.statuses.get(status, 0) + 1
        self.latencies.append(seconds)

    @property
    def total(self) -> int:
        return sum(self.statuses.values())

    def errors_5xx(self) -> int:
        return sum(n for code, n in self.statuses.items() if code >= 500)

    def percentile(self, q: float) -> float:
        if not self.latencies:
            return float("nan")
        return float(np.quantile(np.asarray(self.latencies), q))


async def _http_get(reader, writer, path: str):
    writer.write(f"GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n".encode())
    await writer.drain()
    status = int((await reader.readline()).split()[1])
    length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n"):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value)
    body = await reader.readexactly(length) if length else b""
    return status, body


async def _client(
    host: str,
    port: int,
    vehicle_ids: list[str],
    offset: int,
    stop_at: float,
    stats: RunStats,
    reference: dict[str, Forecast],
) -> None:
    loop = asyncio.get_running_loop()
    reader, writer = await asyncio.open_connection(host, port)
    index = offset
    try:
        while loop.time() < stop_at:
            vehicle_id = vehicle_ids[index % len(vehicle_ids)]
            index += 1
            started = loop.time()
            status, body = await _http_get(
                reader, writer, f"/v1/predict/{vehicle_id}"
            )
            stats.record(status, loop.time() - started)
            if status == 200:
                served = Forecast.from_dict(json.loads(body))
                if served != reference[vehicle_id]:
                    stats.mismatches += 1
    finally:
        writer.close()


async def run_load(
    usage: dict[str, np.ndarray],
    reference: dict[str, Forecast],
    *,
    n_shards: int,
    clients: int,
    seconds: float,
    warmup_s: float,
) -> tuple[RunStats, dict, float]:
    engine = build_engine(usage, n_shards)
    try:
        # Train every per-vehicle model up front (in parallel across
        # shards) so the measured window serves inference, not training.
        engine.refresh_models()
        gateway = FleetGateway(
            engine,
            GatewayConfig(
                port=0,
                batch_window_s=0.002,
                max_batch_size=max(64, clients),
                max_queue=max(256, 4 * clients),
                default_deadline_s=30.0,
                tracing=False,
            ),
        )
        host, port = await gateway.serve()
        loop = asyncio.get_running_loop()
        vehicle_ids = sorted(usage)

        async def window(duration: float) -> tuple[RunStats, float]:
            stats = RunStats()
            started = loop.time()
            stop_at = started + duration
            await asyncio.gather(
                *(
                    _client(
                        host, port, vehicle_ids, i, stop_at, stats, reference
                    )
                    for i in range(clients)
                )
            )
            return stats, loop.time() - started

        await window(warmup_s)  # caches, lanes, turbo
        stats, elapsed = await window(seconds)
        _status, metrics_body = await _http_get(
            *(await asyncio.open_connection(host, port)), "/v1/metrics"
        )
        metrics = json.loads(metrics_body)
        await gateway.shutdown()
        return stats, metrics, elapsed
    finally:
        close = getattr(engine, "close", None)
        if close is not None:
            close()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vehicles", type=int, default=32)
    parser.add_argument("--clients", type=int, default=32)
    parser.add_argument(
        "--seconds",
        type=float,
        default=6.0,
        help="measured closed-loop duration per shard count",
    )
    parser.add_argument(
        "--shards",
        type=int,
        nargs="+",
        default=[1, 2, 4],
        help="shard counts to sweep (1 = plain single-engine reference)",
    )
    parser.add_argument(
        "--scaling-floor",
        type=float,
        default=1.5,
        help="required 4-shard/1-shard throughput ratio",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI sizing: ~15 s total, 1 vs 4 shards, relaxed floor",
    )
    parser.add_argument(
        "--no-enforce",
        action="store_true",
        help="report only; skip the scaling/5xx/identity assertions",
    )
    args = parser.parse_args(argv)

    shard_counts = args.shards
    seconds = args.seconds
    warmup_s = 1.5
    vehicles = args.vehicles
    scaling_floor = args.scaling_floor
    if args.smoke:
        shard_counts = [1, 4]
        seconds = 3.0
        warmup_s = 1.0
        vehicles = 16
        # CI runners expose few spare cores; scaling is still required,
        # just with headroom for a 2-core box.
        scaling_floor = min(scaling_floor, 1.2)
    if 1 not in shard_counts:
        shard_counts = [1, *shard_counts]

    usage = synthetic_fleet(vehicles)
    reference = serial_reference(usage)
    cpus = usable_cpus()

    lines = [
        "Shard scaling benchmark",
        "",
        f"{vehicles} vehicles x {N_DAYS} days, algorithm {ALGORITHM}, "
        f"window {WINDOW} (all vehicles OLD: per-vehicle models); "
        f"{args.clients} closed-loop clients, {seconds:.1f} s measured "
        f"per shard count after warm-up; host exposes {cpus} usable "
        "CPU(s)",
        "",
    ]
    throughput: dict[int, float] = {}
    failures: list[str] = []
    for n_shards in shard_counts:
        stats, metrics, elapsed = asyncio.run(
            run_load(
                usage,
                reference,
                n_shards=n_shards,
                clients=args.clients,
                seconds=seconds,
                warmup_s=warmup_s,
            )
        )
        rate = stats.total / elapsed
        throughput[n_shards] = rate
        gateway_metrics = metrics["gateway"]
        label = (
            "single engine (no sharding)"
            if n_shards == 1
            else f"{n_shards} shard worker processes"
        )
        lines += [
            f"shards {n_shards} — {label}:",
            f"  requests   : {stats.total} in {elapsed:.2f} s "
            f"({rate:8.0f} req/s)",
            f"  status     : "
            + ", ".join(
                f"{code}={n}" for code, n in sorted(stats.statuses.items())
            ),
            f"  latency    : p50 {stats.percentile(0.50) * 1e3:7.2f} ms   "
            f"p95 {stats.percentile(0.95) * 1e3:7.2f} ms   "
            f"p99 {stats.percentile(0.99) * 1e3:7.2f} ms",
            f"  queue      : high-water {gateway_metrics['queue_high_water']}, "
            f"429s {gateway_metrics['queue_rejections']}, "
            f"504s {gateway_metrics['deadline_expirations']}",
        ]
        per_shard = gateway_metrics.get("shards")
        if per_shard:
            lines.append(
                "  lane batches: "
                + ", ".join(
                    f"shard {shard}="
                    f"{entry.get('batch_sizes', {}).get('count', 0)}"
                    for shard, entry in sorted(
                        per_shard.items(), key=lambda kv: int(kv[0])
                    )
                )
            )
        if stats.errors_5xx():
            failures.append(
                f"{n_shards} shard(s) served {stats.errors_5xx()} 5xx "
                "responses"
            )
        if stats.mismatches:
            failures.append(
                f"{n_shards} shard(s) served {stats.mismatches} forecasts "
                "that diverged from the serial service"
            )
        lines.append("")

    reference_rate = throughput[1]
    best_shards, best_rate = max(
        ((n, r) for n, r in throughput.items() if n > 1),
        key=lambda kv: kv[1],
    )
    speedup = best_rate / reference_rate
    if cpus >= 2:
        floor_note = "met" if speedup >= scaling_floor else "MISSED"
    else:
        floor_note = (
            "not enforceable: 1 usable CPU — process shards cannot outrun "
            "a single engine that already owns the only core; identity and "
            "5xx gates still apply"
        )
    lines += [
        f"single engine   : {reference_rate:8.0f} req/s",
        f"best sharded    : {best_rate:8.0f} req/s "
        f"({best_shards} shards, {speedup:.2f}x)",
        f"scaling floor   : {scaling_floor:.2f}x ({floor_note})",
    ]
    if cpus >= 2 and speedup < scaling_floor:
        failures.append(
            f"{best_shards}-shard throughput is {speedup:.2f}x the single "
            f"engine (the floor is {scaling_floor:.2f}x)"
        )

    text = "\n".join(lines)
    print(text)
    if not args.smoke:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "shard.txt").write_text(text + "\n")
        print(f"wrote {RESULTS_DIR / 'shard.txt'}")
    if failures and not args.no_enforce:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
