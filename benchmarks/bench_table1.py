"""Table 1: E_MRE({1..29}) — trained on all data vs on the last 29 days.

Reproduced shape (paper values in parentheses):
* the restriction leaves BL unchanged and cuts every ML model's error
  substantially (paper: LR -59 %, LSVR -54 %, RF -65 %, XGB -48 %);
* after restriction every ML model beats BL (paper: 2.4-10.8 vs 20.2);
* LR trained on all data is worse than the untrained BL (26.1 vs 20.2).
"""

from repro.experiments.table1 import run_table1


def test_table1(benchmark, setup, report):
    result = benchmark.pedantic(run_table1, args=(setup,), rounds=1)
    report("table1", result.render())

    bl = result.row("BL")
    assert bl.e_mre_all_data == bl.e_mre_restricted

    for key in ("LR", "LSVR", "RF", "XGB"):
        row = result.row(key)
        assert row.reduction_pct > 30.0, f"{key} reduction too small"
        assert row.e_mre_restricted < bl.e_mre_restricted

    # The all-data pathology: a linear fit over the full cycle is no
    # better than (paper: worse than) the naive average-rate baseline.
    assert result.row("LR").e_mre_all_data > 0.8 * bl.e_mre_all_data
