"""Fleet-engine benchmark: cached incremental ingest vs from-scratch.

Simulates the deployed daily loop: every morning each vehicle reports
yesterday's usage and the service re-derives its cycle series before
predicting.  The serial baseline recomputes ``derive_series`` from the
full history each day (O(n) per day, O(n^2) per vehicle overall); the
:class:`CycleStateCache` appends the new day in O(1).  The engine's
correctness contract makes the two bit-identical, so this is pure
speedup.

Also reports batch-training and batch-prediction throughput through
:class:`FleetEngine` at several worker counts.

Run directly (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_fleet_engine.py [--quick]

Exits non-zero if the cached ingest speedup falls below the 3x
acceptance floor.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.core.cycles import derive_series
from repro.serving.cycle_cache import CycleStateCache
from repro.serving.engine import EngineConfig, FleetEngine
from repro.serving.reliability import IngestionGuard
from repro.serving.service import MaintenancePredictionService

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"
SPEEDUP_FLOOR = 3.0
GUARD_OVERHEAD_CEILING = 0.10  # guarded clean-path ingest, vs unguarded

T_V = 200_000.0  # ~8-9 day cycles at the usage scale below


def synthetic_fleet(n_vehicles: int, n_days: int) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(0)
    return {
        f"v{i:03d}": rng.uniform(5_000, 30_000, size=n_days)
        for i in range(n_vehicles)
    }


def bench_ingest(fleet: dict[str, np.ndarray], n_days: int) -> list[str]:
    """Daily ingest: from-scratch re-derivation vs cached incremental."""
    start = perf_counter()
    for usage in fleet.values():
        for day in range(1, n_days + 1):
            derive_series(usage[:day], T_V)
    from_scratch = perf_counter() - start

    cache = CycleStateCache()
    start = perf_counter()
    for vehicle_id, usage in fleet.items():
        for day in range(1, n_days + 1):
            cache.bundle(vehicle_id, usage[:day], T_V)
    cached = perf_counter() - start

    # Spot-check the equivalence contract on one vehicle.
    vehicle_id, usage = next(iter(fleet.items()))
    a = cache.bundle(vehicle_id, usage, T_V)
    b = derive_series(usage, T_V)
    assert a.cycles == b.cycles
    assert np.array_equal(a.usage_left, b.usage_left, equal_nan=True)

    speedup = from_scratch / cached if cached > 0 else float("inf")
    lines = [
        f"ingest, {len(fleet)} vehicles x {n_days} days "
        f"({n_days * len(fleet)} daily updates):",
        f"  from-scratch derive_series : {from_scratch:8.3f} s",
        f"  cached incremental         : {cached:8.3f} s",
        f"  speedup                    : {speedup:8.1f}x "
        f"(floor {SPEEDUP_FLOOR:.0f}x)",
    ]
    if speedup < SPEEDUP_FLOOR:
        raise SystemExit(
            f"cached ingest speedup {speedup:.2f}x below the "
            f"{SPEEDUP_FLOOR:.0f}x floor"
        )
    return lines


def bench_guard(
    fleet: dict[str, np.ndarray], *, enforce: bool
) -> list[str]:
    """Clean-path ingest cost of the ingestion guard.

    The guard *replaces* the service's raw range validation rather than
    duplicating it, so screening clean readings must cost about the
    same; ``enforce`` additionally fails the run when the overhead
    exceeds :data:`GUARD_OVERHEAD_CEILING`.
    """

    def run(guard: IngestionGuard | None) -> float:
        service = MaintenancePredictionService(
            t_v=T_V, window=0, algorithm="LR", guard=guard
        )
        for vehicle_id in fleet:
            service.register_vehicle(vehicle_id)
        start = perf_counter()
        for vehicle_id, usage in fleet.items():
            for day, value in enumerate(usage):
                service.ingest(vehicle_id, float(value), day=day)
        return perf_counter() - start

    # Interleave repeats and keep the best of each to damp scheduler
    # noise; a single warm-up pass stabilizes allocator state.
    run(None), run(IngestionGuard())
    plain = min(run(None) for _ in range(3))
    guarded = min(run(IngestionGuard()) for _ in range(3))
    overhead = guarded / plain - 1.0
    n_readings = sum(u.size for u in fleet.values())
    lines = [
        f"ingestion guard, clean path ({n_readings} readings):",
        f"  unguarded ingest : {plain:8.3f} s",
        f"  guarded ingest   : {guarded:8.3f} s",
        f"  overhead         : {overhead:+8.1%} "
        f"(ceiling {GUARD_OVERHEAD_CEILING:.0%})",
    ]
    if enforce and overhead > GUARD_OVERHEAD_CEILING:
        raise SystemExit(
            f"guard clean-path overhead {overhead:+.1%} above the "
            f"{GUARD_OVERHEAD_CEILING:.0%} ceiling"
        )
    return lines


def bench_batch(
    fleet: dict[str, np.ndarray], worker_counts: tuple[int, ...]
) -> list[str]:
    """Batch training + prediction wall time per worker count."""
    lines = [f"batch train + predict, {len(fleet)} vehicles:"]
    reference = None
    for max_workers in worker_counts:
        engine = FleetEngine(
            t_v=T_V,
            window=0,
            algorithm="LR",
            config=EngineConfig(max_workers=max_workers),
        )
        engine.register_fleet(fleet)
        for vehicle_id, usage in fleet.items():
            engine.ingest_history(vehicle_id, usage)
        start = perf_counter()
        trained = engine.refresh_models()
        train_s = perf_counter() - start
        start = perf_counter()
        forecasts = engine.predict_all()
        predict_s = perf_counter() - start
        lines.append(
            f"  workers={max_workers}: trained {trained} models in "
            f"{train_s:6.3f} s, {len(forecasts)} forecasts in "
            f"{predict_s:6.3f} s"
        )
        if reference is None:
            reference = forecasts
        else:
            assert forecasts == reference, "parallel run diverged from serial"
    lines.append("  all worker counts produced identical forecasts")
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized fleet (10 x 150) instead of the full 50 x 1000",
    )
    args = parser.parse_args(argv)

    if args.quick:
        n_vehicles, n_days = 10, 150
    else:
        n_vehicles, n_days = 50, 1000
    fleet = synthetic_fleet(n_vehicles, n_days)

    lines = ["Fleet engine benchmark", ""]
    lines += bench_ingest(fleet, n_days)
    lines.append("")
    lines += bench_guard(fleet, enforce=True)
    lines.append("")
    # Training/prediction scale is bounded separately: the ingest fleet's
    # long histories would make per-vehicle training dominate the run.
    batch_fleet = {
        vehicle_id: usage[:60]
        for vehicle_id, usage in list(fleet.items())[:n_vehicles]
    }
    lines += bench_batch(batch_fleet, (1, 4))

    text = "\n".join(lines)
    print(text)
    if not args.quick:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "fleet_engine.txt").write_text(text + "\n")
        print(f"\nwrote {RESULTS_DIR / 'fleet_engine.txt'}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
