"""Figure 1: daily utilization of two sample vehicles.

Regenerates the exploration plot's data: a steady worker at 20-30 k
seconds/day with sporadic idle days, against a regime-switcher that
parks for weeks and then works at full capacity.
"""

import numpy as np

from repro.experiments.figures_data import figure1_data
from repro.experiments.reporting import format_table


def test_figure1(benchmark, setup, report):
    series = benchmark.pedantic(
        figure1_data, args=(setup,), kwargs={"n_days": 90}, rounds=1
    )

    rows = []
    for s in series:
        working = s.y[s.y > 0]
        idle_days = int((s.y == 0).sum())
        rows.append(
            (
                s.label,
                float(working.mean()) if working.size else 0.0,
                float(s.y.max()),
                idle_days,
            )
        )
    report(
        "figure1",
        format_table(
            ["vehicle", "mean working U(t) [s]", "max U(t) [s]",
             "idle days (of 90)"],
            rows,
            title="Figure 1: daily utilization U_v(t), first 90 days",
        ),
    )

    v1, v2 = series
    # v1 steady: most days active; v2 switcher: long inactive stretches.
    assert (v1.y > 0).mean() > 0.6
    assert (v2.y == 0).sum() > (v1.y == 0).sum()
    assert 10_000 <= v1.y[v1.y > 0].mean() <= 35_000
