"""Figure 5: E_MRE({d}) per single day d = 1..29, best configurations.

Reproduced shape: every algorithm's error shrinks approaching the
deadline; BL stays worst across the horizon; RF stays accurate even ~29
days out (paper: average error 2.4 at d=29).
"""

import numpy as np

from repro.experiments.figure5 import run_figure5
from repro.experiments.table2 import run_table2


def test_figure5(benchmark, setup, figure4_result, report):
    table2 = run_table2(setup, figure4_result)
    result = benchmark.pedantic(
        run_figure5, args=(setup, table2), rounds=1
    )
    report("figure5", result.render())

    def near_far(curve):
        days = sorted(curve)
        near = np.nanmean([curve[d] for d in days[:5]])
        far = np.nanmean([curve[d] for d in days[-5:]])
        return near, far

    for algorithm, curve in result.curves.items():
        near, far = near_far(curve)
        assert near < far + 1e-9, f"{algorithm}: error should shrink near deadline"

    # BL worst across the horizon (mean over all plotted days).
    means = {
        algorithm: np.nanmean(list(curve.values()))
        for algorithm, curve in result.curves.items()
    }
    assert means["BL"] == max(means.values())
    # RF stays reasonable even far out.
    far_rf = result.curves["RF"][29]
    far_bl = result.curves["BL"][29]
    assert far_rf < far_bl
