"""Figure 2: the target sawtooth D_v(t) over many maintenance cycles."""

import numpy as np

from repro.experiments.figures_data import figure2_data
from repro.experiments.reporting import format_table


def test_figure2(benchmark, setup, report):
    series = benchmark.pedantic(figure2_data, args=(setup,), rounds=1)

    rows = []
    for s in series:
        d = s.y
        finite = d[np.isfinite(d)]
        n_cycles = int((finite == 0).sum())
        resets = np.diff(d)
        cycle_lengths = finite[np.concatenate([[True], np.diff(finite) > 0])]
        rows.append(
            (
                s.label,
                n_cycles,
                float(np.nanmax(d)),
                float(np.median(cycle_lengths) + 1),
            )
        )
    report(
        "figure2",
        format_table(
            ["vehicle", "completed cycles", "max D_v(t) [days]",
             "median cycle length [days]"],
            rows,
            title="Figure 2: days to next maintenance D_v(t), full span",
        ),
    )

    for s in series:
        d = s.y
        finite = d[np.isfinite(d)]
        assert (finite == 0).sum() >= 5  # many cycles over 4.75 years
        # Sawtooth: within-cycle slope is exactly -1.
        diffs = np.diff(d)
        down = diffs[np.isfinite(diffs) & (diffs < 0)]
        assert np.all(down == -1)
