"""Table 3: semi-new and new vehicles (the cold-start evaluation).

Reproduced shape (paper values): the own-history baseline collapses for
semi-new vehicles (34.9 vs <= 8.8 for every ML variant); the non-linear
models lead; the similarity-selected donor (`Model_Sim`) is at least as
good as the unified model for RF (2.9 vs 3.2); new vehicles — where only
`Model_Uni` applies — carry much larger global errors.
"""

import numpy as np

from repro.experiments.table3 import run_table3


def test_table3(benchmark, setup, report):
    result = benchmark.pedantic(run_table3, args=(setup,), rounds=1)
    report("table3", result.render())

    semi = result.semi_new_e_mre
    bl = semi["BL"]
    ml = {k: v for k, v in semi.items() if k != "BL" and np.isfinite(v)}
    assert bl == max(v for v in semi.values() if np.isfinite(v))
    assert bl > 1.5 * min(ml.values())

    # Non-linear models lead the semi-new column.
    assert result.best_semi_new() in {"RF_Sim", "XGB_Sim", "RF_Uni", "XGB_Uni"}
    # Sim at least matches Uni for the forest (paper: 2.9 vs 3.2).
    assert semi["RF_Sim"] <= semi["RF_Uni"] * 1.1

    # New vehicles: Uni rows only, larger errors than semi-new.
    assert set(result.new_e_global) == {
        "LR_Uni", "LSVR_Uni", "RF_Uni", "XGB_Uni"
    }
    assert min(result.new_e_global.values()) > min(ml.values())
