"""Section 4.3's per-vehicle model selection rule.

The deployed system picks, per vehicle, the algorithm minimizing
E_MRE({1..29}).  This bench quantifies the payoff: the selection policy
must match or beat the best fixed fleet-wide algorithm, and the winners
should be dominated by the non-linear models (the paper: "RF presents
the best results", "non-linear regression models outperform...").
"""

import numpy as np

from repro.experiments.model_selection import run_model_selection


def test_model_selection(benchmark, setup, report):
    result = benchmark.pedantic(run_model_selection, args=(setup,), rounds=1)
    report("model_selection", result.render())

    fixed = result.single_algorithm_e_mre()
    selected = result.selected_e_mre()
    assert np.isfinite(selected)
    # Selecting per vehicle can only help relative to the best fixed
    # policy (it is a per-vehicle argmin of the same numbers).
    assert selected <= min(fixed.values()) + 1e-9

    counts = result.winner_counts()
    nonlinear = counts.get("RF", 0) + counts.get("XGB", 0)
    assert nonlinear >= len(result.winners) / 2
    # The naive baseline never wins a vehicle.
    assert counts.get("BL", 0) == 0
