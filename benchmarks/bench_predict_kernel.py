"""Fused inference-kernel benchmark: compiled ensembles + batched fleet.

Three claims are enforced, not just reported (paired measurement
windows: reference and compiled paths run interleaved on the same data,
best-of-``--repeats`` per side, so background noise hits both equally):

* the compiled level-wise kernel is **>= 3x** faster than the reference
  per-tree Python loop (``repro.learn.compiled.reference_predict``,
  which replays the pre-kernel ``predict`` op for op) on the serving-
  shaped workload — for both the RF and the histogram-GBDT serving
  defaults, at single-row (one vehicle) and 64-row (stacked fleet
  batch) shapes;
* the engine's group-batched ``predict_all`` (one kernel call per
  shared model identity) beats per-vehicle dispatch
  (``EngineConfig(batched_predict=False)``) on a warm cold-start-heavy
  fleet, where most vehicles share the fleet-wide ``Model_Uni``;
* every batched forecast is **bit-identical** to the serial
  ``MaintenancePredictionService.predict`` path, and every compiled
  champion reproduces ``reference_predict`` byte-for-byte on its own
  serving feature row.

Run directly (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_predict_kernel.py [--smoke]

``--smoke`` is the ~20 s CI sizing (smaller fleet, fewer repeats, and a
relaxed 2x kernel floor — shared CI machines time noisily); the full
run writes ``results/kernel.txt``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.registry import make_predictor
from repro.learn.compiled import compile_model, reference_predict
from repro.serving import FleetEngine, MaintenancePredictionService
from repro.serving.engine import EngineConfig

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

T_V = 600_000.0
WINDOW = 6
N_DAYS = 90


def synthetic_fleet(n_vehicles: int) -> dict[str, np.ndarray]:
    """A cold-start-heavy fleet: the shape group-batching exists for.

    1/6 of the fleet are OLD donors (~1.7M cumulative >> t_v) serving
    their own champions; the rest are NEW (10 days, < t_v/2) and all
    share the fleet-wide ``Model_Uni`` — the batched path stacks them
    into one kernel call while per-vehicle dispatch predicts them one
    by one.
    """
    rng = np.random.default_rng(0)
    n_old = max(2, n_vehicles // 6)
    fleet = {
        f"old{i:03d}": rng.uniform(16_000, 22_000, size=N_DAYS)
        for i in range(n_old)
    }
    for i in range(n_vehicles - n_old):
        fleet[f"new{i:03d}"] = rng.uniform(16_000, 22_000, size=10)
    return fleet


def serving_shaped_data(n: int, seed: int = 1):
    """(X, y) shaped like the Section-3 feature rows (L + lag window)."""
    rng = np.random.default_rng(seed)
    X = np.empty((n, WINDOW + 1))
    X[:, 0] = rng.uniform(50_000, T_V, size=n)  # usage left
    X[:, 1:] = rng.uniform(16_000, 22_000, size=(n, WINDOW))  # lags
    y = X[:, 0] / X[:, 1:].mean(axis=1) + rng.normal(0.0, 0.4, size=n)
    return X, y


class _Dataset:
    def __init__(self, X, y):
        self.X, self.y = X, y
        self.n_records = len(X)


def best_of(fn, repeats: int, inner: int) -> float:
    """Best per-call seconds over ``repeats`` windows of ``inner`` calls."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - started) / inner)
    return best


def kernel_microbench(repeats: int, inner: int):
    """Per-algorithm (rows -> (ref_s, kernel_s, bit_identical)) table."""
    X, y = serving_shaped_data(160)
    results = {}
    for key in ("RF", "XGB"):
        predictor = make_predictor(key)
        predictor.fit(_Dataset(X, y))
        model = predictor.model_
        compiled = compile_model(model)
        per_rows = {}
        for rows in (1, 64):
            probe = serving_shaped_data(rows, seed=7)[0]
            reference = reference_predict(model, probe)
            fused = compiled.predict(probe)
            identical = (
                reference.dtype == fused.dtype
                and reference.shape == fused.shape
                and reference.tobytes() == fused.tobytes()
            )
            # Interleaved paired windows: same probe, same cadence.
            ref_s = best_of(
                lambda: reference_predict(model, probe), repeats, inner
            )
            kernel_s = best_of(lambda: compiled.predict(probe), repeats, inner)
            per_rows[rows] = (ref_s, kernel_s, identical)
        results[key] = per_rows
    return results


def build_engine(usage, *, batched: bool) -> FleetEngine:
    engine = FleetEngine(
        t_v=T_V,
        window=WINDOW,
        algorithm="RF",
        config=EngineConfig(
            max_workers=1, executor="serial", batched_predict=batched
        ),
    )
    engine.register_fleet(usage)
    for vehicle_id, series in usage.items():
        engine.ingest_history(vehicle_id, series)
    return engine


def fleet_bench(usage, repeats: int):
    """Warm-fleet predict_all seconds: batched vs per-vehicle dispatch."""
    timings = {}
    forecasts = {}
    for batched in (False, True):
        engine = build_engine(usage, batched=batched)
        forecasts[batched] = engine.predict_all()  # trains + warms caches
        best = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            engine.predict_all()
            best = min(best, time.perf_counter() - started)
        timings[batched] = best
    return timings, forecasts


def serial_forecasts(usage):
    service = MaintenancePredictionService(
        t_v=T_V, window=WINDOW, algorithm="RF"
    )
    for vehicle_id in sorted(usage):
        service.register_vehicle(vehicle_id)
        service.ingest_series(vehicle_id, usage[vehicle_id])
    return [service.predict(vehicle_id) for vehicle_id in sorted(usage)]


def champion_row_identity(usage) -> tuple[int, int]:
    """Served models reproduce ``reference_predict`` on serving rows."""
    service = MaintenancePredictionService(
        t_v=T_V, window=WINDOW, algorithm="RF"
    )
    mismatches = checked = 0
    for vehicle_id in sorted(usage):
        service.register_vehicle(vehicle_id)
        service.ingest_series(vehicle_id, usage[vehicle_id])
    for vehicle_id in sorted(usage):
        service.predict(vehicle_id)  # trains whatever the ladder needs
        model = service._vehicles[vehicle_id].model or service._unified_model
        if model is None:
            continue
        checked += 1
        row, _, _ = service._feature_row(service.series(vehicle_id))
        compiled = compile_model(model)
        if compiled.predict(row).tobytes() != reference_predict(
            model, row
        ).tobytes():
            mismatches += 1
    return mismatches, checked


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vehicles", type=int, default=48)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--kernel-floor",
        type=float,
        default=3.0,
        help="required compiled/reference speedup at both row shapes",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI sizing: small fleet, few repeats, relaxed 2x floor",
    )
    parser.add_argument(
        "--no-enforce",
        action="store_true",
        help="report only; skip the speedup/identity assertions",
    )
    args = parser.parse_args(argv)

    vehicles = args.vehicles
    repeats = args.repeats
    inner = 20
    kernel_floor = args.kernel_floor
    if args.smoke:
        vehicles = 32
        repeats = 3
        inner = 8
        kernel_floor = min(kernel_floor, 2.0)

    failures: list[str] = []
    lines = [
        "Fused inference-kernel benchmark",
        "",
        f"serving-shaped workload: window {WINDOW} (7 features), RF/XGB "
        f"serving defaults; best-of-{repeats} paired windows x {inner} "
        "calls",
        "",
        "kernel vs reference per-tree loop:",
    ]

    micro = kernel_microbench(repeats, inner)
    for key, per_rows in micro.items():
        for rows, (ref_s, kernel_s, identical) in per_rows.items():
            speedup = ref_s / kernel_s
            lines.append(
                f"  {key:3s} rows={rows:3d}: reference {ref_s * 1e6:9.1f} us"
                f"   kernel {kernel_s * 1e6:9.1f} us   {speedup:6.2f}x"
                f"   bit-identical={identical}"
            )
            if not identical:
                failures.append(
                    f"{key} rows={rows}: compiled output diverged from the "
                    "reference loop"
                )
            if speedup < kernel_floor:
                failures.append(
                    f"{key} rows={rows}: kernel speedup {speedup:.2f}x is "
                    f"under the {kernel_floor:.1f}x floor"
                )

    usage = synthetic_fleet(vehicles)
    n_old = sum(1 for v in usage if v.startswith("old"))
    timings, forecasts = fleet_bench(usage, repeats)
    fleet_speedup = timings[False] / timings[True]
    lines += [
        "",
        f"fleet predict_all ({n_old} OLD + {vehicles - n_old} NEW "
        "vehicles, warm models):",
        f"  per-vehicle dispatch: {timings[False] * 1e3:8.2f} ms",
        f"  group-batched       : {timings[True] * 1e3:8.2f} ms"
        f"   ({fleet_speedup:.2f}x)",
    ]
    if fleet_speedup <= 1.0:
        failures.append(
            f"group-batched predict_all is {fleet_speedup:.2f}x per-vehicle "
            "dispatch (must be faster)"
        )

    reference = serial_forecasts(usage)
    batched_identical = forecasts[True] == reference
    unbatched_identical = forecasts[False] == reference
    row_mismatches, rows_checked = champion_row_identity(usage)
    lines += [
        "",
        f"forecast identity vs serial service: batched={batched_identical} "
        f"per-vehicle={unbatched_identical}",
        f"served-model rows diverging from reference_predict: "
        f"{row_mismatches}/{rows_checked}",
    ]
    if not batched_identical:
        failures.append("batched forecasts diverged from the serial service")
    if not unbatched_identical:
        failures.append(
            "per-vehicle forecasts diverged from the serial service"
        )
    if row_mismatches:
        failures.append(
            f"{row_mismatches} champion(s) diverged from reference_predict "
            "on their serving rows"
        )

    text = "\n".join(lines)
    print(text)
    if not args.smoke:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "kernel.txt").write_text(text + "\n")
        print(f"wrote {RESULTS_DIR / 'kernel.txt'}")
    if failures and not args.no_enforce:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
