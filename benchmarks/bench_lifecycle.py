"""Lifecycle overhead benchmark: sweeps against the serving hot path.

The lifecycle controller's promise is that model *replacement* happens
off the hot path: in steady state (no drift) a per-day sweep is a
debounced candidate scan, and only a fired drift alert pays for
challenger training and shadow evaluation.  This bench pins both
halves of that promise:

* **steady-state sweep overhead** on the serve path must stay **< 10%**
  — measured with ``bench_durability.py``'s paired-alternation
  methodology: one engine, one warmed fleet, and the lifecycle sweep
  toggled on/off on *alternating days*, each day's
  ``predict_all`` (+ sweep when enabled) timed individually and the
  regression judged on each mode's fastest-quartile mean;
* **drift-triggered evaluation cost** — one full
  ``evaluate_vehicle`` (challenger training + shadow replay + gated
  promotion) is timed and *reported*, not gated: it runs only when an
  alert fires, which is the entire point of the debounce.

Run directly (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_lifecycle.py [--quick]

``--quick`` is the ~5 s CI sizing.
"""

from __future__ import annotations

import argparse
import gc
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.lifecycle import LifecycleController, PromotionPolicy, ShadowEvaluator
from repro.serving import (
    DriftMonitor,
    EngineConfig,
    FleetEngine,
    MaintenancePredictionService,
    ModelStore,
)

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

T_V = 200_000.0


def build_stack(n_vehicles: int, store_dir: str):
    service = MaintenancePredictionService(
        t_v=T_V,
        window=0,
        algorithm="LR",
        store=ModelStore(store_dir),
        monitor=DriftMonitor(
            threshold_days=2.0, window=30, min_samples=5, alert_cooldown=12
        ),
        cycle_cache=True,
        retrain_on_cycle=False,
    )
    engine = FleetEngine(
        service,
        config=EngineConfig(max_workers=1, executor="serial", auto_refresh=False),
    )
    controller = LifecycleController(
        engine,
        PromotionPolicy(
            min_shadow_samples=6,
            min_improvement_days=0.1,
            min_relative_improvement=0.02,
        ),
        shadow=ShadowEvaluator(window_days=30),
    )
    ids = [f"v{i:03d}" for i in range(n_vehicles)]
    engine.register_fleet(ids)
    return engine, controller, ids


def paired_days(
    engine, controller, ids, rates, rng, start_day: int, days: int
) -> tuple[list[float], list[float]]:
    """Serve ``days`` fleet-days, the lifecycle sweep on every other one.

    Each day's timed region is ``predict_all`` plus — on sweep days —
    one ``controller.run_once()``; ingest stays outside it.  In steady
    state no candidates fire, so the measured delta is exactly what
    the sweep costs every serve day of a healthy fleet.
    """
    times: dict[bool, list[float]] = {True: [], False: []}
    gc.collect()
    gc.disable()
    try:
        for row in range(days):
            engine.ingest_day(
                {
                    vid: float(
                        np.clip(
                            rates[vid] + rng.normal(0.0, rates[vid] * 0.02),
                            1_000,
                            86_400,
                        )
                    )
                    for vid in ids
                },
                day=start_day + row,
            )
            sweeping = row % 2 == 0
            started = time.perf_counter()
            engine.predict_all()
            if sweeping:
                controller.run_once()
            times[sweeping].append(time.perf_counter() - started)
    finally:
        gc.enable()
    return times[True], times[False]


def measure_drift_evaluation(engine, controller, ids, rates, rng, day: int):
    """One drift-triggered evaluate (train + shadow + promote), timed.

    Shifts one vehicle's regime, serves until its alert debounce is
    satisfied, then times the controller's full response.  Returns
    (seconds, outcome, days elapsed).
    """
    target = ids[0]
    started_day = day
    while day - started_day < 120:
        engine.ingest_day(
            {
                vid: float(
                    np.clip(
                        rates[vid]
                        * (2.0 if vid == target else 1.0)
                        + rng.normal(0.0, rates[vid] * 0.02),
                        1_000,
                        86_400,
                    )
                )
                for vid in ids
            },
            day=day,
        )
        engine.predict_all()
        day += 1
        candidates = controller.candidates()
        if candidates:
            vehicle_id, reason = candidates[0]
            started = time.perf_counter()
            entry = controller.evaluate_vehicle(vehicle_id, reason)
            return time.perf_counter() - started, entry["outcome"], day
    raise RuntimeError("drift alert never fired within 120 days")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--vehicles", type=int, default=256, help="fleet width"
    )
    parser.add_argument(
        "--days", type=int, default=32, help="days per measurement window"
    )
    parser.add_argument(
        "--pairs", type=int, default=4, help="measurement windows"
    )
    parser.add_argument(
        "--quick", action="store_true", help="CI sizing: ~5 s total"
    )
    parser.add_argument(
        "--no-enforce",
        action="store_true",
        help="report only; skip the <10%% overhead assertion",
    )
    args = parser.parse_args(argv)

    n_vehicles, days, pairs = args.vehicles, args.days, args.pairs
    if args.quick:
        n_vehicles, days, pairs = 128, 16, 2

    rng = np.random.default_rng(0)
    on_times: list[float] = []
    off_times: list[float] = []
    with tempfile.TemporaryDirectory() as tmp:
        engine, controller, ids = build_stack(n_vehicles, tmp)
        rates = dict(
            zip(ids, rng.uniform(15_000.0, 21_000.0, size=n_vehicles))
        )
        # Warm until every vehicle is OLD with a frozen champion and
        # the monitor has resolved residuals (steady state, no alerts).
        day = 0
        for _ in range(30):
            engine.ingest_day(
                {
                    vid: float(
                        np.clip(
                            rates[vid] + rng.normal(0.0, rates[vid] * 0.02),
                            1_000,
                            86_400,
                        )
                    )
                    for vid in ids
                },
                day=day,
            )
            if day >= 15:
                engine.predict_all()
            day += 1

        for pair in range(pairs + 1):
            on, off = paired_days(
                engine, controller, ids, rates, rng, day, days
            )
            day += days
            if pair > 0:  # first window is warm-up
                on_times.extend(on)
                off_times.extend(off)
        sweeps = controller.counters()["sweeps"]
        promotions = controller.counters()["promotions"]

        eval_s, eval_outcome, day = measure_drift_evaluation(
            engine, controller, ids, rates, rng, day
        )

    def fast_quartile(times: list[float]) -> float:
        fastest = sorted(times)[: max(1, len(times) // 4)]
        return sum(fastest) / len(fastest)

    regression = fast_quartile(on_times) / fast_quartile(off_times) - 1.0
    on_rate = n_vehicles / fast_quartile(on_times)
    off_rate = n_vehicles / fast_quartile(off_times)
    lines = [
        "Lifecycle overhead benchmark",
        "",
        f"{n_vehicles} vehicles x {days} days per window, "
        f"{pairs} windows of alternating sweep-on/off serve days "
        f"({sweeps} sweeps, {promotions} steady-state promotions)",
        "",
        f"sweep off : {off_rate:10.0f} forecasts/s (fastest-quartile)",
        f"sweep on  : {on_rate:10.0f} forecasts/s (fastest-quartile)",
        f"fastest-quartile regression: {regression * 100:+.1f}%",
        "",
        f"drift-triggered evaluation (train + shadow + gate, off-path): "
        f"{eval_s * 1000:.1f} ms -> {eval_outcome}",
    ]
    text = "\n".join(lines)
    print(text)
    if not args.quick:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "lifecycle.txt").write_text(text + "\n")
        print(f"wrote {RESULTS_DIR / 'lifecycle.txt'}")
    if promotions:
        print(
            f"FAIL: {promotions} promotion(s) fired in the steady-state "
            "window; the overhead measurement is contaminated",
            file=sys.stderr,
        )
        return 1
    if regression >= 0.10 and not args.no_enforce:
        print(
            f"FAIL: lifecycle sweeps cost {regression * 100:.1f}% serve "
            "throughput (the budget is < 10%)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
