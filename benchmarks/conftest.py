"""Shared fixtures for the benchmark harness.

Each ``bench_*.py`` regenerates one table or figure of the paper.  The
experiment setup and the expensive Figure-4 sweep are session-scoped so
Table 2 and Figure 5 (which are derived from it, as in the paper) reuse
the same run.  Every bench prints its paper-style rows (so the tee'd
bench log doubles as the reproduction report) and writes them under
``results/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.config import ExperimentSetup
from repro.experiments.figure4 import run_figure4

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def setup() -> ExperimentSetup:
    """Bench-scale setup: full 24-vehicle fleet, 8 old-vehicle subset,
    registry-default hyper-parameters (no grid) to keep runtime bounded.
    """
    return ExperimentSetup(seed=0, fast=True)


@pytest.fixture(scope="session")
def figure4_result(setup):
    """The W-sweep of Figure 4, shared with Table 2 and Figure 5."""
    return run_figure4(setup)


@pytest.fixture
def report(capsys):
    """Print a rendered table to the real stdout and persist it."""

    def _report(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")

    return _report
