"""Table 2: best window per algorithm and the resulting E_MRE.

Reproduced shape (paper: BL W=0/20.2, LR 0/10.8, LSVR 6/5.2, RF 18/1.3,
XGB 12/4.2): the non-linear ensembles pick non-trivial windows and land
at the lowest errors, BL keeps W=0 by construction, and the final
ordering puts RF/XGB ahead of the linear models ahead of BL.
"""

from repro.experiments.table2 import run_table2


def test_table2(benchmark, setup, figure4_result, report):
    result = benchmark.pedantic(
        run_table2, args=(setup, figure4_result), rounds=1
    )
    report("table2", result.render())

    assert result.row("BL").best_window == 0
    for key in ("RF", "XGB"):
        assert result.row(key).best_window > 0

    bl = result.row("BL").e_mre
    for key in ("LR", "LSVR", "RF", "XGB"):
        assert result.row(key).e_mre < bl
    assert result.row("RF").e_mre < result.row("LR").e_mre
    assert result.row("XGB").e_mre < result.row("LR").e_mre
