"""Feature scaling transformers.

Section 3 of the paper ("Data normalization allows us to scale the values of
the utilization times to a uniform value range (e.g., from 0 to 1)") motivates
:class:`MinMaxScaler`; :class:`StandardScaler` and :class:`RobustScaler` are
provided for the linear models, which are sensitive to feature scale.
"""

from __future__ import annotations

import numpy as np

from .base import BaseEstimator
from .validation import check_array, check_is_fitted

__all__ = ["MinMaxScaler", "StandardScaler", "RobustScaler"]


class _BaseScaler(BaseEstimator):
    """Shared fit/transform plumbing for column-wise affine scalers."""

    def fit(self, X, y=None):
        X = check_array(X)
        self._fit_stats(X)
        self.n_features_in_ = X.shape[1]
        return self

    def transform(self, X) -> np.ndarray:
        check_is_fitted(self, "n_features_in_")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features; scaler was fitted with "
                f"{self.n_features_in_}."
            )
        return (X - self.offset_) / self.scale_

    def inverse_transform(self, X) -> np.ndarray:
        check_is_fitted(self, "n_features_in_")
        X = check_array(X)
        return X * self.scale_ + self.offset_

    def fit_transform(self, X, y=None) -> np.ndarray:
        return self.fit(X, y).transform(X)

    def _fit_stats(self, X: np.ndarray) -> None:  # pragma: no cover
        raise NotImplementedError


def _guard_scale(scale: np.ndarray) -> np.ndarray:
    """Replace zero scales with 1 so constant columns map to 0, not NaN."""
    scale = scale.copy()
    scale[scale == 0.0] = 1.0
    return scale


class MinMaxScaler(_BaseScaler):
    """Scale each feature to a target range, default ``[0, 1]``.

    Parameters
    ----------
    feature_range:
        ``(lo, hi)`` output range.
    clip:
        If true, transformed values of unseen data are clipped into the
        range (useful when test utilization exceeds the training maximum).
    """

    def __init__(self, feature_range: tuple[float, float] = (0.0, 1.0), clip: bool = False):
        self.feature_range = feature_range
        self.clip = clip

    def _fit_stats(self, X: np.ndarray) -> None:
        lo, hi = self.feature_range
        if lo >= hi:
            raise ValueError(
                f"feature_range minimum must be below maximum, got {self.feature_range}."
            )
        data_min = X.min(axis=0)
        data_max = X.max(axis=0)
        span = _guard_scale(data_max - data_min)
        self.data_min_ = data_min
        self.data_max_ = data_max
        # Affine map: (x - offset_) / scale_ lands in feature_range.
        self.scale_ = span / (hi - lo)
        self.offset_ = data_min - lo * self.scale_

    def transform(self, X) -> np.ndarray:
        out = super().transform(X)
        if self.clip:
            lo, hi = self.feature_range
            np.clip(out, lo, hi, out=out)
        return out


class StandardScaler(_BaseScaler):
    """Standardize features to zero mean and unit variance."""

    def __init__(self, with_mean: bool = True, with_std: bool = True):
        self.with_mean = with_mean
        self.with_std = with_std

    def _fit_stats(self, X: np.ndarray) -> None:
        self.mean_ = X.mean(axis=0) if self.with_mean else np.zeros(X.shape[1])
        std = X.std(axis=0) if self.with_std else np.ones(X.shape[1])
        self.std_ = std
        self.offset_ = self.mean_
        self.scale_ = _guard_scale(std)


class RobustScaler(_BaseScaler):
    """Scale using median and inter-quantile range; robust to usage spikes."""

    def __init__(self, quantile_range: tuple[float, float] = (25.0, 75.0)):
        self.quantile_range = quantile_range

    def _fit_stats(self, X: np.ndarray) -> None:
        q_lo, q_hi = self.quantile_range
        if not 0 <= q_lo < q_hi <= 100:
            raise ValueError(f"Invalid quantile_range {self.quantile_range}.")
        self.center_ = np.median(X, axis=0)
        iqr = np.percentile(X, q_hi, axis=0) - np.percentile(X, q_lo, axis=0)
        self.offset_ = self.center_
        self.scale_ = _guard_scale(iqr)
