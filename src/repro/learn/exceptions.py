"""Exception types for the :mod:`repro.learn` estimator library."""

from __future__ import annotations


class LearnError(Exception):
    """Base class for all errors raised by :mod:`repro.learn`."""


class NotFittedError(LearnError, AttributeError):
    """Raised when an estimator is used before :meth:`fit` was called.

    Inherits from :class:`AttributeError` so that callers who probe for
    fitted attributes with ``getattr`` keep working.
    """


class DataValidationError(LearnError, ValueError):
    """Raised when input arrays fail validation (shape, dtype, NaN...)."""


class ConvergenceWarning(UserWarning):
    """Emitted when an iterative solver stops before reaching tolerance."""
