"""From-scratch machine-learning substrate for the reproduction.

This package stands in for scikit-learn (unavailable in the offline
environment): estimator protocol, linear models, linear SVR, CART trees,
random forests, histogram gradient boosting, cross-validation and grid
search, scalers and metrics.  Every model family the paper evaluates
(Section 4.2: LR, LSVR, RF, XGB) lives here.
"""

from .base import BaseEstimator, RegressorMixin, clone
from .boosting import BinMapper, HistGradientBoostingRegressor
from .dummy import DummyRegressor
from .exceptions import (
    ConvergenceWarning,
    DataValidationError,
    LearnError,
    NotFittedError,
)
from .forest import RandomForestRegressor
from .linear import LinearRegression, Ridge
from .metrics import (
    explained_variance_score,
    max_error,
    mean_absolute_error,
    mean_absolute_percentage_error,
    mean_squared_error,
    median_absolute_error,
    r2_score,
    residuals,
    root_mean_squared_error,
)
from .neural import MLPRegressor
from .model_selection import (
    GridSearchCV,
    KFold,
    ParameterGrid,
    ParameterSampler,
    RandomizedSearchCV,
    TimeSeriesSplit,
    cross_val_score,
    make_scorer,
    neg_mean_absolute_error_scorer,
    temporal_train_test_split,
    train_test_split,
)
from .pipeline import Pipeline, make_pipeline
from .preprocessing import MinMaxScaler, RobustScaler, StandardScaler
from .svm import LinearSVR
from .tree import DecisionTreeRegressor, Tree, export_text

__all__ = [
    "BaseEstimator",
    "RegressorMixin",
    "clone",
    "BinMapper",
    "HistGradientBoostingRegressor",
    "DummyRegressor",
    "ConvergenceWarning",
    "DataValidationError",
    "LearnError",
    "NotFittedError",
    "RandomForestRegressor",
    "LinearRegression",
    "Ridge",
    "MLPRegressor",
    "LinearSVR",
    "DecisionTreeRegressor",
    "Tree",
    "export_text",
    "GridSearchCV",
    "KFold",
    "ParameterGrid",
    "ParameterSampler",
    "RandomizedSearchCV",
    "TimeSeriesSplit",
    "cross_val_score",
    "make_scorer",
    "neg_mean_absolute_error_scorer",
    "temporal_train_test_split",
    "train_test_split",
    "Pipeline",
    "make_pipeline",
    "MinMaxScaler",
    "RobustScaler",
    "StandardScaler",
    "explained_variance_score",
    "max_error",
    "mean_absolute_error",
    "mean_absolute_percentage_error",
    "mean_squared_error",
    "median_absolute_error",
    "r2_score",
    "residuals",
    "root_mean_squared_error",
]
