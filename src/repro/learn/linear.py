"""Linear models: ordinary least squares and ridge regression.

``LinearRegression`` is the paper's LR model (Section 4.2): "the simplest
linear model.  It learns a linear function minimizing the residual sum of
squares".  ``Ridge`` is included because per-vehicle windowed datasets can be
nearly collinear (consecutive utilization days), where a small L2 penalty
stabilizes coefficients.
"""

from __future__ import annotations

import numpy as np

from .base import BaseEstimator, RegressorMixin
from .validation import check_array, check_is_fitted, check_X_y

__all__ = ["LinearRegression", "Ridge"]


class _BaseLinear(BaseEstimator, RegressorMixin):
    """Shared predict path for models exposing ``coef_`` / ``intercept_``."""

    trusted_predict = True

    def predict(self, X, *, validate: bool = True) -> np.ndarray:
        if validate:
            check_is_fitted(self, ["coef_", "intercept_"])
            X = check_array(X)
            if X.shape[1] != self.coef_.shape[0]:
                raise ValueError(
                    f"X has {X.shape[1]} features; model was fitted with "
                    f"{self.coef_.shape[0]}."
                )
        else:
            X = np.asarray(X, dtype=np.float64)
        return X @ self.coef_ + self.intercept_


class LinearRegression(_BaseLinear):
    """Ordinary least squares via :func:`numpy.linalg.lstsq`.

    Parameters
    ----------
    fit_intercept:
        If true (default), data is centered before solving so an intercept
        is learned; otherwise the fit goes through the origin.
    """

    def __init__(self, fit_intercept: bool = True):
        self.fit_intercept = fit_intercept

    def fit(self, X, y):
        X, y = check_X_y(X, y)
        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = y.mean()
            coef, *_ = np.linalg.lstsq(X - x_mean, y - y_mean, rcond=None)
            self.coef_ = coef
            self.intercept_ = float(y_mean - x_mean @ coef)
        else:
            coef, *_ = np.linalg.lstsq(X, y, rcond=None)
            self.coef_ = coef
            self.intercept_ = 0.0
        self.n_features_in_ = X.shape[1]
        return self


class Ridge(_BaseLinear):
    """L2-regularized least squares, solved in closed form.

    Solves ``min ||Xw - y||^2 + alpha * ||w||^2``; the intercept, when
    fitted, is not penalized (handled by centering).
    """

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True):
        self.alpha = alpha
        self.fit_intercept = fit_intercept

    def fit(self, X, y):
        X, y = check_X_y(X, y)
        if self.alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {self.alpha}.")
        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = y.mean()
            xc = X - x_mean
            yc = y - y_mean
        else:
            x_mean = np.zeros(X.shape[1])
            y_mean = 0.0
            xc, yc = X, y
        n_features = X.shape[1]
        gram = xc.T @ xc + self.alpha * np.eye(n_features)
        self.coef_ = np.linalg.solve(gram, xc.T @ yc)
        self.intercept_ = float(y_mean - x_mean @ self.coef_)
        self.n_features_in_ = n_features
        return self
