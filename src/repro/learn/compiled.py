"""Compiled inference kernels: flat node tables + level-wise descent.

The reference estimators predict through per-tree Python loops — the
forest sums ``tree.predict(X)`` over N trees, the boosted model sums
``learning_rate * tree.predict_binned(binned)`` over N rounds — so a
fleet-shaped workload (thousands of single-row predicts per day) is
dominated by interpreter dispatch, not arithmetic.  This module flattens
a fitted estimator into contiguous structure-of-arrays node tables
(feature, threshold, left/right child, leaf value, per-tree root
offsets) and advances **all (row x tree) cursors together**, one tree
level per numpy step, so an ensemble predict costs ~``max_depth``
vectorized gathers instead of N Python round trips.

Bit-identity contract
---------------------
Compiled predictions are bit-identical to the reference path
(:func:`reference_predict`), because

* a tree prediction is a pure *gather*: the kernel walks exactly the
  comparisons the reference descent walks (``x[feature] <= threshold``
  on the same float64 values) and copies the same leaf value — no
  arithmetic is introduced, so stacking rows from many vehicles into one
  matrix cannot change any row's bits;
* aggregation replays the reference summation order: the forest
  accumulates per-tree columns into ``zeros`` then divides by N, the
  boosted model accumulates ``learning_rate * column`` onto the baseline
  — the same elementwise IEEE operations in the same order;
* leaves are encoded as self-loops (``left == right == node``), so once
  a cursor lands on its leaf further levels leave it in place and the
  comparison outcome is irrelevant — degenerate single-leaf trees and
  ragged depths need no masking.

Linear models (``X @ coef`` is a reduction whose batched BLAS path is
*not* bitwise row-separable) are compiled with ``batch_safe = False``:
the serving layer calls them row-at-a-time and only skips the
per-call validation overhead.

``tests/learn/test_compiled.py`` pins the contract with exact byte
comparisons across estimator types, depths 1-50 and degenerate trees.
"""

from __future__ import annotations

from weakref import WeakKeyDictionary

import numpy as np

__all__ = [
    "CompileError",
    "compile_model",
    "try_compile",
    "reference_predict",
    "ensemble_kernel",
    "gbdt_kernel",
]


class CompileError(TypeError):
    """The model cannot be flattened into a vectorized kernel."""


def _require_fitted(model, attribute: str) -> None:
    if not hasattr(model, attribute):
        raise CompileError(
            f"{type(model).__name__} is missing {attribute!r}; "
            "fit the model before compiling it."
        )


def _tree_depth(children_left, children_right) -> int:
    """Depth of the deepest leaf in a flat-array tree (root = 0)."""
    n = len(children_left)
    depth = np.zeros(n, dtype=np.intp)
    out = 0
    for node in range(n):
        left = children_left[node]
        if left != -1:
            child_depth = depth[node] + 1
            depth[left] = child_depth
            depth[children_right[node]] = child_depth
            if child_depth > out:
                out = int(child_depth)
    return out


class _FlatForest:
    """Concatenated node tables for a set of flat-array trees.

    Works for both CART trees (float thresholds over raw features) and
    histogram trees (integer thresholds over binned codes): the caller
    supplies per-tree ``(children_left, children_right, feature,
    threshold, value)`` arrays plus a leaf threshold sentinel that makes
    ``x <= sentinel`` false for every valid input, so leaf self-loops
    always take the (self-pointing) right child.
    """

    __slots__ = (
        "feature",
        "threshold",
        "left",
        "right",
        "value",
        "roots",
        "n_trees",
        "depth",
        "node_count",
    )

    def __init__(self, trees, leaf_threshold):
        features, thresholds, lefts, rights, values, roots = (
            [],
            [],
            [],
            [],
            [],
            [],
        )
        base = 0
        depth = 0
        for children_left, children_right, feature, threshold, value in trees:
            n = len(value)
            leaf = np.asarray(children_left) == -1
            nodes = np.arange(base, base + n, dtype=np.intp)
            lefts.append(
                np.where(leaf, nodes, np.asarray(children_left) + base)
            )
            rights.append(
                np.where(leaf, nodes, np.asarray(children_right) + base)
            )
            feat = np.asarray(feature, dtype=np.intp).copy()
            feat[leaf] = 0
            features.append(feat)
            thr = np.asarray(threshold).copy()
            thr[leaf] = leaf_threshold
            thresholds.append(thr)
            values.append(np.asarray(value, dtype=np.float64))
            roots.append(base)
            depth = max(depth, _tree_depth(children_left, children_right))
            base += n
        self.feature = np.ascontiguousarray(np.concatenate(features))
        self.threshold = np.ascontiguousarray(np.concatenate(thresholds))
        self.left = np.ascontiguousarray(
            np.concatenate(lefts).astype(np.intp)
        )
        self.right = np.ascontiguousarray(
            np.concatenate(rights).astype(np.intp)
        )
        self.value = np.ascontiguousarray(np.concatenate(values))
        self.roots = np.asarray(roots, dtype=np.intp)
        self.n_trees = len(roots)
        self.depth = depth
        self.node_count = base

    def descend(self, codes: np.ndarray) -> np.ndarray:
        """Leaf values for every (tree, row) pair: shape ``(T, R)``.

        ``codes`` is the ``(R, F)`` matrix the thresholds live in (raw
        float features for CART, uint8 bin codes for histogram trees).
        One fancy-gather triple per level; leaves self-loop, so running
        exactly ``depth`` iterations parks every cursor on its leaf.
        """
        rows, n_features = codes.shape
        flat = np.ascontiguousarray(codes).ravel()
        column_base = np.arange(rows, dtype=np.intp) * n_features
        cursor = np.broadcast_to(
            self.roots[:, None], (self.n_trees, rows)
        ).copy()
        for _ in range(self.depth):
            cell = self.feature[cursor]
            np.add(cell, column_base, out=cell)
            go_left = flat[cell] <= self.threshold[cursor]
            cursor = np.where(
                go_left, self.left[cursor], self.right[cursor]
            )
        return self.value[cursor]


class _CompiledTrees:
    """Kernel for :class:`~repro.learn.tree.DecisionTreeRegressor` and
    :class:`~repro.learn.forest.RandomForestRegressor`."""

    batch_safe = True
    kind = "trees"

    def __init__(self, trees, n_features: int, aggregate: str):
        # `x <= -inf` is false for every finite x, so leaf self-loops
        # always re-take the self-pointing right child.
        self.forest = _FlatForest(
            [
                (t.children_left, t.children_right, t.feature, t.threshold, t.value)
                for t in trees
            ],
            leaf_threshold=-np.inf,
        )
        self.n_features = int(n_features)
        self.aggregate = aggregate

    def predict_per_tree(self, X: np.ndarray) -> np.ndarray:
        """``(n_trees, n_rows)`` leaf-value matrix from one traversal."""
        return self.forest.descend(np.asarray(X, dtype=np.float64))

    def predict(self, X: np.ndarray) -> np.ndarray:
        per_tree = self.predict_per_tree(X)
        if self.aggregate == "single":
            return per_tree[0]
        # Reference summation order: zeros, += tree-by-tree, / N.
        out = np.zeros(per_tree.shape[1])
        for t in range(per_tree.shape[0]):
            out += per_tree[t]
        return out / per_tree.shape[0]


class _CompiledGBDT:
    """Kernel for :class:`~repro.learn.boosting.
    HistGradientBoostingRegressor`, bin thresholds included.

    Keeps a handle on the fitted :class:`~repro.learn.boosting.
    BinMapper` and uses its trusted single-``searchsorted`` transform;
    the traversal then compares uint8 bin codes against the flattened
    integer thresholds (leaf sentinel ``-1``: no code is ``<= -1``).
    """

    batch_safe = True
    kind = "gbdt"

    def __init__(self, estimator):
        self.mapper = estimator.bin_mapper_
        self.forest = _FlatForest(
            [
                (t.children_left, t.children_right, t.feature,
                 np.asarray(t.bin_threshold, dtype=np.int64), t.value)
                for t in estimator.estimators_
            ],
            leaf_threshold=-1,
        )
        self.learning_rate = float(estimator.learning_rate)
        self.baseline = float(estimator.baseline_prediction_)
        self.n_features = len(self.mapper.bin_edges_)

    def predict_per_tree(self, X: np.ndarray) -> np.ndarray:
        binned = self.mapper.transform(
            np.asarray(X, dtype=np.float64), validate=False
        )
        return self.forest.descend(binned)

    def predict(self, X: np.ndarray) -> np.ndarray:
        per_tree = self.predict_per_tree(X)
        # Reference summation order: baseline, += lr * tree-by-tree.
        out = np.full(per_tree.shape[1], self.baseline)
        for t in range(per_tree.shape[0]):
            out += self.learning_rate * per_tree[t]
        return out


class _CompiledLinear:
    """Single-matvec kernel for ``coef_`` / ``intercept_`` models.

    ``X @ coef`` reduces over features through BLAS paths that change
    with the batch shape, so a stacked matvec is *not* bitwise equal to
    per-row dots — hence ``batch_safe = False``: the serving layer
    calls this one row at a time (each call still bit-identical to the
    reference, which runs the very same expression on the same row).
    """

    batch_safe = False
    kind = "linear"

    def __init__(self, coef, intercept):
        self.coef = np.ascontiguousarray(coef, dtype=np.float64)
        self.intercept = float(intercept)
        self.n_features = self.coef.shape[0]

    def predict(self, X: np.ndarray) -> np.ndarray:
        return X @ self.coef + self.intercept


class _CompiledPipeline:
    """Affine scaler stages in front of an inner compiled kernel."""

    kind = "pipeline"

    def __init__(self, stages, inner):
        self.stages = [
            (
                np.asarray(offset, dtype=np.float64),
                np.asarray(scale, dtype=np.float64),
            )
            for offset, scale in stages
        ]
        self.inner = inner
        self.batch_safe = inner.batch_safe
        self.n_features = (
            self.stages[0][0].shape[0] if self.stages else inner.n_features
        )

    def predict(self, X: np.ndarray) -> np.ndarray:
        for offset, scale in self.stages:
            X = (X - offset) / scale
        return self.inner.predict(X)


class _CompiledBaseline:
    """Eqs. 5-6 baseline: ``max(L(t), 0) / AVG_v`` (elementwise)."""

    batch_safe = True
    kind = "baseline"

    def __init__(self, average: float):
        self.average = float(average)
        self.n_features = 1

    def predict(self, X: np.ndarray) -> np.ndarray:
        return np.maximum(X[:, 0], 0.0) / self.average


class _CompiledPredictor:
    """A compiled :class:`~repro.core.predictors.RegressionPredictor`:
    the inner estimator kernel plus its non-negativity clip."""

    kind = "predictor"

    def __init__(self, inner, clip_negative: bool):
        self.inner = inner
        self.clip_negative = bool(clip_negative)
        self.batch_safe = inner.batch_safe
        self.n_features = inner.n_features

    def predict(self, X: np.ndarray) -> np.ndarray:
        out = self.inner.predict(X)
        if self.clip_negative:
            out = np.maximum(out, 0.0)
        return out


def compile_model(model):
    """Flatten a fitted model into a vectorized inference kernel.

    Supported: :class:`DecisionTreeRegressor`,
    :class:`RandomForestRegressor`, :class:`HistGradientBoostingRegressor`
    (bin thresholds included), ``coef_``/``intercept_`` linear models
    (:class:`LinearRegression`, :class:`Ridge`, :class:`LinearSVR`),
    :class:`Pipeline` chains of affine scalers over any of the above,
    and the serving-facade wrappers :class:`RegressionPredictor` /
    :class:`BaselinePredictor`.  Raises :class:`CompileError` for
    anything else (use :func:`try_compile` for a ``None`` fallback).

    The returned kernel's ``predict(X)`` is bit-identical to the
    reference model's ``predict`` on the same ``X``; kernels with
    ``batch_safe = True`` additionally guarantee that row ``i`` of a
    stacked batch equals the single-row prediction of row ``i``.
    """
    # Imports are local: these modules import this one for their own
    # fused predict paths, so a module-level import would be circular.
    from ..core.predictors import BaselinePredictor, RegressionPredictor
    from .boosting import HistGradientBoostingRegressor
    from .forest import RandomForestRegressor
    from .linear import _BaseLinear
    from .pipeline import Pipeline
    from .tree import DecisionTreeRegressor

    if isinstance(model, RegressionPredictor):
        _require_fitted(model, "model_")
        return _CompiledPredictor(
            compile_model(model.model_), model.clip_negative
        )
    if isinstance(model, BaselinePredictor):
        _require_fitted(model, "average_")
        return _CompiledBaseline(model.average_)
    if isinstance(model, RandomForestRegressor):
        _require_fitted(model, "estimators_")
        return _CompiledTrees(
            [tree.tree_ for tree in model.estimators_],
            model.n_features_in_,
            aggregate="mean",
        )
    if isinstance(model, DecisionTreeRegressor):
        _require_fitted(model, "tree_")
        return _CompiledTrees(
            [model.tree_], model.n_features_in_, aggregate="single"
        )
    if isinstance(model, HistGradientBoostingRegressor):
        _require_fitted(model, "estimators_")
        return _CompiledGBDT(model)
    if isinstance(model, Pipeline):
        _require_fitted(model, "fitted_")
        stages = []
        for name, step in model.steps[:-1]:
            if not (hasattr(step, "offset_") and hasattr(step, "scale_")):
                raise CompileError(
                    f"Pipeline step {name!r} ({type(step).__name__}) is "
                    "not an affine scaler; cannot compile."
                )
            if getattr(step, "clip", False):
                raise CompileError(
                    f"Pipeline step {name!r} clips its output; the "
                    "affine-stage kernel would change semantics."
                )
            stages.append((step.offset_, step.scale_))
        return _CompiledPipeline(stages, compile_model(model.steps[-1][1]))
    if isinstance(model, _BaseLinear):
        _require_fitted(model, "coef_")
        return _CompiledLinear(model.coef_, model.intercept_)
    raise CompileError(
        f"Cannot compile {type(model).__name__}; no kernel for it."
    )


def try_compile(model):
    """:func:`compile_model`, but ``None`` instead of raising for
    unsupported or unfitted models (the serving layer's fallback)."""
    try:
        return compile_model(model)
    except CompileError:
        return None


# -- per-estimator kernel cache ---------------------------------------------
#
# Fitted ensembles cache their compiled kernel here, keyed on the
# estimator instance (weakly, so pickled artifacts never carry the
# flattened tables) and tokened on the identity of ``estimators_`` —
# a refit rebuilds that list, which invalidates the kernel.

_KERNELS: "WeakKeyDictionary" = WeakKeyDictionary()


def _cached_kernel(estimator, token, build):
    entry = _KERNELS.get(estimator)
    if entry is not None and entry[0] == token:
        return entry[1]
    kernel = build()
    _KERNELS[estimator] = (token, kernel)
    return kernel


def ensemble_kernel(forest) -> _CompiledTrees:
    """The (cached) fused kernel for a fitted random forest."""
    return _cached_kernel(
        forest,
        id(forest.estimators_),
        lambda: _CompiledTrees(
            [tree.tree_ for tree in forest.estimators_],
            forest.n_features_in_,
            aggregate="mean",
        ),
    )


def gbdt_kernel(estimator) -> _CompiledGBDT:
    """The (cached) fused kernel for a fitted boosting model."""
    return _cached_kernel(
        estimator,
        id(estimator.estimators_),
        lambda: _CompiledGBDT(estimator),
    )


# -- reference oracle --------------------------------------------------------


def _reference_binned(mapper, X: np.ndarray) -> np.ndarray:
    """The pre-kernel per-feature binning loop, kept as the oracle."""
    binned = np.empty(X.shape, dtype=np.uint8)
    for j, cuts in enumerate(mapper.bin_edges_):
        binned[:, j] = np.searchsorted(cuts, X[:, j], side="left")
    return binned


def reference_predict(model, X) -> np.ndarray:
    """The pre-kernel serial prediction path, op for op.

    Used as the correctness oracle by the compiled-kernel tests and as
    the honest baseline by ``benchmarks/bench_predict_kernel.py``: it
    re-runs the per-tree Python loops (including each tree's own input
    re-validation, exactly as the old ensemble ``predict`` did) that the
    fused kernels replace.
    """
    from ..core.predictors import BaselinePredictor, RegressionPredictor
    from .boosting import HistGradientBoostingRegressor
    from .forest import RandomForestRegressor
    from .validation import check_array, check_is_fitted

    if isinstance(model, RegressionPredictor):
        out = reference_predict(
            model.model_, np.asarray(X, dtype=np.float64)
        )
        if model.clip_negative:
            out = np.maximum(out, 0.0)
        return out
    if isinstance(model, BaselinePredictor):
        X = np.asarray(X, dtype=np.float64)
        return np.maximum(X[:, 0], 0.0) / model.average_
    if isinstance(model, RandomForestRegressor):
        check_is_fitted(model, "estimators_")
        X = check_array(X)
        out = np.zeros(X.shape[0])
        for tree in model.estimators_:
            out += tree.predict(X)
        return out / len(model.estimators_)
    if isinstance(model, HistGradientBoostingRegressor):
        check_is_fitted(model, "estimators_")
        X = check_array(X)
        binned = _reference_binned(model.bin_mapper_, X)
        out = np.full(X.shape[0], model.baseline_prediction_)
        for tree in model.estimators_:
            out += model.learning_rate * tree.predict_binned(binned)
        return out
    # Linear models, pipelines, single trees: their predict path never
    # had a per-estimator Python loop, so the live path is the oracle.
    return model.predict(X)
