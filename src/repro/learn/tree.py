"""CART regression trees.

The paper's non-linear models (RF, and the boosted variant it calls XGB)
are ensembles of decision-tree regressors, described in Section 4.2 as "the
most popular non-linear mapping functions between non-predictive and
predictive variables".  This module implements the classic CART algorithm
with variance-reduction (squared-error) splitting:

* exact best-split search, vectorized per feature with prefix sums;
* ``max_depth``, ``min_samples_split``, ``min_samples_leaf``,
  ``min_impurity_decrease`` pre-pruning controls matching the grid the
  paper sweeps (tree depth 3-50);
* ``max_features`` column subsampling, which is what turns bagged trees
  into a random forest (:mod:`repro.learn.forest`).

Trees are stored in flat parallel arrays (``children_left``, ``feature``,
``threshold``...) so prediction is a vectorized breadth-first descent rather
than per-sample Python recursion.
"""

from __future__ import annotations

import numpy as np

from .base import BaseEstimator, RegressorMixin
from .validation import (
    check_array,
    check_is_fitted,
    check_random_state,
    check_X_y,
)

__all__ = ["DecisionTreeRegressor", "Tree", "export_text"]

_LEAF = -1


class Tree:
    """Flat-array binary tree produced by :class:`DecisionTreeRegressor`.

    Attributes
    ----------
    children_left, children_right:
        Node index of each child; ``-1`` marks a leaf.
    feature:
        Split feature per internal node (``-1`` on leaves).
    threshold:
        Split threshold; samples with ``x[feature] <= threshold`` go left.
    value:
        Mean training target of the node (the prediction, on leaves).
    n_node_samples:
        Training samples that reached the node.
    impurity:
        Node variance (mean squared deviation from the node mean).
    """

    def __init__(self):
        self.children_left: list[int] = []
        self.children_right: list[int] = []
        self.feature: list[int] = []
        self.threshold: list[float] = []
        self.value: list[float] = []
        self.n_node_samples: list[int] = []
        self.impurity: list[float] = []

    def add_node(self, value: float, n_samples: int, impurity: float) -> int:
        """Append a (provisional leaf) node; return its index."""
        self.children_left.append(_LEAF)
        self.children_right.append(_LEAF)
        self.feature.append(_LEAF)
        self.threshold.append(np.nan)
        self.value.append(value)
        self.n_node_samples.append(n_samples)
        self.impurity.append(impurity)
        return len(self.value) - 1

    def finalize(self) -> None:
        """Freeze python lists into ndarrays for fast prediction."""
        self.children_left = np.asarray(self.children_left, dtype=np.intp)
        self.children_right = np.asarray(self.children_right, dtype=np.intp)
        self.feature = np.asarray(self.feature, dtype=np.intp)
        self.threshold = np.asarray(self.threshold, dtype=np.float64)
        self.value = np.asarray(self.value, dtype=np.float64)
        self.n_node_samples = np.asarray(self.n_node_samples, dtype=np.intp)
        self.impurity = np.asarray(self.impurity, dtype=np.float64)

    @property
    def node_count(self) -> int:
        return len(self.value)

    @property
    def n_leaves(self) -> int:
        return int(np.sum(np.asarray(self.children_left) == _LEAF))

    @property
    def max_depth(self) -> int:
        """Depth of the deepest leaf (root = depth 0)."""
        depth = np.zeros(self.node_count, dtype=np.intp)
        for node in range(self.node_count):
            left = self.children_left[node]
            right = self.children_right[node]
            if left != _LEAF:
                depth[left] = depth[node] + 1
                depth[right] = depth[node] + 1
        return int(depth.max()) if self.node_count else 0

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf index reached by each row of ``X`` (vectorized descent)."""
        node = np.zeros(X.shape[0], dtype=np.intp)
        while True:
            internal = self.children_left[node] != _LEAF
            if not internal.any():
                return node
            idx = np.nonzero(internal)[0]
            current = node[idx]
            go_left = (
                X[idx, self.feature[current]] <= self.threshold[current]
            )
            node[idx] = np.where(
                go_left,
                self.children_left[current],
                self.children_right[current],
            )

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.value[self.apply(X)]


def _node_impurity(y_sum: float, y_sq_sum: float, n: int) -> float:
    """Variance impurity from sufficient statistics."""
    return max(y_sq_sum / n - (y_sum / n) ** 2, 0.0)


def _best_split_for_feature(
    x: np.ndarray,
    y: np.ndarray,
    min_samples_leaf: int,
) -> tuple[float, float] | None:
    """Best (weighted child SSE, threshold) on one feature, or ``None``.

    Uses a sort + prefix-sum scan: every boundary between distinct sorted
    feature values is a candidate threshold, so the search is exact.
    """
    order = np.argsort(x, kind="stable")
    xs = x[order]
    ys = y[order]
    n = ys.size
    boundaries = np.nonzero(xs[1:] > xs[:-1])[0]
    if boundaries.size == 0:
        return None
    left_n = boundaries + 1
    valid = (left_n >= min_samples_leaf) & (n - left_n >= min_samples_leaf)
    boundaries = boundaries[valid]
    if boundaries.size == 0:
        return None
    left_n = left_n[valid]
    right_n = n - left_n
    cum_sum = np.cumsum(ys)
    cum_sq = np.cumsum(ys * ys)
    left_sum = cum_sum[boundaries]
    left_sq = cum_sq[boundaries]
    right_sum = cum_sum[-1] - left_sum
    right_sq = cum_sq[-1] - left_sq
    sse = (left_sq - left_sum**2 / left_n) + (right_sq - right_sum**2 / right_n)
    best = int(np.argmin(sse))
    pos = boundaries[best]
    threshold = 0.5 * (xs[pos] + xs[pos + 1])
    # Guard against midpoint rounding onto the upper value.
    if threshold >= xs[pos + 1]:
        threshold = xs[pos]
    return float(sse[best]), float(threshold)


class DecisionTreeRegressor(BaseEstimator, RegressorMixin):
    """CART regressor with squared-error splitting.

    Parameters
    ----------
    max_depth:
        Maximum tree depth; ``None`` grows until other limits bind.
    min_samples_split:
        Minimum samples required to consider splitting a node.
    min_samples_leaf:
        Minimum samples each child must keep.
    max_features:
        Features examined per split: ``None`` (all), an int, a float
        fraction, ``"sqrt"`` or ``"log2"``.
    min_impurity_decrease:
        Minimum weighted impurity decrease for a split to be accepted.
    random_state:
        Seed controlling feature subsampling order.
    """

    trusted_predict = True

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        min_impurity_decrease: float = 0.0,
        random_state=None,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.min_impurity_decrease = min_impurity_decrease
        self.random_state = random_state

    def _resolve_max_features(self, n_features: int) -> int:
        mf = self.max_features
        if mf is None:
            return n_features
        if isinstance(mf, str):
            if mf == "sqrt":
                return max(1, int(np.sqrt(n_features)))
            if mf == "log2":
                return max(1, int(np.log2(n_features)))
            raise ValueError(f"Unknown max_features string {mf!r}.")
        if isinstance(mf, float):
            if not 0.0 < mf <= 1.0:
                raise ValueError(
                    f"max_features fraction must be in (0, 1], got {mf}."
                )
            return max(1, int(mf * n_features))
        value = int(mf)
        if not 1 <= value <= n_features:
            raise ValueError(
                f"max_features={value} outside [1, {n_features}]."
            )
        return value

    def _validate_hyperparams(self) -> None:
        if self.max_depth is not None and self.max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {self.max_depth}.")
        if self.min_samples_split < 2:
            raise ValueError(
                f"min_samples_split must be >= 2, got {self.min_samples_split}."
            )
        if self.min_samples_leaf < 1:
            raise ValueError(
                f"min_samples_leaf must be >= 1, got {self.min_samples_leaf}."
            )
        if self.min_impurity_decrease < 0:
            raise ValueError(
                "min_impurity_decrease must be non-negative, got "
                f"{self.min_impurity_decrease}."
            )

    def fit(self, X, y, sample_indices: np.ndarray | None = None):
        """Grow the tree on ``(X, y)``.

        ``sample_indices`` optionally restricts training to a subset of
        rows without copying — the forest uses this for bootstrap bags.
        """
        X, y = check_X_y(X, y)
        self._validate_hyperparams()
        rng = check_random_state(self.random_state)
        n_features = X.shape[1]
        k_features = self._resolve_max_features(n_features)
        max_depth = np.inf if self.max_depth is None else self.max_depth

        if sample_indices is None:
            sample_indices = np.arange(X.shape[0], dtype=np.intp)
        else:
            sample_indices = np.asarray(sample_indices, dtype=np.intp)
            if sample_indices.size == 0:
                raise ValueError("sample_indices must not be empty.")

        tree = Tree()
        feature_importances = np.zeros(n_features)
        total_weight = sample_indices.size

        # Depth-first growth with an explicit stack of (indices, depth,
        # parent, is_left); children are attached after creation.
        root_y = y[sample_indices]
        root_id = tree.add_node(
            float(root_y.mean()),
            sample_indices.size,
            _node_impurity(root_y.sum(), (root_y**2).sum(), root_y.size),
        )
        stack: list[tuple[np.ndarray, int, int]] = [(sample_indices, 0, root_id)]
        while stack:
            indices, depth, node_id = stack.pop()
            n_node = indices.size
            node_impurity = tree.impurity[node_id]
            if (
                depth >= max_depth
                or n_node < self.min_samples_split
                or n_node < 2 * self.min_samples_leaf
                or node_impurity <= 0.0
            ):
                continue

            y_node = y[indices]
            if k_features < n_features:
                candidates = rng.choice(n_features, size=k_features, replace=False)
            else:
                candidates = np.arange(n_features)

            node_sse = node_impurity * n_node
            best_gain = -np.inf
            best_feature = -1
            best_threshold = np.nan
            for feat in candidates:
                found = _best_split_for_feature(
                    X[indices, feat], y_node, self.min_samples_leaf
                )
                if found is None:
                    continue
                child_sse, threshold = found
                gain = node_sse - child_sse
                if gain > best_gain:
                    best_gain = gain
                    best_feature = int(feat)
                    best_threshold = threshold

            # The impurity decrease is weighted by the node's share of
            # training samples, as in CART cost-complexity accounting.
            if best_feature < 0 or best_gain / total_weight < self.min_impurity_decrease:
                continue
            if best_gain <= 1e-12 * max(node_sse, 1.0):
                continue

            go_left = X[indices, best_feature] <= best_threshold
            left_idx = indices[go_left]
            right_idx = indices[~go_left]
            if (
                left_idx.size < self.min_samples_leaf
                or right_idx.size < self.min_samples_leaf
            ):
                continue

            tree.feature[node_id] = best_feature
            tree.threshold[node_id] = best_threshold
            feature_importances[best_feature] += best_gain

            for child_indices, attach in ((left_idx, "left"), (right_idx, "right")):
                y_child = y[child_indices]
                child_id = tree.add_node(
                    float(y_child.mean()),
                    child_indices.size,
                    _node_impurity(
                        y_child.sum(), (y_child**2).sum(), y_child.size
                    ),
                )
                if attach == "left":
                    tree.children_left[node_id] = child_id
                else:
                    tree.children_right[node_id] = child_id
                stack.append((child_indices, depth + 1, child_id))

        tree.finalize()
        self.tree_ = tree
        total = feature_importances.sum()
        self.feature_importances_ = (
            feature_importances / total if total > 0 else feature_importances
        )
        self.n_features_in_ = n_features
        return self

    def predict(self, X, *, validate: bool = True) -> np.ndarray:
        if validate:
            check_is_fitted(self, "tree_")
            X = check_array(X)
            if X.shape[1] != self.n_features_in_:
                raise ValueError(
                    f"X has {X.shape[1]} features; tree was fitted with "
                    f"{self.n_features_in_}."
                )
        else:
            X = np.asarray(X, dtype=np.float64)
        return self.tree_.predict(X)

    def apply(self, X) -> np.ndarray:
        """Return the leaf index each sample lands in."""
        check_is_fitted(self, "tree_")
        X = check_array(X)
        return self.tree_.apply(X)

    def get_depth(self) -> int:
        check_is_fitted(self, "tree_")
        return self.tree_.max_depth

    def get_n_leaves(self) -> int:
        check_is_fitted(self, "tree_")
        return self.tree_.n_leaves


def export_text(
    regressor: DecisionTreeRegressor,
    feature_names: list[str] | None = None,
    decimals: int = 2,
) -> str:
    """Human-readable rendering of a fitted tree, for debugging/reports."""
    check_is_fitted(regressor, "tree_")
    tree = regressor.tree_
    if feature_names is None:
        feature_names = [f"x{i}" for i in range(regressor.n_features_in_)]

    lines: list[str] = []

    def walk(node: int, indent: str) -> None:
        if tree.children_left[node] == _LEAF:
            lines.append(
                f"{indent}value: {tree.value[node]:.{decimals}f} "
                f"(n={tree.n_node_samples[node]})"
            )
            return
        name = feature_names[tree.feature[node]]
        thr = tree.threshold[node]
        lines.append(f"{indent}{name} <= {thr:.{decimals}f}")
        walk(tree.children_left[node], indent + "|   ")
        lines.append(f"{indent}{name} >  {thr:.{decimals}f}")
        walk(tree.children_right[node], indent + "|   ")

    walk(0, "")
    return "\n".join(lines)
