"""Cross-validation splitters, grid search and data-splitting helpers.

Section 5 of the paper: "To tune the algorithm parameter settings we have
performed, separately for each vehicle, a grid search using a 5-fold cross
validation."  :class:`GridSearchCV` + :class:`KFold` reproduce that loop.
:class:`TimeSeriesSplit` is also provided because per-vehicle records are a
time series and forward-chaining validation is the methodologically safer
choice (offered as an option throughout :mod:`repro.core`).
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from .base import BaseEstimator, clone
from .metrics import mean_absolute_error
from .validation import check_consistent_length, check_random_state

__all__ = [
    "KFold",
    "TimeSeriesSplit",
    "train_test_split",
    "temporal_train_test_split",
    "ParameterGrid",
    "ParameterSampler",
    "GridSearchCV",
    "RandomizedSearchCV",
    "cross_val_score",
    "make_scorer",
    "neg_mean_absolute_error_scorer",
]


class KFold:
    """Standard k-fold splitter.

    Parameters
    ----------
    n_splits:
        Number of folds (>= 2).
    shuffle:
        Shuffle sample indices before chunking into folds.
    random_state:
        Seed used when ``shuffle`` is true.
    """

    def __init__(self, n_splits: int = 5, shuffle: bool = False, random_state=None):
        if n_splits < 2:
            raise ValueError(f"n_splits must be >= 2, got {n_splits}.")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X, y=None) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n_samples = len(X)
        if n_samples < self.n_splits:
            raise ValueError(
                f"Cannot split {n_samples} samples into {self.n_splits} folds."
            )
        indices = np.arange(n_samples)
        if self.shuffle:
            check_random_state(self.random_state).shuffle(indices)
        fold_sizes = np.full(self.n_splits, n_samples // self.n_splits)
        fold_sizes[: n_samples % self.n_splits] += 1
        start = 0
        for size in fold_sizes:
            test = indices[start : start + size]
            train = np.concatenate([indices[:start], indices[start + size :]])
            yield train, test
            start += size

    def get_n_splits(self, X=None, y=None) -> int:
        return self.n_splits


class TimeSeriesSplit:
    """Forward-chaining splitter: train on the past, test on the future.

    Fold ``k`` trains on the first ``k`` chunks and tests on chunk
    ``k + 1``, never letting future samples leak into training.
    """

    def __init__(self, n_splits: int = 5, max_train_size: int | None = None):
        if n_splits < 2:
            raise ValueError(f"n_splits must be >= 2, got {n_splits}.")
        self.n_splits = n_splits
        self.max_train_size = max_train_size

    def split(self, X, y=None) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n_samples = len(X)
        n_folds = self.n_splits + 1
        if n_samples < n_folds:
            raise ValueError(
                f"Need at least {n_folds} samples for {self.n_splits} "
                f"forward-chaining splits, got {n_samples}."
            )
        indices = np.arange(n_samples)
        test_size = n_samples // n_folds
        test_starts = range(
            n_samples - self.n_splits * test_size, n_samples, test_size
        )
        for start in test_starts:
            train = indices[:start]
            if self.max_train_size is not None:
                train = train[-self.max_train_size :]
            yield train, indices[start : start + test_size]

    def get_n_splits(self, X=None, y=None) -> int:
        return self.n_splits


def train_test_split(
    *arrays,
    test_size: float = 0.25,
    shuffle: bool = True,
    random_state=None,
):
    """Split arrays into random train/test subsets.

    Returns ``train, test`` pairs for every array passed, in order
    (``X_train, X_test, y_train, y_test`` for two arrays).
    """
    if not arrays:
        raise ValueError("At least one array is required.")
    check_consistent_length(*arrays)
    n_samples = len(arrays[0])
    if not 0.0 < test_size < 1.0:
        raise ValueError(f"test_size must be in (0, 1), got {test_size}.")
    n_test = max(1, int(round(test_size * n_samples)))
    if n_test >= n_samples:
        raise ValueError("test_size leaves no training samples.")
    indices = np.arange(n_samples)
    if shuffle:
        check_random_state(random_state).shuffle(indices)
    test_idx = indices[:n_test]
    train_idx = indices[n_test:]
    out = []
    for array in arrays:
        array = np.asarray(array)
        out.extend([array[train_idx], array[test_idx]])
    return out


def temporal_train_test_split(*arrays, train_fraction: float = 0.7):
    """Chronological split: first ``train_fraction`` of samples train.

    This is the 70/30 per-vehicle split of Section 4.3 ("we consider the
    first 70% of their samples as training set, and the remaining part as
    test set").
    """
    if not arrays:
        raise ValueError("At least one array is required.")
    check_consistent_length(*arrays)
    n_samples = len(arrays[0])
    if not 0.0 < train_fraction < 1.0:
        raise ValueError(
            f"train_fraction must be in (0, 1), got {train_fraction}."
        )
    cut = int(round(train_fraction * n_samples))
    cut = min(max(cut, 1), n_samples - 1)
    out = []
    for array in arrays:
        array = np.asarray(array)
        out.extend([array[:cut], array[cut:]])
    return out


class ParameterGrid:
    """Iterate over the cartesian product of a parameter grid.

    Accepts a mapping of parameter name to list of values, or a list of
    such mappings (each expanded independently, scikit-learn style).
    """

    def __init__(self, param_grid: Mapping | Sequence[Mapping]):
        if isinstance(param_grid, Mapping):
            param_grid = [param_grid]
        for grid in param_grid:
            for key, values in grid.items():
                if isinstance(values, str) or not isinstance(values, Iterable):
                    raise ValueError(
                        f"Grid values for {key!r} must be a non-string "
                        f"iterable, got {values!r}."
                    )
        self.param_grid = [dict(grid) for grid in param_grid]

    def __iter__(self) -> Iterator[dict]:
        for grid in self.param_grid:
            if not grid:
                yield {}
                continue
            keys = sorted(grid)
            for combo in itertools.product(*(grid[k] for k in keys)):
                yield dict(zip(keys, combo))

    def __len__(self) -> int:
        total = 0
        for grid in self.param_grid:
            size = 1
            for values in grid.values():
                size *= len(list(values))
            total += size
        return total


class ParameterSampler:
    """Sample parameter dicts from lists or scipy-style distributions.

    Values in ``param_distributions`` may be lists (sampled uniformly)
    or objects with an ``rvs(random_state=...)`` method (e.g.
    ``scipy.stats`` frozen distributions) — enough to cover the paper's
    wide RF/XGB ranges (depth 3-50, estimators 10-1000) without the full
    cartesian product.
    """

    def __init__(self, param_distributions: Mapping, n_iter: int, random_state=None):
        if n_iter < 1:
            raise ValueError(f"n_iter must be >= 1, got {n_iter}.")
        if not param_distributions:
            raise ValueError("param_distributions must be non-empty.")
        for key, values in param_distributions.items():
            if not hasattr(values, "rvs") and (
                isinstance(values, str) or not isinstance(values, Iterable)
            ):
                raise ValueError(
                    f"Values for {key!r} must be a list or expose rvs(), "
                    f"got {values!r}."
                )
        self.param_distributions = dict(param_distributions)
        self.n_iter = n_iter
        self.random_state = random_state

    def __iter__(self) -> Iterator[dict]:
        rng = check_random_state(self.random_state)
        keys = sorted(self.param_distributions)
        for _ in range(self.n_iter):
            sample = {}
            for key in keys:
                values = self.param_distributions[key]
                if hasattr(values, "rvs"):
                    seed = int(rng.integers(np.iinfo(np.int32).max))
                    sample[key] = values.rvs(
                        random_state=np.random.RandomState(seed)
                    )
                else:
                    values = list(values)
                    sample[key] = values[int(rng.integers(len(values)))]
            yield sample

    def __len__(self) -> int:
        return self.n_iter


def make_scorer(metric: Callable, *, greater_is_better: bool = True) -> Callable:
    """Wrap a ``metric(y_true, y_pred)`` into a ``scorer(est, X, y)``.

    Scorers follow the greater-is-better convention; error metrics are
    negated so grid search can always maximize.
    """
    sign = 1.0 if greater_is_better else -1.0

    def scorer(estimator, X, y) -> float:
        return sign * metric(y, estimator.predict(X))

    scorer.__name__ = f"scorer({getattr(metric, '__name__', metric)!s})"
    return scorer


neg_mean_absolute_error_scorer = make_scorer(
    mean_absolute_error, greater_is_better=False
)


def _resolve_cv(cv) -> KFold | TimeSeriesSplit:
    if cv is None:
        return KFold(n_splits=5)
    if isinstance(cv, int):
        return KFold(n_splits=cv)
    if hasattr(cv, "split"):
        return cv
    raise ValueError(f"Cannot interpret cv={cv!r}.")


def _resolve_scoring(scoring) -> Callable:
    if scoring is None:
        return lambda estimator, X, y: estimator.score(X, y)
    if callable(scoring):
        return scoring
    raise ValueError(
        f"scoring must be None or a callable scorer, got {scoring!r}."
    )


def cross_val_score(estimator, X, y, *, cv=None, scoring=None) -> np.ndarray:
    """Per-fold scores of ``estimator`` under cross-validation."""
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    splitter = _resolve_cv(cv)
    scorer = _resolve_scoring(scoring)
    scores = []
    for train_idx, test_idx in splitter.split(X, y):
        model = clone(estimator)
        model.fit(X[train_idx], y[train_idx])
        scores.append(scorer(model, X[test_idx], y[test_idx]))
    return np.asarray(scores)


class GridSearchCV(BaseEstimator):
    """Exhaustive hyper-parameter search with cross-validated scoring.

    After :meth:`fit`, the best configuration is refit on all data and
    exposed as ``best_estimator_``; the instance itself then predicts
    through it.

    Parameters
    ----------
    estimator:
        Template estimator; cloned for every fold and configuration.
    param_grid:
        Mapping (or list of mappings) of parameter lists.
    cv:
        Int (k for :class:`KFold`), splitter instance, or ``None`` for
        the paper's 5-fold default.
    scoring:
        Greater-is-better scorer callable; default is the estimator's
        own ``score``.
    refit:
        Refit the winner on the full data (default true).
    """

    def __init__(self, estimator, param_grid, *, cv=None, scoring=None, refit=True):
        self.estimator = estimator
        self.param_grid = param_grid
        self.cv = cv
        self.scoring = scoring
        self.refit = refit

    def _candidates(self):
        grid = ParameterGrid(self.param_grid)
        if len(grid) == 0:
            raise ValueError("param_grid is empty.")
        return grid

    def fit(self, X, y):
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        splitter = _resolve_cv(self.cv)
        scorer = _resolve_scoring(self.scoring)
        grid = self._candidates()

        folds = list(splitter.split(X, y))
        results: dict[str, list] = {
            "params": [],
            "mean_test_score": [],
            "std_test_score": [],
        }
        for params in grid:
            fold_scores = []
            for train_idx, test_idx in folds:
                model = clone(self.estimator).set_params(**params)
                model.fit(X[train_idx], y[train_idx])
                fold_scores.append(scorer(model, X[test_idx], y[test_idx]))
            results["params"].append(params)
            results["mean_test_score"].append(float(np.mean(fold_scores)))
            results["std_test_score"].append(float(np.std(fold_scores)))

        results["mean_test_score"] = np.asarray(results["mean_test_score"])
        results["std_test_score"] = np.asarray(results["std_test_score"])
        best = int(np.argmax(results["mean_test_score"]))
        self.cv_results_ = results
        self.best_index_ = best
        self.best_params_ = results["params"][best]
        self.best_score_ = float(results["mean_test_score"][best])
        if self.refit:
            self.best_estimator_ = clone(self.estimator).set_params(
                **self.best_params_
            )
            self.best_estimator_.fit(X, y)
        return self

    def predict(self, X) -> np.ndarray:
        if not hasattr(self, "best_estimator_"):
            raise AttributeError(
                "predict is only available after fit with refit=True."
            )
        return self.best_estimator_.predict(X)

    def score(self, X, y) -> float:
        scorer = _resolve_scoring(self.scoring)
        return scorer(self.best_estimator_, np.asarray(X), np.asarray(y))


class RandomizedSearchCV(GridSearchCV):
    """Cross-validated search over sampled hyper-parameter candidates.

    Same contract as :class:`GridSearchCV` but evaluates ``n_iter``
    draws from ``param_distributions`` instead of the full cartesian
    product — the practical way to cover the paper's wide RF/XGB ranges
    (tree depth 3-50, estimators 10-1000).

    Parameters
    ----------
    estimator, cv, scoring, refit:
        As in :class:`GridSearchCV`.
    param_distributions:
        Mapping of parameter name to a list (uniform choice) or an
        object exposing ``rvs(random_state=...)``.
    n_iter:
        Number of sampled candidates.
    random_state:
        Seed of the candidate draws.
    """

    def __init__(
        self,
        estimator,
        param_distributions,
        *,
        n_iter: int = 10,
        cv=None,
        scoring=None,
        refit=True,
        random_state=None,
    ):
        super().__init__(
            estimator, param_distributions, cv=cv, scoring=scoring, refit=refit
        )
        self.param_distributions = param_distributions
        self.n_iter = n_iter
        self.random_state = random_state

    def _candidates(self):
        return ParameterSampler(
            self.param_distributions,
            n_iter=self.n_iter,
            random_state=self.random_state,
        )
