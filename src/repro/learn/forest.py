"""Random forest regression.

Section 4.2: "The Random Forest Regression averages the predictions made by
various decision tree models, which are trained on different bootstraps
(i.e., samples of the training data with replacement)."  This module
implements exactly that on top of :class:`repro.learn.tree.DecisionTreeRegressor`,
with per-split feature subsampling and an optional out-of-bag estimate.
"""

from __future__ import annotations

import numpy as np

from .base import BaseEstimator, RegressorMixin
from .compiled import ensemble_kernel
from .metrics import r2_score
from .tree import DecisionTreeRegressor
from .validation import (
    check_array,
    check_is_fitted,
    check_random_state,
    check_X_y,
)

__all__ = ["RandomForestRegressor"]


class RandomForestRegressor(BaseEstimator, RegressorMixin):
    """Bagged ensemble of CART trees with random feature subsets.

    Parameters
    ----------
    n_estimators:
        Number of trees (the paper sweeps 10-1000).
    max_depth:
        Per-tree depth limit (the paper sweeps 3-50).
    min_samples_split, min_samples_leaf, min_impurity_decrease:
        Forwarded to each tree.
    max_features:
        Features examined per split.  Default ``1.0`` (all features),
        matching scikit-learn's regression default; ``"sqrt"`` gives the
        classic Breiman forest.
    bootstrap:
        Draw each tree's training set with replacement (default).  When
        false, every tree sees the full data and randomness comes only
        from ``max_features``.
    oob_score:
        If true (requires ``bootstrap``), compute ``oob_score_`` /
        ``oob_prediction_`` from out-of-bag samples after fitting.
    random_state:
        Seed for bootstrap draws and per-tree feature subsampling.

    Prediction runs through the fused level-wise kernel
    (:mod:`repro.learn.compiled`), bit-identical to the per-tree loop
    it replaced; ``validate=False`` additionally skips input
    re-validation for trusted callers (the serving engine).
    """

    trusted_predict = True

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=1.0,
        min_impurity_decrease: float = 0.0,
        bootstrap: bool = True,
        oob_score: bool = False,
        random_state=None,
    ):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.min_impurity_decrease = min_impurity_decrease
        self.bootstrap = bootstrap
        self.oob_score = oob_score
        self.random_state = random_state

    def _make_tree(self, seed: int) -> DecisionTreeRegressor:
        return DecisionTreeRegressor(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            min_impurity_decrease=self.min_impurity_decrease,
            random_state=seed,
        )

    def fit(self, X, y):
        X, y = check_X_y(X, y, min_samples=2)
        if self.n_estimators < 1:
            raise ValueError(
                f"n_estimators must be >= 1, got {self.n_estimators}."
            )
        if self.oob_score and not self.bootstrap:
            raise ValueError("oob_score requires bootstrap=True.")
        rng = check_random_state(self.random_state)
        n_samples = X.shape[0]

        self.estimators_ = []
        oob_sum = np.zeros(n_samples)
        oob_count = np.zeros(n_samples, dtype=np.intp)
        for _ in range(self.n_estimators):
            seed = int(rng.integers(np.iinfo(np.int32).max))
            tree = self._make_tree(seed)
            if self.bootstrap:
                bag = rng.integers(0, n_samples, size=n_samples)
                tree.fit(X, y, sample_indices=bag)
                if self.oob_score:
                    mask = np.ones(n_samples, dtype=bool)
                    mask[np.unique(bag)] = False
                    if mask.any():
                        oob_sum[mask] += tree.predict(X[mask])
                        oob_count[mask] += 1
            else:
                tree.fit(X, y)
            self.estimators_.append(tree)

        if self.oob_score:
            covered = oob_count > 0
            prediction = np.full(n_samples, np.nan)
            prediction[covered] = oob_sum[covered] / oob_count[covered]
            self.oob_prediction_ = prediction
            if covered.sum() >= 2:
                self.oob_score_ = r2_score(y[covered], prediction[covered])
            else:
                self.oob_score_ = np.nan

        importances = np.zeros(X.shape[1])
        for tree in self.estimators_:
            importances += tree.feature_importances_
        total = importances.sum()
        self.feature_importances_ = (
            importances / total if total > 0 else importances
        )
        self.n_features_in_ = X.shape[1]
        return self

    def predict(self, X, *, validate: bool = True) -> np.ndarray:
        if validate:
            check_is_fitted(self, "estimators_")
            X = check_array(X)
        else:
            X = np.asarray(X, dtype=np.float64)
        if X.shape[1] != self.n_features_in_:
            # Same message the first tree used to raise from its own
            # re-validation, kept at the forest level because the fused
            # kernel traverses all trees in one pass.
            raise ValueError(
                f"X has {X.shape[1]} features; tree was fitted with "
                f"{self.n_features_in_}."
            )
        return ensemble_kernel(self).predict(X)

    def predict_quantiles(self, X, quantiles=(0.1, 0.9)) -> np.ndarray:
        """Empirical quantiles of the per-tree predictions.

        A cheap ensemble uncertainty estimate: the spread of the bagged
        trees' answers.  Returns shape ``(n_samples, len(quantiles))``.
        The maintenance planner uses the lower quantile to schedule
        conservatively when forecasts disagree.
        """
        check_is_fitted(self, "estimators_")
        X = check_array(X)
        quantiles = np.asarray(list(quantiles), dtype=np.float64)
        if quantiles.size == 0 or np.any((quantiles < 0) | (quantiles > 1)):
            raise ValueError(
                f"quantiles must lie in [0, 1], got {quantiles.tolist()}."
            )
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features; tree was fitted with "
                f"{self.n_features_in_}."
            )
        # One fused traversal yields the full (n_trees, n_samples)
        # matrix — previously this re-ran every tree's Python descent.
        per_tree = ensemble_kernel(self).predict_per_tree(X)
        return np.quantile(per_tree, quantiles, axis=0).T
