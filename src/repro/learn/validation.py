"""Input validation helpers shared by every estimator in :mod:`repro.learn`.

These mirror the role scikit-learn's ``sklearn.utils.validation`` plays:
every public ``fit``/``predict`` entry point funnels its array arguments
through :func:`check_array` / :func:`check_X_y` so that downstream numeric
code can assume clean, 2-D, finite ``float64`` data.
"""

from __future__ import annotations

import numbers

import numpy as np

from .exceptions import DataValidationError, NotFittedError

__all__ = [
    "check_array",
    "check_X_y",
    "check_random_state",
    "check_is_fitted",
    "column_or_1d",
    "check_consistent_length",
]


def check_array(
    array,
    *,
    ensure_2d: bool = True,
    allow_nan: bool = False,
    min_samples: int = 1,
    name: str = "X",
) -> np.ndarray:
    """Validate an array-like and return it as a ``float64`` ndarray.

    Parameters
    ----------
    array:
        Anything convertible by :func:`numpy.asarray`.
    ensure_2d:
        If true (default), a 1-D input is rejected; estimators expect a
        ``(n_samples, n_features)`` matrix.
    allow_nan:
        If false (default), NaN or infinite entries raise
        :class:`DataValidationError`.
    min_samples:
        Minimum number of rows required.
    name:
        Name used in error messages.
    """
    out = np.asarray(array, dtype=np.float64)
    if out.ndim == 1 and ensure_2d:
        raise DataValidationError(
            f"{name} must be 2-dimensional, got shape {out.shape}. "
            "Reshape with X.reshape(-1, 1) for a single feature."
        )
    if out.ndim > 2:
        raise DataValidationError(
            f"{name} must be at most 2-dimensional, got shape {out.shape}."
        )
    if not allow_nan and not np.isfinite(out).all():
        raise DataValidationError(
            f"{name} contains NaN or infinite values; clean the data first "
            "(see repro.dataprep.cleaning)."
        )
    n_samples = out.shape[0] if out.ndim else 0
    if n_samples < min_samples:
        raise DataValidationError(
            f"{name} has {n_samples} sample(s); at least {min_samples} required."
        )
    return out


def column_or_1d(y, *, name: str = "y") -> np.ndarray:
    """Return ``y`` as a flat 1-D ``float64`` array.

    Accepts shape ``(n,)`` or ``(n, 1)``; anything else is an error.
    """
    out = np.asarray(y, dtype=np.float64)
    if out.ndim == 2 and out.shape[1] == 1:
        out = out.ravel()
    if out.ndim != 1:
        raise DataValidationError(
            f"{name} must be 1-dimensional, got shape {out.shape}."
        )
    return out


def check_consistent_length(*arrays) -> None:
    """Raise unless all arguments have the same first dimension."""
    lengths = {len(a) for a in arrays if a is not None}
    if len(lengths) > 1:
        raise DataValidationError(
            f"Inconsistent numbers of samples: {sorted(lengths)}."
        )


def check_X_y(
    X,
    y,
    *,
    allow_nan: bool = False,
    min_samples: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """Validate a feature matrix and target vector together."""
    X = check_array(X, allow_nan=allow_nan, min_samples=min_samples)
    y = column_or_1d(y)
    if not allow_nan and not np.isfinite(y).all():
        raise DataValidationError("y contains NaN or infinite values.")
    check_consistent_length(X, y)
    return X, y


def check_random_state(seed) -> np.random.Generator:
    """Turn ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an int seed, an existing
    ``Generator`` (returned as-is) or a legacy ``RandomState``.
    """
    if seed is None or isinstance(seed, numbers.Integral):
        return np.random.default_rng(seed)
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.RandomState):
        return np.random.default_rng(seed.randint(np.iinfo(np.int32).max))
    raise DataValidationError(
        f"{seed!r} cannot be used to seed a numpy random Generator."
    )


def check_is_fitted(estimator, attributes=None) -> None:
    """Raise :class:`NotFittedError` unless ``estimator`` looks fitted.

    Fitted-ness is signalled, as in scikit-learn, by the presence of
    attributes with a trailing underscore set during :meth:`fit`.
    """
    if attributes is None:
        fitted = [
            attr
            for attr in vars(estimator)
            if attr.endswith("_") and not attr.startswith("_")
        ]
        if fitted:
            return
    else:
        if isinstance(attributes, str):
            attributes = [attributes]
        if all(hasattr(estimator, attr) for attr in attributes):
            return
    raise NotFittedError(
        f"This {type(estimator).__name__} instance is not fitted yet; "
        "call fit() before using this method."
    )
