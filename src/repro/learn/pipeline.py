"""Chained transformer + estimator pipelines.

A small counterpart to scikit-learn's ``Pipeline``: a list of named steps
where every step but the last exposes ``fit``/``transform`` and the last is
an estimator.  The prediction system uses this to bind the Section-3
normalization step to each regressor so grid search tunes the whole chain.
"""

from __future__ import annotations

import numpy as np

from .base import BaseEstimator, RegressorMixin, clone
from .validation import check_is_fitted

__all__ = ["Pipeline", "make_pipeline"]


class Pipeline(BaseEstimator, RegressorMixin):
    """Sequentially apply transforms, then delegate to a final estimator.

    Parameters
    ----------
    steps:
        List of ``(name, estimator)`` pairs.  Names must be unique,
        non-empty and free of ``__`` (reserved for nested params).
    """

    trusted_predict = True

    def __init__(self, steps):
        self.steps = steps

    def _validate_steps(self) -> None:
        if not self.steps:
            raise ValueError("Pipeline requires at least one step.")
        names = [name for name, _ in self.steps]
        if len(set(names)) != len(names):
            raise ValueError(f"Step names must be unique, got {names}.")
        for name in names:
            if not name or "__" in name:
                raise ValueError(f"Invalid step name {name!r}.")
        for name, transformer in self.steps[:-1]:
            if not hasattr(transformer, "transform"):
                raise TypeError(
                    f"Intermediate step {name!r} must implement transform()."
                )

    def get_params(self, deep: bool = True) -> dict:
        params = {"steps": self.steps}
        if deep:
            for name, step in self.steps:
                params[name] = step
                if hasattr(step, "get_params"):
                    for key, value in step.get_params(deep=True).items():
                        params[f"{name}__{key}"] = value
        return params

    def set_params(self, **params) -> "Pipeline":
        if "steps" in params:
            self.steps = params.pop("steps")
        step_map = dict(self.steps)
        nested: dict[str, dict] = {}
        for key, value in params.items():
            name, delim, sub_key = key.partition("__")
            if name not in step_map:
                raise ValueError(
                    f"Invalid parameter {name!r}; pipeline steps are "
                    f"{sorted(step_map)}."
                )
            if delim:
                nested.setdefault(name, {})[sub_key] = value
            else:
                step_map[name] = value
        self.steps = [(name, step_map[name]) for name, _ in self.steps]
        for name, sub_params in nested.items():
            dict(self.steps)[name].set_params(**sub_params)
        return self

    @property
    def named_steps(self) -> dict:
        return dict(self.steps)

    def _final_estimator(self):
        return self.steps[-1][1]

    def fit(self, X, y=None):
        self._validate_steps()
        X = np.asarray(X, dtype=np.float64)
        self.steps = [(name, clone(step)) for name, step in self.steps]
        for _, transformer in self.steps[:-1]:
            X = transformer.fit(X, y).transform(X)
        self._final_estimator().fit(X, y)
        self.fitted_ = True
        return self

    def _transform(self, X) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        for _, transformer in self.steps[:-1]:
            X = transformer.transform(X)
        return X

    def predict(self, X, *, validate: bool = True) -> np.ndarray:
        if validate:
            check_is_fitted(self, "fitted_")
        final = self._final_estimator()
        Xt = self._transform(X)
        if not validate and getattr(final, "trusted_predict", False):
            return final.predict(Xt, validate=False)
        return final.predict(Xt)

    def transform(self, X) -> np.ndarray:
        """Apply all transforms, including a final transformer step."""
        check_is_fitted(self, "fitted_")
        X = self._transform(X)
        final = self._final_estimator()
        if hasattr(final, "transform"):
            X = final.transform(X)
        return X


def make_pipeline(*steps) -> Pipeline:
    """Build a :class:`Pipeline` with auto-generated lowercase names."""
    names = []
    for step in steps:
        base = type(step).__name__.lower()
        name = base
        suffix = 1
        while name in names:
            suffix += 1
            name = f"{base}-{suffix}"
        names.append(name)
    return Pipeline(list(zip(names, steps)))
