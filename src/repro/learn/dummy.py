"""Trivial reference regressors.

Useful as sanity baselines in tests and ablations — any real model should
beat :class:`DummyRegressor` comfortably, and the experiment harness uses
it to verify that the evaluation plumbing itself is unbiased.
"""

from __future__ import annotations

import numpy as np

from .base import BaseEstimator, RegressorMixin
from .validation import check_array, check_is_fitted, check_X_y

__all__ = ["DummyRegressor"]

_STRATEGIES = ("mean", "median", "constant")


class DummyRegressor(BaseEstimator, RegressorMixin):
    """Predict a constant derived from the training target.

    Parameters
    ----------
    strategy:
        ``"mean"`` (default), ``"median"`` or ``"constant"``.
    constant:
        The value predicted under the ``"constant"`` strategy.
    """

    def __init__(self, strategy: str = "mean", constant: float | None = None):
        self.strategy = strategy
        self.constant = constant

    def fit(self, X, y):
        X, y = check_X_y(X, y)
        if self.strategy not in _STRATEGIES:
            raise ValueError(
                f"strategy must be one of {_STRATEGIES}, got {self.strategy!r}."
            )
        if self.strategy == "mean":
            self.constant_ = float(y.mean())
        elif self.strategy == "median":
            self.constant_ = float(np.median(y))
        else:
            if self.constant is None:
                raise ValueError(
                    "strategy='constant' requires the constant parameter."
                )
            self.constant_ = float(self.constant)
        self.n_features_in_ = X.shape[1]
        return self

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, "constant_")
        X = check_array(X)
        return np.full(X.shape[0], self.constant_)
