"""Linear Support Vector Regression.

The paper (Section 4.2) restricts itself to the linear kernel ("Due to the
high computational complexity of non-linear kernels, in the remaining of the
paper we focus on linear SVR (LSVR)") and sweeps ``epsilon`` in [0.5, 2.5]
and ``C`` in [0.01, 100] during grid search (Section 5).

This implementation solves the primal problem

    min_{w, b}  0.5 ||w||^2  +  C * sum_i loss(y_i - (x_i . w + b))

with L-BFGS-B.  Two losses are supported:

* ``"squared_epsilon_insensitive"`` — ``max(0, |r| - epsilon)^2``, which is
  continuously differentiable and the default (fast, stable);
* ``"epsilon_insensitive"`` — the classic L1 tube loss, smoothed near the
  kink by a small Huber transition so quasi-Newton steps stay well-behaved.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

from .base import BaseEstimator, RegressorMixin
from .linear import _BaseLinear
from .validation import check_X_y

__all__ = ["LinearSVR"]

_LOSSES = ("epsilon_insensitive", "squared_epsilon_insensitive")


def _tube_loss_grad(
    residual: np.ndarray, epsilon: float, loss: str, smooth: float
) -> tuple[float, np.ndarray]:
    """Return (sum of losses, d loss / d residual) for the tube loss."""
    excess = np.abs(residual) - epsilon
    active = excess > 0.0
    z = np.where(active, excess, 0.0)
    sign = np.sign(residual)
    if loss == "squared_epsilon_insensitive":
        value = float(np.sum(z**2))
        grad = 2.0 * z * sign
    else:
        # Huber-smoothed |.|: quadratic within `smooth` of the kink.
        quad = z < smooth
        value = float(np.sum(np.where(quad, z**2 / (2.0 * smooth), z - smooth / 2.0)))
        grad = np.where(quad, z / smooth, 1.0) * sign
        grad[~active] = 0.0
    return value, grad


class LinearSVR(_BaseLinear):
    """Linear epsilon-insensitive support vector regression.

    Parameters
    ----------
    epsilon:
        Half-width of the no-penalty tube around the regression line.
    C:
        Inverse regularization strength; larger means less regularization.
    loss:
        ``"squared_epsilon_insensitive"`` (default) or
        ``"epsilon_insensitive"``.
    fit_intercept:
        Learn a bias term (not regularized).
    max_iter:
        L-BFGS iteration cap.
    tol:
        Solver gradient tolerance.
    """

    def __init__(
        self,
        epsilon: float = 0.0,
        C: float = 1.0,
        loss: str = "squared_epsilon_insensitive",
        fit_intercept: bool = True,
        max_iter: int = 1000,
        tol: float = 1e-6,
    ):
        self.epsilon = epsilon
        self.C = C
        self.loss = loss
        self.fit_intercept = fit_intercept
        self.max_iter = max_iter
        self.tol = tol

    def fit(self, X, y):
        X, y = check_X_y(X, y)
        if self.C <= 0:
            raise ValueError(f"C must be positive, got {self.C}.")
        if self.epsilon < 0:
            raise ValueError(f"epsilon must be non-negative, got {self.epsilon}.")
        if self.loss not in _LOSSES:
            raise ValueError(f"loss must be one of {_LOSSES}, got {self.loss!r}.")

        n_samples, n_features = X.shape
        # Smoothing width for the L1 tube: tiny relative to target scale.
        y_scale = float(np.std(y)) or 1.0
        smooth = 1e-3 * y_scale

        def objective(theta: np.ndarray) -> tuple[float, np.ndarray]:
            w = theta[:n_features]
            b = theta[n_features] if self.fit_intercept else 0.0
            residual = y - (X @ w + b)
            loss_val, dloss_dr = _tube_loss_grad(
                residual, self.epsilon, self.loss, smooth
            )
            value = 0.5 * float(w @ w) + self.C * loss_val
            # d residual / d w = -X, d residual / d b = -1.
            grad_w = w - self.C * (X.T @ dloss_dr)
            if self.fit_intercept:
                grad_b = -self.C * float(np.sum(dloss_dr))
                grad = np.concatenate([grad_w, [grad_b]])
            else:
                grad = grad_w
            return value, grad

        size = n_features + (1 if self.fit_intercept else 0)
        result = minimize(
            objective,
            x0=np.zeros(size),
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter, "gtol": self.tol},
        )
        self.coef_ = result.x[:n_features]
        self.intercept_ = float(result.x[n_features]) if self.fit_intercept else 0.0
        self.n_iter_ = int(result.nit)
        self.converged_ = bool(result.success)
        self.n_features_in_ = n_features
        return self
