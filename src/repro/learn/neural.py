"""Multi-layer perceptron regression.

The paper excludes neural networks from its first release "due to the
lack of a sufficiently large amount of training data" but lists them as
a natural addition to the deployed system.  This module provides that
addition: a small fully-connected regressor trained with Adam on
mini-batches, with optional early stopping — enough capacity for the
windowed relational datasets of this problem without pretending to be a
deep-learning framework.

Implementation notes
--------------------
* Hidden activations: ReLU (default) or tanh.
* Loss: mean squared error; the output layer is linear.
* Inputs are standardized internally (stored mean/scale), because raw
  features span ~5 orders of magnitude (L in 1e6 s vs lags in 1e4 s).
* Deterministic for a fixed ``random_state``.
"""

from __future__ import annotations

import numpy as np

from .base import BaseEstimator, RegressorMixin
from .validation import (
    check_array,
    check_is_fitted,
    check_random_state,
    check_X_y,
)

__all__ = ["MLPRegressor"]

_ACTIVATIONS = ("relu", "tanh")


def _forward(
    X: np.ndarray,
    weights: list[np.ndarray],
    biases: list[np.ndarray],
    activation: str,
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Forward pass; returns (output, per-layer activations incl. input)."""
    activations = [X]
    hidden = X
    last = len(weights) - 1
    for layer, (w, b) in enumerate(zip(weights, biases)):
        z = hidden @ w + b
        if layer < last:
            hidden = np.maximum(z, 0.0) if activation == "relu" else np.tanh(z)
        else:
            hidden = z  # linear output
        activations.append(hidden)
    return hidden.ravel(), activations


class MLPRegressor(BaseEstimator, RegressorMixin):
    """Feed-forward neural network for regression.

    Parameters
    ----------
    hidden_layer_sizes:
        Neurons per hidden layer, e.g. ``(32, 16)``.
    activation:
        ``"relu"`` (default) or ``"tanh"``.
    learning_rate:
        Adam step size.
    max_iter:
        Training epochs.
    batch_size:
        Mini-batch size (clipped to the dataset size).
    alpha:
        L2 penalty on weights.
    early_stopping:
        Hold out ``validation_fraction`` and stop after
        ``n_iter_no_change`` epochs without improvement.
    random_state:
        Seed for init, shuffling and the validation split.
    """

    def __init__(
        self,
        hidden_layer_sizes: tuple[int, ...] = (32, 16),
        activation: str = "relu",
        learning_rate: float = 1e-3,
        max_iter: int = 300,
        batch_size: int = 64,
        alpha: float = 1e-4,
        early_stopping: bool = False,
        validation_fraction: float = 0.1,
        n_iter_no_change: int = 15,
        tol: float = 1e-5,
        random_state=None,
    ):
        self.hidden_layer_sizes = hidden_layer_sizes
        self.activation = activation
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.batch_size = batch_size
        self.alpha = alpha
        self.early_stopping = early_stopping
        self.validation_fraction = validation_fraction
        self.n_iter_no_change = n_iter_no_change
        self.tol = tol
        self.random_state = random_state

    def _validate_hyperparams(self) -> None:
        if not self.hidden_layer_sizes or any(
            int(h) < 1 for h in self.hidden_layer_sizes
        ):
            raise ValueError(
                "hidden_layer_sizes must be a non-empty tuple of positive "
                f"ints, got {self.hidden_layer_sizes}."
            )
        if self.activation not in _ACTIVATIONS:
            raise ValueError(
                f"activation must be one of {_ACTIVATIONS}, got "
                f"{self.activation!r}."
            )
        if self.learning_rate <= 0:
            raise ValueError(
                f"learning_rate must be positive, got {self.learning_rate}."
            )
        if self.max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {self.max_iter}.")
        if self.batch_size < 1:
            raise ValueError(
                f"batch_size must be >= 1, got {self.batch_size}."
            )
        if self.alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {self.alpha}.")

    def _init_parameters(self, n_features: int, rng) -> None:
        sizes = [n_features, *map(int, self.hidden_layer_sizes), 1]
        self._weights = []
        self._biases = []
        for fan_in, fan_out in zip(sizes, sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)  # He init, fine for tanh too
            self._weights.append(
                rng.normal(0.0, scale, size=(fan_in, fan_out))
            )
            self._biases.append(np.zeros(fan_out))

    def _backward(
        self, activations: list[np.ndarray], error: np.ndarray
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Gradients of MSE/2 w.r.t. weights and biases."""
        grads_w = [None] * len(self._weights)
        grads_b = [None] * len(self._biases)
        n = activations[0].shape[0]
        delta = error.reshape(-1, 1) / n
        for layer in range(len(self._weights) - 1, -1, -1):
            grads_w[layer] = (
                activations[layer].T @ delta + self.alpha * self._weights[layer]
            )
            grads_b[layer] = delta.sum(axis=0)
            if layer > 0:
                delta = delta @ self._weights[layer].T
                upstream = activations[layer]
                if self.activation == "relu":
                    delta = delta * (upstream > 0)
                else:
                    delta = delta * (1.0 - upstream**2)
        return grads_w, grads_b

    def fit(self, X, y):
        X, y = check_X_y(X, y, min_samples=2)
        self._validate_hyperparams()
        rng = check_random_state(self.random_state)

        # Internal standardization of inputs and target.
        self._x_mean = X.mean(axis=0)
        self._x_scale = X.std(axis=0)
        self._x_scale[self._x_scale == 0.0] = 1.0
        self._y_mean = float(y.mean())
        self._y_scale = float(y.std()) or 1.0
        Xs = (X - self._x_mean) / self._x_scale
        ys = (y - self._y_mean) / self._y_scale

        if self.early_stopping:
            n_val = max(1, int(round(self.validation_fraction * len(ys))))
            if n_val >= len(ys):
                raise ValueError(
                    "validation_fraction leaves no training samples."
                )
            order = rng.permutation(len(ys))
            val_idx, train_idx = order[:n_val], order[n_val:]
            X_val, y_val = Xs[val_idx], ys[val_idx]
            Xs, ys = Xs[train_idx], ys[train_idx]
        else:
            X_val = y_val = None

        self._init_parameters(X.shape[1], rng)
        # Adam state.
        m_w = [np.zeros_like(w) for w in self._weights]
        v_w = [np.zeros_like(w) for w in self._weights]
        m_b = [np.zeros_like(b) for b in self._biases]
        v_b = [np.zeros_like(b) for b in self._biases]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0

        batch = min(self.batch_size, len(ys))
        losses: list[float] = []
        best_val = np.inf
        stale = 0
        for epoch in range(self.max_iter):
            order = rng.permutation(len(ys))
            epoch_loss = 0.0
            for start in range(0, len(ys), batch):
                idx = order[start : start + batch]
                pred, activations = _forward(
                    Xs[idx], self._weights, self._biases, self.activation
                )
                error = pred - ys[idx]
                epoch_loss += float(np.sum(error**2))
                grads_w, grads_b = self._backward(activations, error)
                step += 1
                lr_t = (
                    self.learning_rate
                    * np.sqrt(1 - beta2**step)
                    / (1 - beta1**step)
                )
                for layer in range(len(self._weights)):
                    m_w[layer] = beta1 * m_w[layer] + (1 - beta1) * grads_w[layer]
                    v_w[layer] = beta2 * v_w[layer] + (1 - beta2) * grads_w[layer] ** 2
                    self._weights[layer] -= lr_t * m_w[layer] / (
                        np.sqrt(v_w[layer]) + eps
                    )
                    m_b[layer] = beta1 * m_b[layer] + (1 - beta1) * grads_b[layer]
                    v_b[layer] = beta2 * v_b[layer] + (1 - beta2) * grads_b[layer] ** 2
                    self._biases[layer] -= lr_t * m_b[layer] / (
                        np.sqrt(v_b[layer]) + eps
                    )
            losses.append(epoch_loss / len(ys))

            if X_val is not None:
                val_pred, _ = _forward(
                    X_val, self._weights, self._biases, self.activation
                )
                val_loss = float(np.mean((val_pred - y_val) ** 2))
                if val_loss < best_val - self.tol:
                    best_val = val_loss
                    stale = 0
                else:
                    stale += 1
                    if stale >= self.n_iter_no_change:
                        break

        self.loss_curve_ = np.asarray(losses)
        self.n_iter_ = len(losses)
        self.n_features_in_ = X.shape[1]
        self.coefs_ = self._weights  # fitted marker + introspection
        return self

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, "coefs_")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features; model was fitted with "
                f"{self.n_features_in_}."
            )
        Xs = (X - self._x_mean) / self._x_scale
        pred, _ = _forward(Xs, self._weights, self._biases, self.activation)
        return pred * self._y_scale + self._y_mean
