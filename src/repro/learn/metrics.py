"""Regression metrics used across the library and the experiment harness.

Only generic, target-agnostic metrics live here.  The paper's
maintenance-specific error functions (daily error, global error and the mean
residual error :math:`E_{MRE}(\\tilde D)` of Section 2.1) build on these and
are implemented in :mod:`repro.core.errors`.
"""

from __future__ import annotations

import numpy as np

from .validation import check_consistent_length, column_or_1d

__all__ = [
    "mean_squared_error",
    "root_mean_squared_error",
    "mean_absolute_error",
    "median_absolute_error",
    "max_error",
    "mean_absolute_percentage_error",
    "r2_score",
    "explained_variance_score",
    "residuals",
]


def _validate(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = column_or_1d(y_true, name="y_true")
    y_pred = column_or_1d(y_pred, name="y_pred")
    check_consistent_length(y_true, y_pred)
    if y_true.size == 0:
        raise ValueError("Metrics are undefined on empty arrays.")
    return y_true, y_pred


def residuals(y_true, y_pred) -> np.ndarray:
    """Signed residuals ``y_true - y_pred`` (Eq. 2 of the paper, per day)."""
    y_true, y_pred = _validate(y_true, y_pred)
    return y_true - y_pred


def mean_squared_error(y_true, y_pred) -> float:
    """Mean of squared residuals."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.mean((y_true - y_pred) ** 2))


def root_mean_squared_error(y_true, y_pred) -> float:
    """Square root of :func:`mean_squared_error`."""
    return float(np.sqrt(mean_squared_error(y_true, y_pred)))


def mean_absolute_error(y_true, y_pred) -> float:
    """Mean of absolute residuals."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def median_absolute_error(y_true, y_pred) -> float:
    """Median of absolute residuals (robust to outliers)."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.median(np.abs(y_true - y_pred)))


def max_error(y_true, y_pred) -> float:
    """Largest absolute residual."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.max(np.abs(y_true - y_pred)))


def mean_absolute_percentage_error(y_true, y_pred, *, eps: float = 1e-12) -> float:
    """MAPE with the denominator clipped away from zero by ``eps``."""
    y_true, y_pred = _validate(y_true, y_pred)
    denom = np.maximum(np.abs(y_true), eps)
    return float(np.mean(np.abs(y_true - y_pred) / denom))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination.

    Returns 1.0 for a perfect fit.  For a constant ``y_true``, returns 1.0
    if predictions are exact and 0.0 otherwise (scikit-learn convention).
    """
    y_true, y_pred = _validate(y_true, y_pred)
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - y_true.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def explained_variance_score(y_true, y_pred) -> float:
    """Fraction of target variance explained, ignoring systematic bias."""
    y_true, y_pred = _validate(y_true, y_pred)
    var_y = float(np.var(y_true))
    if var_y == 0.0:
        return 1.0 if np.allclose(y_true, y_pred) else 0.0
    return 1.0 - float(np.var(y_true - y_pred)) / var_y
