"""Histogram-based gradient boosting regression.

The paper calls this model "Histogram-based gradient boosting (XGB)"
(Section 4.2): "a popular ensemble method relying on a boosting strategy.
It minimizes the prediction loss by combining many decision tree
regressors."  The implementation here follows the LightGBM/sklearn-HGBT
recipe:

1. features are quantile-binned once into at most ``max_bins`` integer
   bins (:class:`BinMapper`);
2. each boosting round fits a small tree to the current loss gradients,
   finding splits by scanning per-bin gradient/hessian histograms rather
   than sorted raw values;
3. leaf values are Newton steps ``-G / (H + l2)`` scaled by the learning
   rate, and the model prediction is the running sum of leaf values.

The loss is least squares (gradient = prediction - target, hessian = 1),
which is what a regression target such as days-to-maintenance calls for.
Optional early stopping holds out a validation fraction and stops when the
validation loss stops improving.
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

from .base import BaseEstimator, RegressorMixin
from .compiled import gbdt_kernel
from .validation import (
    check_array,
    check_is_fitted,
    check_random_state,
    check_X_y,
)

__all__ = ["BinMapper", "HistGradientBoostingRegressor"]


class BinMapper:
    """Quantile binning of continuous features into small integer codes.

    Parameters
    ----------
    max_bins:
        Maximum number of bins per feature (<= 256 so codes fit in uint8).
    """

    def __init__(self, max_bins: int = 255):
        if not 2 <= max_bins <= 256:
            raise ValueError(f"max_bins must be in [2, 256], got {max_bins}.")
        self.max_bins = max_bins

    def fit(self, X: np.ndarray) -> "BinMapper":
        X = check_array(X)
        edges: list[np.ndarray] = []
        for j in range(X.shape[1]):
            distinct = np.unique(X[:, j])
            if distinct.size <= self.max_bins:
                # Few distinct values: one bin per value, cut midway.
                cuts = (distinct[:-1] + distinct[1:]) / 2.0
            else:
                quantiles = np.linspace(0, 100, self.max_bins + 1)[1:-1]
                cuts = np.unique(np.percentile(X[:, j], quantiles))
            edges.append(cuts)
        self.bin_edges_ = edges
        self.n_bins_ = np.array(
            [cuts.size + 1 for cuts in edges], dtype=np.intp
        )
        return self

    def _rank_tables(self):
        """Contiguous threshold table for the one-``searchsorted`` path.

        All per-feature cut arrays are merged into one sorted vector;
        ``table[j, r]`` counts feature-``j`` cuts among the first ``r``
        sorted entries.  ``searchsorted(sorted_cuts, v, side="left")``
        returns the count of *global* cuts strictly below ``v``, and
        those occupy exactly the first ``rank`` sorted slots, so
        ``table[j, rank]`` equals the per-feature left-searchsorted bin
        — bit-exact, ties and duplicate cuts included.

        Built lazily, keyed on the identity of ``bin_edges_`` so a refit
        (or an unpickled artifact) rebuilds; dropped from pickles by
        :meth:`__getstate__` to keep stored artifacts lean.
        """
        cached = getattr(self, "_rank_cache", None)
        if cached is not None and cached[0] is self.bin_edges_:
            return cached[1], cached[2]
        sorted_cuts = np.concatenate(
            [np.asarray(c, dtype=np.float64) for c in self.bin_edges_]
        )
        feature_of = np.concatenate(
            [
                np.full(len(c), j, dtype=np.intp)
                for j, c in enumerate(self.bin_edges_)
            ]
        )
        order = np.argsort(sorted_cuts, kind="stable")
        sorted_cuts = np.ascontiguousarray(sorted_cuts[order])
        feature_of = feature_of[order]
        n_features = len(self.bin_edges_)
        one_hot = np.zeros((n_features, sorted_cuts.size + 1), dtype=np.int64)
        if sorted_cuts.size:
            one_hot[feature_of, np.arange(sorted_cuts.size) + 1] = 1
        table = np.cumsum(one_hot, axis=1).astype(np.uint8)
        self._rank_cache = (self.bin_edges_, sorted_cuts, table)
        return sorted_cuts, table

    def transform(self, X: np.ndarray, *, validate: bool = True) -> np.ndarray:
        if validate:
            check_is_fitted(self, "bin_edges_")
            X = check_array(X)
        else:
            X = np.asarray(X, dtype=np.float64)
        if X.shape[1] != len(self.bin_edges_):
            raise ValueError(
                f"X has {X.shape[1]} features; mapper was fitted with "
                f"{len(self.bin_edges_)}."
            )
        sorted_cuts, table = self._rank_tables()
        ranks = np.searchsorted(sorted_cuts, X, side="left")
        return table[np.arange(X.shape[1])[None, :], ranks]

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_rank_cache", None)
        return state


class _HistNode:
    """Node of a histogram-grown tree, in bin space."""

    __slots__ = (
        "indices",
        "depth",
        "node_id",
        "best_gain",
        "best_feature",
        "best_bin",
        "grad_sum",
        "hess_sum",
    )

    def __init__(self, indices, depth, node_id, grad_sum, hess_sum):
        self.indices = indices
        self.depth = depth
        self.node_id = node_id
        self.grad_sum = grad_sum
        self.hess_sum = hess_sum
        self.best_gain = -np.inf
        self.best_feature = -1
        self.best_bin = -1


class _HistTree:
    """A fitted boosting-round tree operating on binned features."""

    def __init__(self):
        self.children_left: list[int] = []
        self.children_right: list[int] = []
        self.feature: list[int] = []
        self.bin_threshold: list[int] = []
        self.value: list[float] = []

    def add_node(self) -> int:
        self.children_left.append(-1)
        self.children_right.append(-1)
        self.feature.append(-1)
        self.bin_threshold.append(-1)
        self.value.append(0.0)
        return len(self.value) - 1

    def finalize(self) -> None:
        self.children_left = np.asarray(self.children_left, dtype=np.intp)
        self.children_right = np.asarray(self.children_right, dtype=np.intp)
        self.feature = np.asarray(self.feature, dtype=np.intp)
        self.bin_threshold = np.asarray(self.bin_threshold, dtype=np.int32)
        self.value = np.asarray(self.value, dtype=np.float64)

    @property
    def n_leaves(self) -> int:
        return int(np.sum(self.children_left == -1))

    def predict_binned(self, binned: np.ndarray) -> np.ndarray:
        node = np.zeros(binned.shape[0], dtype=np.intp)
        while True:
            internal = self.children_left[node] != -1
            if not internal.any():
                return self.value[node]
            idx = np.nonzero(internal)[0]
            current = node[idx]
            go_left = (
                binned[idx, self.feature[current]]
                <= self.bin_threshold[current]
            )
            node[idx] = np.where(
                go_left,
                self.children_left[current],
                self.children_right[current],
            )


def _find_best_split(
    binned: np.ndarray,
    grad: np.ndarray,
    node: _HistNode,
    n_bins: np.ndarray,
    l2: float,
    min_samples_leaf: int,
) -> None:
    """Fill ``node.best_*`` by scanning per-feature histograms.

    With a least-squares loss the hessian of every sample is 1, so the
    hessian histogram is simply the per-bin count.
    """
    idx = node.indices
    parent_score = node.grad_sum**2 / (node.hess_sum + l2)
    for feat in range(binned.shape[1]):
        bins = n_bins[feat]
        if bins < 2:
            continue
        codes = binned[idx, feat]
        g_hist = np.bincount(codes, weights=grad[idx], minlength=bins)
        c_hist = np.bincount(codes, minlength=bins)
        g_left = np.cumsum(g_hist)[:-1]
        c_left = np.cumsum(c_hist)[:-1]
        g_right = node.grad_sum - g_left
        c_right = node.hess_sum - c_left
        valid = (c_left >= min_samples_leaf) & (c_right >= min_samples_leaf)
        if not valid.any():
            continue
        with np.errstate(divide="ignore", invalid="ignore"):
            gain = (
                g_left**2 / (c_left + l2)
                + g_right**2 / (c_right + l2)
                - parent_score
            )
        gain[~valid] = -np.inf
        best_bin = int(np.argmax(gain))
        if gain[best_bin] > node.best_gain:
            node.best_gain = float(gain[best_bin])
            node.best_feature = feat
            node.best_bin = best_bin


class HistGradientBoostingRegressor(BaseEstimator, RegressorMixin):
    """Gradient-boosted histogram trees with least-squares loss.

    Parameters
    ----------
    learning_rate:
        Shrinkage applied to each tree's leaf values.
    max_iter:
        Number of boosting rounds (trees).
    max_depth:
        Per-tree depth limit; ``None`` leaves depth unconstrained (the
        ``max_leaf_nodes`` cap still applies).
    max_leaf_nodes:
        Per-tree leaf cap; growth is best-first by split gain.
    min_samples_leaf:
        Minimum samples per leaf.
    l2_regularization:
        Hessian-side L2 penalty in the Newton leaf value.
    max_bins:
        Number of feature bins (<= 256).
    early_stopping:
        If true, hold out ``validation_fraction`` of the data and stop
        after ``n_iter_no_change`` rounds without ``tol`` improvement.
    random_state:
        Seed for the validation split.

    Prediction runs through the fused level-wise kernel
    (:mod:`repro.learn.compiled`): one vectorized binning pass plus one
    cursor descent over all trees at once, bit-identical to the
    per-round loop it replaced.  ``validate=False`` skips input
    re-validation for trusted callers (the serving engine).
    """

    trusted_predict = True

    def __init__(
        self,
        learning_rate: float = 0.1,
        max_iter: int = 100,
        max_depth: int | None = None,
        max_leaf_nodes: int = 31,
        min_samples_leaf: int = 5,
        l2_regularization: float = 0.0,
        max_bins: int = 255,
        early_stopping: bool = False,
        validation_fraction: float = 0.1,
        n_iter_no_change: int = 10,
        tol: float = 1e-7,
        random_state=None,
    ):
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.max_depth = max_depth
        self.max_leaf_nodes = max_leaf_nodes
        self.min_samples_leaf = min_samples_leaf
        self.l2_regularization = l2_regularization
        self.max_bins = max_bins
        self.early_stopping = early_stopping
        self.validation_fraction = validation_fraction
        self.n_iter_no_change = n_iter_no_change
        self.tol = tol
        self.random_state = random_state

    def _validate_hyperparams(self) -> None:
        if self.learning_rate <= 0:
            raise ValueError(
                f"learning_rate must be positive, got {self.learning_rate}."
            )
        if self.max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {self.max_iter}.")
        if self.max_leaf_nodes < 2:
            raise ValueError(
                f"max_leaf_nodes must be >= 2, got {self.max_leaf_nodes}."
            )
        if self.max_depth is not None and self.max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {self.max_depth}.")
        if self.min_samples_leaf < 1:
            raise ValueError(
                f"min_samples_leaf must be >= 1, got {self.min_samples_leaf}."
            )
        if self.l2_regularization < 0:
            raise ValueError(
                "l2_regularization must be non-negative, got "
                f"{self.l2_regularization}."
            )

    def _grow_tree(
        self, binned: np.ndarray, grad: np.ndarray, n_bins: np.ndarray
    ) -> _HistTree:
        """Grow one best-first tree on the current gradients."""
        l2 = self.l2_regularization
        max_depth = np.inf if self.max_depth is None else self.max_depth
        tree = _HistTree()
        root = _HistNode(
            np.arange(binned.shape[0], dtype=np.intp),
            depth=0,
            node_id=tree.add_node(),
            grad_sum=float(grad.sum()),
            hess_sum=float(grad.size),
        )

        def leaf_value(node: _HistNode) -> float:
            return -node.grad_sum / (node.hess_sum + l2)

        counter = itertools.count()  # tie-break heap entries
        heap: list[tuple[float, int, _HistNode]] = []

        def consider(node: _HistNode) -> None:
            if (
                node.depth >= max_depth
                or node.indices.size < 2 * self.min_samples_leaf
            ):
                tree.value[node.node_id] = leaf_value(node)
                return
            _find_best_split(
                binned, grad, node, n_bins, l2, self.min_samples_leaf
            )
            if node.best_feature < 0 or node.best_gain <= 1e-12:
                tree.value[node.node_id] = leaf_value(node)
                return
            heapq.heappush(heap, (-node.best_gain, next(counter), node))
            tree.value[node.node_id] = leaf_value(node)

        consider(root)
        n_leaves = 1
        while heap and n_leaves < self.max_leaf_nodes:
            _, _, node = heapq.heappop(heap)
            idx = node.indices
            go_left = binned[idx, node.best_feature] <= node.best_bin
            left_idx = idx[go_left]
            right_idx = idx[~go_left]
            tree.feature[node.node_id] = node.best_feature
            tree.bin_threshold[node.node_id] = node.best_bin
            left = _HistNode(
                left_idx,
                node.depth + 1,
                tree.add_node(),
                float(grad[left_idx].sum()),
                float(left_idx.size),
            )
            right = _HistNode(
                right_idx,
                node.depth + 1,
                tree.add_node(),
                float(grad[right_idx].sum()),
                float(right_idx.size),
            )
            tree.children_left[node.node_id] = left.node_id
            tree.children_right[node.node_id] = right.node_id
            n_leaves += 1
            consider(left)
            consider(right)

        tree.finalize()
        return tree

    def fit(self, X, y):
        X, y = check_X_y(X, y, min_samples=2)
        self._validate_hyperparams()
        rng = check_random_state(self.random_state)

        if self.early_stopping:
            n = X.shape[0]
            n_val = max(1, int(round(self.validation_fraction * n)))
            if n_val >= n:
                raise ValueError(
                    "validation_fraction leaves no training samples."
                )
            order = rng.permutation(n)
            val_idx, train_idx = order[:n_val], order[n_val:]
            X_train, y_train = X[train_idx], y[train_idx]
            X_val, y_val = X[val_idx], y[val_idx]
        else:
            X_train, y_train = X, y
            X_val = y_val = None

        mapper = BinMapper(max_bins=self.max_bins)
        binned = mapper.fit_transform(X_train)
        n_bins = mapper.n_bins_

        baseline = float(y_train.mean())
        prediction = np.full(y_train.shape, baseline)
        if X_val is not None:
            binned_val = mapper.transform(X_val)
            val_prediction = np.full(y_val.shape, baseline)
            best_val_loss = np.inf
            rounds_no_improve = 0

        trees: list[_HistTree] = []
        train_losses: list[float] = []
        val_losses: list[float] = []
        for _ in range(self.max_iter):
            grad = prediction - y_train
            tree = self._grow_tree(binned, grad, n_bins)
            step = self.learning_rate * tree.predict_binned(binned)
            prediction += step
            trees.append(tree)
            train_losses.append(float(np.mean((prediction - y_train) ** 2)))

            if X_val is not None:
                val_prediction += self.learning_rate * tree.predict_binned(
                    binned_val
                )
                val_loss = float(np.mean((val_prediction - y_val) ** 2))
                val_losses.append(val_loss)
                if val_loss < best_val_loss - self.tol:
                    best_val_loss = val_loss
                    rounds_no_improve = 0
                else:
                    rounds_no_improve += 1
                    if rounds_no_improve >= self.n_iter_no_change:
                        break

        self.bin_mapper_ = mapper
        self.baseline_prediction_ = baseline
        self.estimators_ = trees
        self.n_iter_ = len(trees)
        self.train_score_ = np.asarray(train_losses)
        self.validation_score_ = (
            np.asarray(val_losses) if X_val is not None else None
        )
        self.n_features_in_ = X.shape[1]
        return self

    def predict(self, X, *, validate: bool = True) -> np.ndarray:
        if validate:
            check_is_fitted(self, "estimators_")
            X = check_array(X)
        else:
            X = np.asarray(X, dtype=np.float64)
        # Width mismatch still raises from the mapper inside the kernel,
        # exactly as the unfused path did.
        return gbdt_kernel(self).predict(X)
