"""Estimator base classes and the parameter-introspection protocol.

The design mirrors scikit-learn's: every estimator stores its constructor
arguments verbatim as attributes, :meth:`BaseEstimator.get_params` reads them
back through signature introspection, and :func:`clone` builds an unfitted
copy.  This is what makes generic machinery such as
:class:`repro.learn.model_selection.GridSearchCV` possible without the
machinery knowing anything about individual models.
"""

from __future__ import annotations

import copy
import inspect
from typing import Any

import numpy as np

from .metrics import r2_score
from .validation import check_array, check_is_fitted

__all__ = ["BaseEstimator", "RegressorMixin", "clone"]


class BaseEstimator:
    """Base class providing ``get_params`` / ``set_params`` / ``repr``.

    Subclasses must follow two rules (enforced by tests):

    * ``__init__`` takes only keyword-style parameters with defaults and
      stores each argument unchanged on ``self`` under the same name;
    * attributes learned during :meth:`fit` carry a trailing underscore
      (``coef_``, ``tree_`` ...) so :func:`clone` and
      :func:`~repro.learn.validation.check_is_fitted` can tell
      hyper-parameters from fitted state.
    """

    @classmethod
    def _get_param_names(cls) -> list[str]:
        """Names of the constructor parameters, in signature order."""
        init_signature = inspect.signature(cls.__init__)
        names = [
            p.name
            for p in init_signature.parameters.values()
            if p.name != "self" and p.kind != p.VAR_KEYWORD
        ]
        return sorted(names)

    def get_params(self, deep: bool = True) -> dict[str, Any]:
        """Return hyper-parameters as a dict.

        With ``deep=True``, parameters of nested estimators are included
        under ``<component>__<param>`` keys.
        """
        params: dict[str, Any] = {}
        for name in self._get_param_names():
            value = getattr(self, name)
            params[name] = value
            if deep and hasattr(value, "get_params"):
                for sub_name, sub_value in value.get_params(deep=True).items():
                    params[f"{name}__{sub_name}"] = sub_value
        return params

    def set_params(self, **params) -> "BaseEstimator":
        """Set hyper-parameters; supports ``component__param`` nesting."""
        if not params:
            return self
        valid = set(self._get_param_names())
        nested: dict[str, dict[str, Any]] = {}
        for key, value in params.items():
            name, delim, sub_key = key.partition("__")
            if name not in valid:
                raise ValueError(
                    f"Invalid parameter {name!r} for estimator "
                    f"{type(self).__name__}. Valid parameters: {sorted(valid)}."
                )
            if delim:
                nested.setdefault(name, {})[sub_key] = value
            else:
                setattr(self, name, value)
        for name, sub_params in nested.items():
            getattr(self, name).set_params(**sub_params)
        return self

    def __repr__(self) -> str:
        cls = type(self)
        defaults = {
            p.name: p.default
            for p in inspect.signature(cls.__init__).parameters.values()
            if p.name != "self"
        }
        shown = []
        for name in self._get_param_names():
            value = getattr(self, name)
            if name in defaults and _params_equal(value, defaults[name]):
                continue
            shown.append(f"{name}={value!r}")
        return f"{cls.__name__}({', '.join(shown)})"


def _params_equal(a: Any, b: Any) -> bool:
    """Equality that tolerates numpy arrays inside parameter values."""
    if a is b:
        return True
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.array_equal(np.asarray(a), np.asarray(b))
    result = a == b
    return bool(result)


class RegressorMixin:
    """Mixin adding the coefficient-of-determination :meth:`score`."""

    _estimator_type = "regressor"

    def score(self, X, y) -> float:
        """Return the R² of ``self.predict(X)`` against ``y``."""
        check_is_fitted(self)
        X = check_array(X)
        return r2_score(y, self.predict(X))


def clone(estimator):
    """Return an unfitted deep copy of ``estimator``.

    Lists/tuples of estimators are cloned element-wise, which is what
    meta-estimators holding sub-model collections need.
    """
    if isinstance(estimator, (list, tuple)):
        return type(estimator)(clone(e) for e in estimator)
    if not hasattr(estimator, "get_params"):
        raise TypeError(
            f"Cannot clone object {estimator!r}: it does not implement "
            "get_params()."
        )
    params = estimator.get_params(deep=False)
    fresh = type(estimator)(**{k: copy.deepcopy(v) for k, v in params.items()})
    return fresh
