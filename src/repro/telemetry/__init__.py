"""CAN-bus telematics acquisition substrate.

Simulates the data-acquisition chain of Section 3 of the paper: on-board
sensors emit CAN frames, an on-board controller summarizes them into
periodic usage reports, and a cloud store ingests the reports (with
realistic transport faults).  The proprietary Tierra S.p.A. pipeline this
replaces is documented in DESIGN.md.
"""

from .canbus import (
    CANBus,
    CANFrame,
    SignalTrafficGenerator,
    decode_signal_frame,
    encode_signal_frame,
)
from .cloud import CloudStore, DailyUsageRecord, SECONDS_PER_DAY
from .controller import OnboardController, SignalStats, UsageReport
from .signals import (
    COOLANT_TEMPERATURE,
    DEFAULT_CATALOG,
    ENGINE_LOAD,
    ENGINE_SPEED,
    FUEL_RATE,
    HYDRAULIC_PRESSURE,
    OIL_PRESSURE,
    VEHICLE_SPEED,
    SignalCatalog,
    SignalSpec,
)

__all__ = [
    "CANBus",
    "CANFrame",
    "SignalTrafficGenerator",
    "decode_signal_frame",
    "encode_signal_frame",
    "CloudStore",
    "DailyUsageRecord",
    "SECONDS_PER_DAY",
    "OnboardController",
    "SignalStats",
    "UsageReport",
    "SignalCatalog",
    "SignalSpec",
    "DEFAULT_CATALOG",
    "ENGINE_SPEED",
    "OIL_PRESSURE",
    "COOLANT_TEMPERATURE",
    "FUEL_RATE",
    "VEHICLE_SPEED",
    "HYDRAULIC_PRESSURE",
    "ENGINE_LOAD",
]
