"""On-board controller: CAN frames -> periodic usage summary reports.

Section 3: "Each message is collected by a controller which processes it,
periodically generates a summary report, and sends it to a cloud server."
The controller decodes signal frames, decides whether the machine is
*working* (engine speed above the working threshold), integrates working
time, tracks signal statistics, and cuts a :class:`UsageReport` every
``report_interval_s`` seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .canbus import CANFrame, decode_signal_frame
from .signals import DEFAULT_CATALOG, SignalCatalog

__all__ = ["SignalStats", "UsageReport", "OnboardController"]


@dataclass
class SignalStats:
    """Streaming min/max/mean/count accumulator for one signal."""

    count: int = 0
    total: float = 0.0
    minimum: float = np.inf
    maximum: float = -np.inf

    def update(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else np.nan

    def snapshot(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum if self.count else np.nan,
            "max": self.maximum if self.count else np.nan,
        }


@dataclass(frozen=True)
class UsageReport:
    """Summary the controller periodically uploads to the cloud.

    Attributes
    ----------
    vehicle_id:
        Reporting vehicle.
    period_start, period_end:
        Covered time window, in seconds since the acquisition epoch.
    working_seconds:
        Estimated seconds of actual machine work in the window.
    engine_hours_total:
        Lifetime working-time odometer, in hours, at ``period_end``.
    signal_stats:
        Per-signal ``{count, mean, min, max}`` snapshots.
    inconsistent_frames:
        Frames whose decoded value violated the signal's physical range
        (these become the "inconsistent values" the cleaning stage sees).
    """

    vehicle_id: str
    period_start: float
    period_end: float
    working_seconds: float
    engine_hours_total: float
    signal_stats: dict[str, dict[str, float]]
    inconsistent_frames: int = 0


class OnboardController:
    """Per-vehicle CAN consumer producing :class:`UsageReport` streams.

    Parameters
    ----------
    vehicle_id:
        Identifier stamped on every report.
    report_interval_s:
        Report period; real controllers upload every few minutes to hours.
    catalog:
        Signal dictionary used for decoding.
    working_signal:
        Activity signal name; its ``working_threshold`` classifies each
        sampling instant as working or idle.
    """

    def __init__(
        self,
        vehicle_id: str,
        report_interval_s: float = 3600.0,
        catalog: SignalCatalog = DEFAULT_CATALOG,
        working_signal: str = "engine_speed",
    ):
        if report_interval_s <= 0:
            raise ValueError(
                f"report_interval_s must be positive, got {report_interval_s}."
            )
        spec = catalog.by_name(working_signal)
        if spec.working_threshold is None:
            raise ValueError(
                f"Signal {working_signal!r} has no working_threshold; it "
                "cannot classify activity."
            )
        self.vehicle_id = vehicle_id
        self.report_interval_s = report_interval_s
        self.catalog = catalog
        self.working_signal = working_signal
        self._threshold = spec.working_threshold

        self._period_start: float | None = None
        self._last_activity_time: float | None = None
        self._last_activity_working = False
        self._working_seconds = 0.0
        self._engine_seconds_total = 0.0
        self._stats: dict[str, SignalStats] = {}
        self._inconsistent = 0
        self._reports: list[UsageReport] = []

    def process_frame(self, frame: CANFrame) -> None:
        """Decode one frame and update working-time integration."""
        if self._period_start is None:
            self._period_start = frame.timestamp
        elif frame.timestamp - self._period_start >= self.report_interval_s:
            self._cut_report(frame.timestamp)

        try:
            name, value = decode_signal_frame(frame, self.catalog)
        except KeyError:
            # Unknown arbitration id: not ours to decode.
            return

        spec = self.catalog.by_name(name)
        if not spec.is_consistent(value):
            self._inconsistent += 1
            return
        self._stats.setdefault(name, SignalStats()).update(value)

        if name == self.working_signal:
            # Integrate working time between consecutive activity samples.
            if self._last_activity_time is not None:
                dt = frame.timestamp - self._last_activity_time
                if 0 < dt < self.report_interval_s and self._last_activity_working:
                    self._working_seconds += dt
                    self._engine_seconds_total += dt
            self._last_activity_time = frame.timestamp
            self._last_activity_working = value >= self._threshold

    def process_frames(self, frames) -> None:
        for frame in frames:
            self.process_frame(frame)

    def _cut_report(self, now: float) -> None:
        assert self._period_start is not None
        report = UsageReport(
            vehicle_id=self.vehicle_id,
            period_start=self._period_start,
            period_end=now,
            working_seconds=self._working_seconds,
            engine_hours_total=self._engine_seconds_total / 3600.0,
            signal_stats={
                name: stats.snapshot() for name, stats in self._stats.items()
            },
            inconsistent_frames=self._inconsistent,
        )
        self._reports.append(report)
        self._period_start = now
        self._working_seconds = 0.0
        self._stats = {}
        self._inconsistent = 0

    def flush(self, now: float | None = None) -> list[UsageReport]:
        """Cut a final partial report (if any data) and return all reports."""
        if self._period_start is not None and (
            self._working_seconds > 0 or self._stats or self._inconsistent
        ):
            end = now if now is not None else (
                self._last_activity_time
                if self._last_activity_time is not None
                else self._period_start
            )
            self._cut_report(end)
            self._period_start = None
        reports, self._reports = self._reports, []
        return reports
