"""Cloud ingestion store for controller usage reports.

The last hop of the Section-3 acquisition chain: controllers upload
:class:`~repro.telemetry.controller.UsageReport` objects to "a cloud
server".  :class:`CloudStore` models that server, including the transport
faults (lost uploads, duplicated retries, out-of-order arrival) that make
the raw daily series contain the missing/duplicate values the paper's
data-cleaning stage handles.

The store's query surface produces per-vehicle *daily utilization* arrays
— the raw input of :mod:`repro.dataprep`.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from .controller import UsageReport

__all__ = ["CloudStore", "DailyUsageRecord"]

SECONDS_PER_DAY = 86_400.0


class DailyUsageRecord(dict):
    """Mapping day-index -> raw utilization seconds for one vehicle.

    Values may exceed 86 400 (duplicated uploads) or be missing entirely
    (lost uploads); this is deliberate — cleaning is downstream's job.
    """


class CloudStore:
    """In-memory report warehouse with ingestion fault injection.

    Parameters
    ----------
    loss_probability:
        Chance an uploaded report is silently lost.
    duplicate_probability:
        Chance a report is stored twice (client retry after a timed-out
        acknowledgment).
    seed:
        Reproducibility seed for the fault processes.
    """

    def __init__(
        self,
        loss_probability: float = 0.0,
        duplicate_probability: float = 0.0,
        seed: int | None = None,
    ):
        for name, p in (
            ("loss_probability", loss_probability),
            ("duplicate_probability", duplicate_probability),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}.")
        self.loss_probability = loss_probability
        self.duplicate_probability = duplicate_probability
        self._rng = np.random.default_rng(seed)
        self._reports: dict[str, list[UsageReport]] = defaultdict(list)
        self.n_ingested = 0
        self.n_lost = 0
        self.n_duplicated = 0

    def ingest(self, report: UsageReport) -> bool:
        """Store one report; returns False when the upload was lost."""
        if self.loss_probability and self._rng.random() < self.loss_probability:
            self.n_lost += 1
            return False
        self._reports[report.vehicle_id].append(report)
        self.n_ingested += 1
        if (
            self.duplicate_probability
            and self._rng.random() < self.duplicate_probability
        ):
            self._reports[report.vehicle_id].append(report)
            self.n_duplicated += 1
        return True

    def ingest_many(self, reports) -> int:
        """Ingest an iterable of reports; returns how many were stored."""
        return sum(1 for report in reports if self.ingest(report))

    @property
    def vehicle_ids(self) -> list[str]:
        return sorted(self._reports)

    def reports_for(self, vehicle_id: str) -> list[UsageReport]:
        """All stored reports of a vehicle, sorted by period start."""
        return sorted(
            self._reports.get(vehicle_id, []), key=lambda r: r.period_start
        )

    def daily_usage(self, vehicle_id: str) -> DailyUsageRecord:
        """Aggregate a vehicle's reports into raw day -> seconds totals.

        A report's working seconds are attributed to the day its period
        *starts* in (controllers cut reports frequently enough that split
        periods are a second-order effect; the aggregation stage in
        :mod:`repro.dataprep.aggregation` documents this choice).
        """
        record = DailyUsageRecord()
        for report in self._reports.get(vehicle_id, []):
            day = int(report.period_start // SECONDS_PER_DAY)
            record[day] = record.get(day, 0.0) + report.working_seconds
        return record

    def daily_usage_array(
        self, vehicle_id: str, n_days: int | None = None
    ) -> np.ndarray:
        """Dense raw daily series with NaN for days with no report at all."""
        record = self.daily_usage(vehicle_id)
        if not record:
            return np.zeros(0)
        last_day = max(record) if n_days is None else n_days - 1
        series = np.full(last_day + 1, np.nan)
        for day, seconds in record.items():
            if day <= last_day:
                series[day] = seconds
        return series
