"""CAN frame model and on-board signal traffic synthesis.

"Onboard sensors and Machine Control Systems generate messages for CAN at
a frequency of approximately 100 Hz" (Section 3).  Simulating four years of
a 24-vehicle fleet at 100 Hz frame-by-frame is neither feasible nor needed
— the learning problem only consumes *daily* aggregates — so this module
provides full-fidelity frame synthesis for bounded windows (used by tests
and by the controller's integration path) while the fleet-scale dataset is
produced by the calibrated daily generator in :mod:`repro.fleet`.

A frame carries one signal in J1939-like little-endian byte packing; the
bus is a simple in-memory queue with optional noise faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .signals import DEFAULT_CATALOG, SignalCatalog, SignalSpec

__all__ = [
    "CANFrame",
    "CANBus",
    "SignalTrafficGenerator",
    "encode_signal_frame",
    "decode_signal_frame",
]


@dataclass(frozen=True)
class CANFrame:
    """One CAN data frame.

    Attributes
    ----------
    timestamp:
        Seconds since the acquisition epoch (float, sub-second capable).
    arbitration_id:
        29-bit extended identifier; we embed the SPN here for routing.
    data:
        Payload bytes (up to 8).
    """

    timestamp: float
    arbitration_id: int
    data: bytes

    def __post_init__(self) -> None:
        if not 0 <= self.arbitration_id < (1 << 29):
            raise ValueError(
                f"arbitration_id {self.arbitration_id:#x} outside 29 bits."
            )
        if len(self.data) > 8:
            raise ValueError(f"CAN payload limited to 8 bytes, got {len(self.data)}.")


def encode_signal_frame(
    spec: SignalSpec, value: float, timestamp: float
) -> CANFrame:
    """Pack a physical signal value into a frame (little-endian raw)."""
    raw = spec.encode(value)
    return CANFrame(
        timestamp=timestamp,
        arbitration_id=spec.spn,
        data=raw.to_bytes(spec.byte_length, "little"),
    )


def decode_signal_frame(
    frame: CANFrame, catalog: SignalCatalog = DEFAULT_CATALOG
) -> tuple[str, float]:
    """Unpack a frame into ``(signal_name, physical_value)``."""
    spec = catalog.by_spn(frame.arbitration_id)
    if len(frame.data) != spec.byte_length:
        raise ValueError(
            f"Frame for SPN {spec.spn} has {len(frame.data)} bytes; "
            f"expected {spec.byte_length}."
        )
    raw = int.from_bytes(frame.data, "little")
    return spec.name, spec.decode(raw)


@dataclass
class CANBus:
    """In-memory CAN bus with optional frame corruption/loss.

    Parameters
    ----------
    drop_probability:
        Chance an emitted frame never reaches listeners (bus-off spells,
        wiring faults).
    corrupt_probability:
        Chance a frame's payload is replaced with garbage; downstream
        decode will produce an out-of-range (inconsistent) value that the
        data-cleaning stage must catch.
    seed:
        Reproducibility seed for the fault processes.
    """

    drop_probability: float = 0.0
    corrupt_probability: float = 0.0
    seed: int | None = None
    _frames: list[CANFrame] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        for name, p in (
            ("drop_probability", self.drop_probability),
            ("corrupt_probability", self.corrupt_probability),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}.")
        self._rng = np.random.default_rng(self.seed)

    def send(self, frame: CANFrame) -> bool:
        """Put a frame on the bus; returns False if the frame was dropped."""
        if self.drop_probability and self._rng.random() < self.drop_probability:
            return False
        if (
            self.corrupt_probability
            and self._rng.random() < self.corrupt_probability
        ):
            garbage = self._rng.integers(0, 256, size=len(frame.data))
            frame = CANFrame(
                timestamp=frame.timestamp,
                arbitration_id=frame.arbitration_id,
                data=bytes(int(b) for b in garbage),
            )
        self._frames.append(frame)
        return True

    def drain(self) -> list[CANFrame]:
        """Return and clear all frames currently on the bus."""
        frames, self._frames = self._frames, []
        return frames

    def __len__(self) -> int:
        return len(self._frames)


class SignalTrafficGenerator:
    """Synthesize realistic signal traffic for a working/idle window.

    Produces per-signal sample streams at a configurable rate.  During
    *working* seconds the engine signals sit at load levels (engine speed
    around a working setpoint, warm coolant, positive fuel rate); during
    *idle* seconds they sit at idle/ambient levels.

    Parameters
    ----------
    catalog:
        Signals to synthesize.
    sample_rate_hz:
        Frames per second *per signal*.  The paper's bus runs at ~100 Hz
        aggregate; tests use small rates to keep volumes bounded.
    seed:
        Reproducibility seed.
    """

    #: (working mean, working sd, idle mean, idle sd) per signal name.
    _LEVELS = {
        "engine_speed": (1800.0, 150.0, 750.0, 30.0),
        "oil_pressure": (420.0, 25.0, 180.0, 15.0),
        "coolant_temperature": (88.0, 3.0, 35.0, 5.0),
        "fuel_rate": (14.0, 3.0, 1.2, 0.3),
        "vehicle_speed": (9.0, 4.0, 0.0, 0.0),
        "hydraulic_pressure": (210.0, 40.0, 3.0, 1.0),
        "engine_load": (65.0, 12.0, 8.0, 2.0),
    }

    def __init__(
        self,
        catalog: SignalCatalog = DEFAULT_CATALOG,
        sample_rate_hz: float = 100.0,
        seed: int | None = None,
    ):
        if sample_rate_hz <= 0:
            raise ValueError(
                f"sample_rate_hz must be positive, got {sample_rate_hz}."
            )
        self.catalog = catalog
        self.sample_rate_hz = sample_rate_hz
        self._rng = np.random.default_rng(seed)

    def _level(self, name: str, working: bool) -> tuple[float, float]:
        w_mean, w_sd, i_mean, i_sd = self._LEVELS.get(
            name, (1.0, 0.1, 0.0, 0.0)
        )
        return (w_mean, w_sd) if working else (i_mean, i_sd)

    def generate_window(
        self,
        start_time: float,
        duration_s: float,
        working: bool,
    ) -> list[CANFrame]:
        """Frames for one contiguous working or idle window.

        Frames are interleaved across signals in timestamp order, the way
        a real bus would deliver them.
        """
        if duration_s < 0:
            raise ValueError(f"duration_s must be >= 0, got {duration_s}.")
        n_samples = int(duration_s * self.sample_rate_hz)
        if n_samples == 0:
            return []
        times = start_time + np.arange(n_samples) / self.sample_rate_hz
        frames: list[CANFrame] = []
        for spec in self.catalog:
            mean, sd = self._level(spec.name, working)
            values = self._rng.normal(mean, sd, size=n_samples)
            values = np.clip(values, spec.minimum, spec.maximum)
            for t, value in zip(times, values):
                frames.append(encode_signal_frame(spec, float(value), float(t)))
        frames.sort(key=lambda f: (f.timestamp, f.arbitration_id))
        return frames
