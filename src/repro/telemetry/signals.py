"""CAN signal catalog for industrial vehicles.

Section 1 of the paper: "The CAN bus provides access to various signals
describing the vehicle usage state (e.g., working time, oil pressure,
temperature, engine speed)."  This module defines a J1939-flavoured signal
dictionary: every signal has a *suspect parameter number* (SPN)-style id, a
physical range, and the linear ``raw = (value - offset) / resolution``
encoding used to pack values into CAN frame bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "SignalSpec",
    "SignalCatalog",
    "ENGINE_SPEED",
    "OIL_PRESSURE",
    "COOLANT_TEMPERATURE",
    "FUEL_RATE",
    "VEHICLE_SPEED",
    "HYDRAULIC_PRESSURE",
    "ENGINE_LOAD",
    "DEFAULT_CATALOG",
]


@dataclass(frozen=True)
class SignalSpec:
    """Definition of one CAN-carried physical signal.

    Attributes
    ----------
    name:
        Human-readable identifier, e.g. ``"engine_speed"``.
    spn:
        Numeric id, unique within a catalog (J1939 SPN style).
    unit:
        Physical unit string, for reports.
    minimum, maximum:
        Physical validity range; values outside are *inconsistent* in the
        Section-3 data-cleaning sense.
    resolution:
        Physical units per raw count in the frame encoding.
    offset:
        Physical value of raw count zero.
    byte_length:
        Bytes the raw value occupies inside a frame (1, 2 or 4).
    working_threshold:
        Level above which the signal indicates the vehicle is *working*
        (only meaningful for activity signals such as engine speed).
    """

    name: str
    spn: int
    unit: str
    minimum: float
    maximum: float
    resolution: float = 1.0
    offset: float = 0.0
    byte_length: int = 2
    working_threshold: float | None = None

    def __post_init__(self) -> None:
        if self.minimum >= self.maximum:
            raise ValueError(
                f"Signal {self.name!r}: minimum {self.minimum} must be "
                f"below maximum {self.maximum}."
            )
        if self.resolution <= 0:
            raise ValueError(
                f"Signal {self.name!r}: resolution must be positive."
            )
        if self.byte_length not in (1, 2, 4):
            raise ValueError(
                f"Signal {self.name!r}: byte_length must be 1, 2 or 4."
            )

    @property
    def raw_max(self) -> int:
        return (1 << (8 * self.byte_length)) - 1

    def encode(self, value: float) -> int:
        """Physical value -> raw counts, clipped to the representable range."""
        raw = int(round((value - self.offset) / self.resolution))
        return int(np.clip(raw, 0, self.raw_max))

    def decode(self, raw: int) -> float:
        """Raw counts -> physical value."""
        if not 0 <= raw <= self.raw_max:
            raise ValueError(
                f"Raw value {raw} outside [0, {self.raw_max}] for signal "
                f"{self.name!r}."
            )
        return raw * self.resolution + self.offset

    def is_consistent(self, value: float) -> bool:
        """True if ``value`` lies in the physical validity range."""
        return bool(np.isfinite(value)) and self.minimum <= value <= self.maximum


ENGINE_SPEED = SignalSpec(
    name="engine_speed",
    spn=190,
    unit="rpm",
    minimum=0.0,
    maximum=8000.0,
    resolution=0.125,
    working_threshold=900.0,
)
OIL_PRESSURE = SignalSpec(
    name="oil_pressure",
    spn=100,
    unit="kPa",
    minimum=0.0,
    maximum=1000.0,
    resolution=4.0,
    byte_length=1,
)
COOLANT_TEMPERATURE = SignalSpec(
    name="coolant_temperature",
    spn=110,
    unit="degC",
    minimum=-40.0,
    maximum=210.0,
    resolution=1.0,
    offset=-40.0,
    byte_length=1,
)
FUEL_RATE = SignalSpec(
    name="fuel_rate",
    spn=183,
    unit="L/h",
    minimum=0.0,
    maximum=3212.75,
    resolution=0.05,
)
VEHICLE_SPEED = SignalSpec(
    name="vehicle_speed",
    spn=84,
    unit="km/h",
    minimum=0.0,
    maximum=250.0,
    resolution=1.0 / 256.0,
)
HYDRAULIC_PRESSURE = SignalSpec(
    name="hydraulic_pressure",
    spn=1762,
    unit="bar",
    minimum=0.0,
    maximum=655.0,
    resolution=0.01,
)
ENGINE_LOAD = SignalSpec(
    name="engine_load",
    spn=92,
    unit="%",
    minimum=0.0,
    maximum=125.0,
    resolution=1.0,
    byte_length=1,
)


class SignalCatalog:
    """Registry of :class:`SignalSpec` entries, addressable by name or SPN."""

    def __init__(self, specs=()):
        self._by_name: dict[str, SignalSpec] = {}
        self._by_spn: dict[int, SignalSpec] = {}
        for spec in specs:
            self.register(spec)

    def register(self, spec: SignalSpec) -> None:
        if spec.name in self._by_name:
            raise ValueError(f"Duplicate signal name {spec.name!r}.")
        if spec.spn in self._by_spn:
            raise ValueError(f"Duplicate SPN {spec.spn}.")
        self._by_name[spec.name] = spec
        self._by_spn[spec.spn] = spec

    def by_name(self, name: str) -> SignalSpec:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"Unknown signal {name!r}.") from None

    def by_spn(self, spn: int) -> SignalSpec:
        try:
            return self._by_spn[spn]
        except KeyError:
            raise KeyError(f"Unknown SPN {spn}.") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self):
        return iter(self._by_name.values())

    def __len__(self) -> int:
        return len(self._by_name)

    @property
    def names(self) -> list[str]:
        return list(self._by_name)


DEFAULT_CATALOG = SignalCatalog(
    [
        ENGINE_SPEED,
        OIL_PRESSURE,
        COOLANT_TEMPERATURE,
        FUEL_RATE,
        VEHICLE_SPEED,
        HYDRAULIC_PRESSURE,
        ENGINE_LOAD,
    ]
)
