"""repro — reproduction of "Machine Learning Supported Next-Maintenance
Prediction for Industrial Vehicles" (Mishra et al., EDBT/ICDT 2020
workshops).

Subpackages
-----------
``repro.learn``
    From-scratch ML substrate (linear models, linear SVR, CART trees,
    random forests, histogram gradient boosting, CV / grid search).
``repro.telemetry``
    CAN-bus acquisition simulator (frames, on-board controller, cloud).
``repro.fleet``
    Calibrated synthetic fleet usage generator (the proprietary-data
    substitute).
``repro.dataprep``
    The five-step Section-3 preparation pipeline.
``repro.similarity``
    Series similarity measures (point-wise, correlation, DTW).
``repro.core``
    The paper's contribution: problem formalization, error model,
    predictors, old-vehicle and cold-start methodologies, fleet planner.
``repro.experiments``
    One module per table/figure of the evaluation section.

Quickstart
----------
>>> from repro.fleet import FleetGenerator
>>> from repro.core import VehicleSeries, OldVehicleExperiment, OldVehicleConfig
>>> fleet = FleetGenerator(seed=0).generate()
>>> series = VehicleSeries.from_vehicle(fleet.vehicles[0])
>>> experiment = OldVehicleExperiment(OldVehicleConfig(window=6))
>>> result = experiment.run_vehicle(series, "RF")
"""

from . import (
    context,
    core,
    dataprep,
    fleet,
    learn,
    serving,
    similarity,
    telemetry,
)

__version__ = "1.0.0"

__all__ = [
    "context",
    "core",
    "dataprep",
    "fleet",
    "learn",
    "serving",
    "similarity",
    "telemetry",
    "__version__",
]
