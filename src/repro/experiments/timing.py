"""Training-time measurements (Section 5.1's timing paragraph).

Reproduces: "The average training time on a single vehicle is 30.4 s for
XGB and 8.1 s for RF, while BL, LR, and LSVR are faster taking
respectively 2.5 s, 3.8 s, and 2.8 s.  Moreover, the model complexity
increases more than linearly with the number of considered features."

Absolute times depend on the machine and grid sizes; the reproduced
claims are the *ordering* (ensembles ≫ linear models ≫ BL) and the
super-linear growth in ``W``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.old_vehicles import OldVehicleConfig, OldVehicleExperiment
from ..core.registry import PAPER_ALGORITHM_ORDER
from ..obs import NULL_STAGE, Observability
from .config import ExperimentSetup
from .reporting import format_mapping_series, format_table

__all__ = ["TimingResult", "run_timing"]


@dataclass
class TimingResult:
    """Mean per-vehicle fit seconds per algorithm and window."""

    fit_seconds: dict[str, dict[int, float]]  # algorithm -> {W: seconds}
    setup: ExperimentSetup

    def at_window(self, window: int) -> dict[str, float]:
        return {
            algorithm: curve[window]
            for algorithm, curve in self.fit_seconds.items()
            if window in curve
        }

    def render(self) -> str:
        parts = [
            format_table(
                ["Algorithm", "mean fit seconds (W=0)"],
                sorted(self.at_window(0).items()),
                title="Training time per vehicle",
            )
        ]
        multi = {
            name: curve
            for name, curve in self.fit_seconds.items()
            if len(curve) > 1
        }
        if multi:
            parts.append(
                format_mapping_series(
                    multi,
                    x_label="W",
                    title="Fit seconds vs window size",
                )
            )
        return "\n\n".join(parts)


def run_timing(
    setup: ExperimentSetup | None = None,
    algorithms: tuple[str, ...] = PAPER_ALGORITHM_ORDER,
    windows: tuple[int, ...] = (0, 6, 12),
    *,
    obs: Observability | None = None,
) -> TimingResult:
    """Measure mean per-vehicle training time per algorithm and window.

    With an :class:`~repro.obs.Observability` attached, each
    (algorithm, window) sweep lands in the ``train`` stage histogram
    and one ``stage`` record per sweep in the event log, so the same
    profiling surface serves experiments and the live stack.
    """
    setup = setup or ExperimentSetup()
    series = setup.old_series

    timings: dict[str, dict[int, float]] = {}
    for algorithm in algorithms:
        curve: dict[int, float] = {}
        algo_windows = (0,) if algorithm == "BL" else windows
        for window in algo_windows:
            experiment = OldVehicleExperiment(
                OldVehicleConfig(
                    window=window,
                    restrict_to_horizon=True,
                    grid=setup.grid,
                )
            )
            with (
                obs.stage("train", algorithm=algorithm, window=window)
                if obs is not None
                else NULL_STAGE
            ):
                result = experiment.run_fleet(series, algorithm)
            curve[window] = result.mean_fit_seconds
        timings[algorithm] = curve
    return TimingResult(fit_seconds=timings, setup=setup)
