"""Table 3: results for semi-new and new vehicles.

Reproduces the cold-start evaluation: semi-new vehicles scored with
``E_MRE({1..29})`` on the second half of their first cycle (BL from own
first-half average; ``Model_Sim`` and ``Model_Uni`` per algorithm), new
vehicles scored with ``E_Global`` (``Model_Uni`` only).  The paper found
BL collapsing (34.9), RF_Sim best for semi-new (2.9, just ahead of
RF_Uni 3.2) and XGB_Uni best for new vehicles (17.9).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.coldstart import (
    ColdStartConfig,
    ColdStartExperiment,
    aggregate_by_label,
)
from .config import ExperimentSetup
from .reporting import format_table

__all__ = ["Table3Result", "run_table3", "TABLE3_ALGORITHMS"]

TABLE3_ALGORITHMS: tuple[str, ...] = ("LR", "LSVR", "RF", "XGB")


@dataclass
class Table3Result:
    """Semi-new E_MRE and new E_Global per Table-3 row label."""

    semi_new_e_mre: dict[str, float]
    new_e_global: dict[str, float]
    n_train_vehicles: int
    n_test_vehicles: int
    setup: ExperimentSetup

    def render(self) -> str:
        labels = ["BL"]
        for strategy in ("Sim", "Uni"):
            for algorithm in TABLE3_ALGORITHMS:
                labels.append(f"{algorithm}_{strategy}")
        rows = []
        for label in labels:
            rows.append(
                (
                    label,
                    self.semi_new_e_mre.get(label, float("nan")),
                    self.new_e_global.get(label, float("nan")),
                )
            )
        return format_table(
            ["Algorithm", "Semi-new E_MRE({1..29})", "New E_Global"],
            rows,
            title=(
                "Table 3: semi-new and new vehicles "
                f"({self.n_train_vehicles} train / "
                f"{self.n_test_vehicles} test vehicles)"
            ),
        )

    def best_semi_new(self) -> str:
        finite = {
            k: v for k, v in self.semi_new_e_mre.items() if np.isfinite(v)
        }
        return min(finite, key=finite.get)

    def best_new(self) -> str:
        finite = {
            k: v for k, v in self.new_e_global.items() if np.isfinite(v)
        }
        return min(finite, key=finite.get)


def run_table3(
    setup: ExperimentSetup | None = None,
    algorithms: tuple[str, ...] = TABLE3_ALGORITHMS,
    window: int = 0,
) -> Table3Result:
    """Run the full cold-start protocol (Section 4.4).

    ``window=0`` mirrors the univariate setting; the similarity-based
    donor selection then carries the per-vehicle rate information, which
    is where ``Model_Sim`` earns its advantage over ``Model_Uni``.
    """
    setup = setup or ExperimentSetup()
    experiment = ColdStartExperiment(
        ColdStartConfig(window=window, grid=setup.grid, seed=setup.seed)
    )
    executor = setup.executor
    train, test = experiment.split_fleet(setup.all_series)
    semi_results = experiment.run_semi_new(
        train, test, algorithms, executor=executor
    )
    new_results = experiment.run_new(
        train, test, algorithms, executor=executor
    )
    return Table3Result(
        semi_new_e_mre=aggregate_by_label(semi_results, "e_mre"),
        new_e_global=aggregate_by_label(new_results, "e_global"),
        n_train_vehicles=len(train),
        n_test_vehicles=len(test),
        setup=setup,
    )
