"""Figure 5: error as a function of days before the deadline.

Reproduces: "Mean relative error analyzed over all the test vehicles
computed for D~ ranging from 1 to 29 days" — each algorithm at its best
Table-2 configuration, with error shrinking as the maintenance deadline
approaches and RF staying low even 29 days out.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import DEFAULT_HORIZON
from ..core.old_vehicles import OldVehicleConfig, OldVehicleExperiment
from .config import ExperimentSetup
from .reporting import format_mapping_series
from .table2 import Table2Result, run_table2

__all__ = ["Figure5Result", "run_figure5"]


@dataclass
class Figure5Result:
    """Per-algorithm error-by-day curves (pooled over test vehicles)."""

    curves: dict[str, dict[int, float]]  # algorithm -> {day: E_MRE({day})}
    setup: ExperimentSetup

    def render(self) -> str:
        return format_mapping_series(
            self.curves,
            x_label="days to maintenance",
            title="Figure 5: E_MRE({d}) per single day d, best configs",
        )


def run_figure5(
    setup: ExperimentSetup | None = None,
    table2: Table2Result | None = None,
    days: tuple[int, ...] = DEFAULT_HORIZON,
) -> Figure5Result:
    """Evaluate each algorithm at its best window, day by day."""
    setup = setup or ExperimentSetup()
    if table2 is None:
        table2 = run_table2(setup)
    series = setup.old_series

    curves: dict[str, dict[int, float]] = {}
    for row in table2.rows:
        experiment = OldVehicleExperiment(
            OldVehicleConfig(
                window=row.best_window,
                restrict_to_horizon=row.algorithm != "BL",
                grid=setup.grid,
            )
        )
        fleet_result = experiment.run_fleet(series, row.algorithm)
        curves[row.algorithm] = fleet_result.error_by_day(days)
    return Figure5Result(curves=curves, setup=setup)
