"""Plain-text rendering of tables and figure series.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that output consistent and diff-able.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

__all__ = ["format_table", "format_series", "format_mapping_series"]


def _cell(value) -> str:
    if isinstance(value, float):
        if np.isnan(value):
            return "-"
        return f"{value:.1f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str | None = None,
) -> str:
    """Fixed-width text table with a header rule."""
    rendered = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"Row width {len(row)} != header width {len(headers)}."
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x: Sequence, y: Sequence[float], x_label: str, y_label: str
) -> str:
    """Two-column rendering of one figure series."""
    return format_table([x_label, y_label], list(zip(x, y)))


def format_mapping_series(
    series_by_name: Mapping[str, Mapping],
    x_label: str,
    title: str | None = None,
) -> str:
    """Multi-series rendering: one x column, one column per series.

    All inner mappings must share the same x keys.
    """
    names = list(series_by_name)
    if not names:
        raise ValueError("series_by_name must be non-empty.")
    xs = list(series_by_name[names[0]])
    for name in names[1:]:
        if list(series_by_name[name]) != xs:
            raise ValueError(
                f"Series {name!r} has different x values than {names[0]!r}."
            )
    rows = [[x] + [series_by_name[n][x] for n in names] for x in xs]
    return format_table([x_label] + names, rows, title=title)
