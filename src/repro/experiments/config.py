"""Shared experiment setup.

Every table/figure module takes an :class:`ExperimentSetup` so the whole
evaluation runs off one synthetic fleet and one seed.  ``fast=True``
(default) keeps grid sizes and vehicle counts at bench-friendly scale;
``fast=False`` runs the paper-scale protocol (24 vehicles, full grids).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from ..core.series import VehicleSeries
from ..fleet.generator import Fleet, FleetGenerator
from ..serving.executor import FleetExecutor

__all__ = ["ExperimentSetup"]


@dataclass(frozen=True)
class ExperimentSetup:
    """Configuration shared by all reproduction experiments.

    Attributes
    ----------
    seed:
        Master seed for fleet generation and vehicle splits.
    n_vehicles:
        Fleet size (paper: 24).
    t_v:
        Usage budget per maintenance cycle (paper: 2e6 s).
    fast:
        Bench-friendly mode: smaller grids, a vehicle subsample.
    n_old_vehicles:
        How many vehicles the old-vehicle experiments use; ``None``
        means all in slow mode / 8 in fast mode.
    max_workers:
        Parallel fan-out for the per-vehicle experiment runs; ``None``
        keeps the historical serial loop.  Results are identical either
        way (per-vehicle training is independent and seeded).
    executor_kind:
        ``"thread"`` (default) or ``"process"`` for the fan-out.
    """

    seed: int = 0
    n_vehicles: int = 24
    t_v: float = 2_000_000.0
    fast: bool = True
    n_old_vehicles: int | None = None
    max_workers: int | None = None
    executor_kind: str = "thread"

    @cached_property
    def fleet(self) -> Fleet:
        """The synthetic fleet (generated once per setup)."""
        return FleetGenerator(
            n_vehicles=self.n_vehicles, t_v=self.t_v, seed=self.seed
        ).generate()

    @cached_property
    def all_series(self) -> list[VehicleSeries]:
        return [VehicleSeries.from_vehicle(v) for v in self.fleet]

    @cached_property
    def old_series(self) -> list[VehicleSeries]:
        """Vehicles used by the old-vehicle experiments (Tables 1-2)."""
        limit = self.n_old_vehicles
        if limit is None:
            limit = 8 if self.fast else self.n_vehicles
        return self.all_series[:limit]

    @property
    def grid(self) -> str | None:
        """Grid-search mode forwarded to the registry."""
        return None if self.fast else "paper"

    @property
    def executor(self) -> FleetExecutor | None:
        """Per-vehicle fan-out executor (``None`` = serial loop)."""
        if self.max_workers is None:
            return None
        return FleetExecutor(
            max_workers=self.max_workers, kind=self.executor_kind
        )
