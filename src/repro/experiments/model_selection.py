"""Per-vehicle model selection (the deployment rule of Section 4.3).

"Among the trained models, we select those that minimize the mean
residual error over the last 29 days predicting the maintenance."  The
tables report per-algorithm fleet averages; this experiment reports what
the deployed system actually does — pick a winner per vehicle — and
quantifies what that selection buys over the best single fleet-wide
algorithm.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from ..core.old_vehicles import OldVehicleConfig, select_best_algorithm
from ..core.registry import PAPER_ALGORITHM_ORDER
from .config import ExperimentSetup
from .reporting import format_table

__all__ = ["ModelSelectionResult", "run_model_selection"]


@dataclass
class ModelSelectionResult:
    """Winner per vehicle plus the selection's fleet-level payoff."""

    winners: dict[str, str]  # vehicle_id -> algorithm
    per_vehicle_e_mre: dict[str, dict[str, float]]  # vid -> {alg: e_mre}
    setup: ExperimentSetup

    def winner_counts(self) -> dict[str, int]:
        return dict(Counter(self.winners.values()))

    def selected_e_mre(self) -> float:
        """Fleet E_MRE when every vehicle uses its selected model."""
        values = [
            self.per_vehicle_e_mre[vid][alg]
            for vid, alg in self.winners.items()
            if np.isfinite(self.per_vehicle_e_mre[vid][alg])
        ]
        return float(np.mean(values)) if values else float("nan")

    def single_algorithm_e_mre(self) -> dict[str, float]:
        """Fleet E_MRE per fixed algorithm (the tables' view)."""
        out: dict[str, float] = {}
        algorithms = next(iter(self.per_vehicle_e_mre.values())).keys()
        for algorithm in algorithms:
            values = [
                scores[algorithm]
                for scores in self.per_vehicle_e_mre.values()
                if np.isfinite(scores[algorithm])
            ]
            out[algorithm] = float(np.mean(values)) if values else float("nan")
        return out

    def render(self) -> str:
        rows = [
            (vid, self.winners[vid], self.per_vehicle_e_mre[vid][self.winners[vid]])
            for vid in sorted(self.winners)
        ]
        per_vehicle = format_table(
            ["vehicle", "selected model", "E_MRE({1..29})"],
            rows,
            title="Per-vehicle model selection (Section 4.3)",
        )
        fixed = self.single_algorithm_e_mre()
        summary_rows = [
            (f"fixed {alg}", value) for alg, value in sorted(fixed.items())
        ]
        summary_rows.append(("per-vehicle selection", self.selected_e_mre()))
        summary = format_table(
            ["policy", "fleet E_MRE"],
            summary_rows,
            title="Selection payoff",
        )
        return per_vehicle + "\n\n" + summary


def run_model_selection(
    setup: ExperimentSetup | None = None,
    algorithms: tuple[str, ...] = PAPER_ALGORITHM_ORDER,
    window: int = 6,
) -> ModelSelectionResult:
    """Run the per-vehicle selection over the old-vehicle subset."""
    setup = setup or ExperimentSetup()
    config = OldVehicleConfig(
        window=window, restrict_to_horizon=True, grid=setup.grid
    )
    winners: dict[str, str] = {}
    per_vehicle: dict[str, dict[str, float]] = {}
    for series in setup.old_series:
        best, results = select_best_algorithm(series, algorithms, config)
        winners[series.vehicle_id] = best
        per_vehicle[series.vehicle_id] = {
            algorithm: result.e_mre for algorithm, result in results.items()
        }
    return ModelSelectionResult(
        winners=winners, per_vehicle_e_mre=per_vehicle, setup=setup
    )
