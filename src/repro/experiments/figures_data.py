"""Data for Figures 1-3: the paper's exploratory plots (Section 3.1).

* **Figure 1** — daily utilization of two sample vehicles over ~90 days:
  a steady worker (20-30 k s/day with sporadic idle days) and a
  regime-switcher (idle for weeks, then suddenly active).
* **Figure 2** — the sawtooth target ``D_v(t)`` over many cycles.
* **Figure 3** — ``D_v(t)`` against ``L_v(t)`` within a single cycle:
  near-constant slope, with vertical steps at zero-usage runs.

Each function returns plain arrays so callers can print, test, or plot.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.series import VehicleSeries
from .config import ExperimentSetup

__all__ = [
    "FigureSeries",
    "figure1_data",
    "figure2_data",
    "figure3_data",
    "sample_vehicles",
]


@dataclass(frozen=True)
class FigureSeries:
    """One plotted series: (x, y) plus its vehicle label."""

    label: str
    x: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        if self.x.shape != self.y.shape:
            raise ValueError(
                f"x {self.x.shape} and y {self.y.shape} must align."
            )


def sample_vehicles(setup: ExperimentSetup) -> tuple[VehicleSeries, VehicleSeries]:
    """The two exploration vehicles: a steady worker and a regime-switcher.

    Archetypes are assigned round-robin by the generator, so vehicle 1 is
    a steady worker and vehicle 2 a regime-switcher — matching the
    paper's v1/v2 contrast.
    """
    series = setup.all_series
    if len(series) < 2:
        raise ValueError("Setup must generate at least 2 vehicles.")
    return series[0], series[1]


def figure1_data(
    setup: ExperimentSetup, n_days: int = 90
) -> list[FigureSeries]:
    """Daily utilization ``U_v(t)`` for the two sample vehicles."""
    if n_days < 1:
        raise ValueError(f"n_days must be >= 1, got {n_days}.")
    out = []
    for series in sample_vehicles(setup):
        days = min(n_days, series.n_days)
        out.append(
            FigureSeries(
                label=series.vehicle_id,
                x=np.arange(days, dtype=float),
                y=series.usage[:days].copy(),
            )
        )
    return out


def figure2_data(setup: ExperimentSetup) -> list[FigureSeries]:
    """Target ``D_v(t)`` over the full observation span (many cycles)."""
    out = []
    for series in sample_vehicles(setup):
        d = series.days_to_maintenance
        out.append(
            FigureSeries(
                label=series.vehicle_id,
                x=np.arange(series.n_days, dtype=float),
                y=d.copy(),
            )
        )
    return out


def figure3_data(
    setup: ExperimentSetup, cycle_index: int = 1
) -> list[FigureSeries]:
    """``L_v(t)`` vs ``D_v(t)`` within one completed cycle per vehicle.

    ``cycle_index`` selects which completed cycle (default: the second,
    to avoid the atypical first cycle, as the paper's Figure 3 ranges
    imply).
    """
    out = []
    for series in sample_vehicles(setup):
        completed = series.completed_cycles
        if cycle_index >= len(completed):
            raise ValueError(
                f"Vehicle {series.vehicle_id!r} has only {len(completed)} "
                f"completed cycles; cannot take index {cycle_index}."
            )
        cycle = completed[cycle_index]
        days = np.arange(cycle.start, cycle.end + 1)
        out.append(
            FigureSeries(
                label=series.vehicle_id,
                x=series.usage_left[days].copy(),
                y=series.days_to_maintenance[days].copy(),
            )
        )
    return out
