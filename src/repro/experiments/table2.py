"""Table 2: best window per algorithm and the resulting E_MRE.

Reproduces: "Best setting for features and the corresponding mean
relative error of the different algorithms" — paper values BL (W=0,
20.2), LR (0, 10.8), LSVR (6, 5.2), RF (18, 1.3), XGB (12, 4.2).  Built
directly from the Figure-4 sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import ExperimentSetup
from .figure4 import Figure4Result, run_figure4
from .reporting import format_table

__all__ = ["Table2Row", "Table2Result", "run_table2"]


@dataclass(frozen=True)
class Table2Row:
    algorithm: str
    best_window: int
    e_mre: float


@dataclass
class Table2Result:
    rows: list[Table2Row]
    setup: ExperimentSetup

    def row(self, algorithm: str) -> Table2Row:
        for row in self.rows:
            if row.algorithm == algorithm:
                return row
        raise KeyError(f"No Table-2 row for {algorithm!r}.")

    def render(self) -> str:
        return format_table(
            ["Algorithm", "Best window W", "E_MRE({1..29})"],
            [(r.algorithm, r.best_window, r.e_mre) for r in self.rows],
            title="Table 2: best feature window per algorithm",
        )


def run_table2(
    setup: ExperimentSetup | None = None,
    figure4: Figure4Result | None = None,
) -> Table2Result:
    """Derive Table 2 from a Figure-4 sweep (running it if needed)."""
    setup = setup or ExperimentSetup()
    if figure4 is None:
        figure4 = run_figure4(setup)
    rows = []
    for algorithm, curve in figure4.e_mre.items():
        best = figure4.best_window(algorithm)
        rows.append(
            Table2Row(
                algorithm=algorithm,
                best_window=best,
                e_mre=float(curve[best]),
            )
        )
    return Table2Result(rows=rows, setup=setup)
