"""Figure 4: performance vs feature-window size ``W``.

Reproduces: "Improvement (%) for each algorithm by increasing the number
of features.  W is the window of past usage in the time series U_v(t)."
Positive improvement means a lower ``E_MRE`` than the same algorithm's
Table-1 restricted entry (its ``W = 0`` configuration).  The paper found
RF (+44 %) and XGB (+25 %) improving strongly and plateauing past ~15
lags, LSVR peaking around ``W = 6``, LR best without lags, and BL flat
by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.old_vehicles import OldVehicleConfig, OldVehicleExperiment
from ..core.registry import PAPER_ALGORITHM_ORDER
from .config import ExperimentSetup
from .reporting import format_mapping_series

__all__ = ["Figure4Result", "run_figure4", "DEFAULT_WINDOWS"]

DEFAULT_WINDOWS: tuple[int, ...] = (0, 3, 6, 9, 12, 15, 18)


@dataclass
class Figure4Result:
    """Per-algorithm E_MRE and improvement curves over ``W``."""

    e_mre: dict[str, dict[int, float]]  # algorithm -> {W: E_MRE}
    setup: ExperimentSetup

    @property
    def windows(self) -> list[int]:
        first = next(iter(self.e_mre.values()))
        return list(first)

    def improvement(self) -> dict[str, dict[int, float]]:
        """Improvement (%) of each ``W`` over the algorithm's ``W = 0``."""
        out: dict[str, dict[int, float]] = {}
        for algorithm, curve in self.e_mre.items():
            base = curve[0]
            out[algorithm] = {
                w: (100.0 * (1.0 - value / base) if base > 0 else 0.0)
                for w, value in curve.items()
            }
        return out

    def best_window(self, algorithm: str) -> int:
        """The ``W`` minimizing the algorithm's E_MRE (Table 2 input)."""
        curve = self.e_mre[algorithm]
        return min(curve, key=lambda w: (curve[w], w))

    def render(self) -> str:
        return format_mapping_series(
            self.improvement(),
            x_label="W",
            title="Figure 4: improvement (%) vs window size W",
        )


def run_figure4(
    setup: ExperimentSetup | None = None,
    algorithms: tuple[str, ...] = PAPER_ALGORITHM_ORDER,
    windows: tuple[int, ...] = DEFAULT_WINDOWS,
) -> Figure4Result:
    """Sweep ``W`` for every algorithm under last-29-days training.

    BL ignores lag features, so it is evaluated once and replicated flat
    across the sweep ("BL is obviously constant"), saving its cost.
    """
    setup = setup or ExperimentSetup()
    if 0 not in windows:
        raise ValueError("windows must include 0 (the improvement anchor).")
    series = setup.old_series
    executor = setup.executor

    curves: dict[str, dict[int, float]] = {}
    for algorithm in algorithms:
        curve: dict[int, float] = {}
        if algorithm == "BL":
            experiment = OldVehicleExperiment(
                OldVehicleConfig(window=0, restrict_to_horizon=True)
            )
            value = experiment.run_fleet(series, algorithm, executor).e_mre
            curve = {w: float(value) for w in windows}
        else:
            for window in windows:
                experiment = OldVehicleExperiment(
                    OldVehicleConfig(
                        window=window,
                        restrict_to_horizon=True,
                        grid=setup.grid,
                    )
                )
                curve[window] = float(
                    experiment.run_fleet(series, algorithm, executor).e_mre
                )
        curves[algorithm] = curve
    return Figure4Result(e_mre=curves, setup=setup)
