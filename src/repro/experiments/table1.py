"""Table 1: effect of restricting training records to the last 29 days.

Reproduces: "E_MRE({1,...,29}) with models trained on all data and models
trained in the last 29 days before maintenance".  The paper found the
restriction cut the ML models' error by 48-65 % while leaving the
untrained baseline unchanged, with RF best, XGB second, LSVR close.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.old_vehicles import OldVehicleConfig, OldVehicleExperiment
from ..core.registry import PAPER_ALGORITHM_ORDER
from .config import ExperimentSetup
from .reporting import format_table

__all__ = ["Table1Row", "Table1Result", "run_table1"]


@dataclass(frozen=True)
class Table1Row:
    """One algorithm's Table-1 entry."""

    algorithm: str
    e_mre_all_data: float
    e_mre_restricted: float

    @property
    def reduction_pct(self) -> float:
        """Relative error reduction from the training restriction."""
        if self.e_mre_all_data == 0:
            return 0.0
        return 100.0 * (1.0 - self.e_mre_restricted / self.e_mre_all_data)


@dataclass
class Table1Result:
    """All rows plus the setup that produced them."""

    rows: list[Table1Row]
    setup: ExperimentSetup

    def row(self, algorithm: str) -> Table1Row:
        for row in self.rows:
            if row.algorithm == algorithm:
                return row
        raise KeyError(f"No Table-1 row for {algorithm!r}.")

    def render(self) -> str:
        return format_table(
            ["Algorithm", "Trained on all data", "Trained on D={1..29}",
             "Reduction %"],
            [
                (r.algorithm, r.e_mre_all_data, r.e_mre_restricted,
                 r.reduction_pct)
                for r in self.rows
            ],
            title="Table 1: E_MRE({1..29}), all-data vs last-29-days training",
        )


def run_table1(
    setup: ExperimentSetup | None = None,
    algorithms: tuple[str, ...] = PAPER_ALGORITHM_ORDER,
    window: int = 0,
) -> Table1Result:
    """Run both training regimes for every algorithm.

    ``window=0`` matches Table 1's setting (feature study comes later,
    in Figure 4).
    """
    setup = setup or ExperimentSetup()
    series = setup.old_series

    all_data = OldVehicleExperiment(
        OldVehicleConfig(window=window, grid=setup.grid)
    )
    restricted = OldVehicleExperiment(
        OldVehicleConfig(
            window=window, grid=setup.grid, restrict_to_horizon=True
        )
    )

    executor = setup.executor
    rows = []
    for algorithm in algorithms:
        e_all = all_data.run_fleet(series, algorithm, executor).e_mre
        if algorithm == "BL":
            # "Since BL is not trained, its results do not change."
            e_restricted = e_all
        else:
            e_restricted = restricted.run_fleet(
                series, algorithm, executor
            ).e_mre
        rows.append(
            Table1Row(
                algorithm=algorithm,
                e_mre_all_data=float(e_all),
                e_mre_restricted=float(e_restricted),
            )
        )
    return Table1Result(rows=rows, setup=setup)
