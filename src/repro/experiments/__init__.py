"""Experiment harness: one module per table/figure of the paper.

Every experiment takes an :class:`~repro.experiments.config.ExperimentSetup`
and returns a result object with a ``render()`` method printing the same
rows/series the paper reports.  The ``benchmarks/`` directory wires each
of these into pytest-benchmark.
"""

from .config import ExperimentSetup
from .figure4 import DEFAULT_WINDOWS, Figure4Result, run_figure4
from .figure5 import Figure5Result, run_figure5
from .figures_data import (
    FigureSeries,
    figure1_data,
    figure2_data,
    figure3_data,
    sample_vehicles,
)
from .model_selection import ModelSelectionResult, run_model_selection
from .reporting import format_mapping_series, format_series, format_table
from .table1 import Table1Result, Table1Row, run_table1
from .table2 import Table2Result, Table2Row, run_table2
from .table3 import TABLE3_ALGORITHMS, Table3Result, run_table3
from .timing import TimingResult, run_timing

__all__ = [
    "ExperimentSetup",
    "DEFAULT_WINDOWS",
    "Figure4Result",
    "run_figure4",
    "Figure5Result",
    "run_figure5",
    "FigureSeries",
    "figure1_data",
    "figure2_data",
    "figure3_data",
    "sample_vehicles",
    "ModelSelectionResult",
    "run_model_selection",
    "format_mapping_series",
    "format_series",
    "format_table",
    "Table1Result",
    "Table1Row",
    "run_table1",
    "Table2Result",
    "Table2Row",
    "run_table2",
    "TABLE3_ALGORITHMS",
    "Table3Result",
    "run_table3",
    "TimingResult",
    "run_timing",
]
