"""Algorithm registry: the model zoo of Section 4.2.

Maps the paper's algorithm keys (BL, LR, LSVR, RF, XGB) to estimator
factories and hyper-parameter grids.  Two grids per algorithm:

* ``paper_grid`` — the ranges reported in Section 5 ("for RF and XGB we
  have tuned the maximum tree depth from 3 to 50, and the number of
  estimators from 10 to 1000.  For SVR, we tested the linear kernel and
  varied the values of the parameters epsilon (from 0.5 to 2.5) and C
  (from 0.01 to 100)");
* ``fast_grid`` — a small subset for tests and quick benchmark runs.

"Additional models can be straightforwardly added and tested" — call
:func:`register_algorithm` with your own spec.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from ..learn.boosting import HistGradientBoostingRegressor
from ..learn.forest import RandomForestRegressor
from ..learn.linear import LinearRegression
from ..learn.neural import MLPRegressor
from ..learn.pipeline import Pipeline
from ..learn.preprocessing import StandardScaler
from ..learn.svm import LinearSVR
from .predictors import BaselinePredictor, RegressionPredictor

__all__ = [
    "AlgorithmSpec",
    "ALGORITHMS",
    "PAPER_ALGORITHM_ORDER",
    "register_algorithm",
    "get_algorithm",
    "make_predictor",
]


@dataclass(frozen=True)
class AlgorithmSpec:
    """Everything needed to instantiate one algorithm of the study."""

    key: str
    display_name: str
    factory: Callable
    is_baseline: bool = False
    paper_grid: dict = field(default_factory=dict)
    fast_grid: dict = field(default_factory=dict)
    default_params: dict = field(default_factory=dict)

    def grid(self, which: str | None) -> dict | None:
        """Resolve a grid choice: ``"paper"``, ``"fast"`` or ``None``."""
        if which is None:
            return None
        if which == "paper":
            return self.paper_grid or None
        if which == "fast":
            return self.fast_grid or None
        raise ValueError(
            f"Unknown grid {which!r}; choose 'paper', 'fast' or None."
        )


def _bl_spec() -> AlgorithmSpec:
    return AlgorithmSpec(
        key="BL",
        display_name="Baseline (average utilization)",
        factory=BaselinePredictor,
        is_baseline=True,
    )


def _lr_spec() -> AlgorithmSpec:
    return AlgorithmSpec(
        key="LR",
        display_name="Linear Regression",
        factory=LinearRegression,
    )


def _scaled_lsvr(epsilon: float = 1.5, C: float = 1.0) -> Pipeline:
    """LSVR behind a standardizer.

    Feature magnitudes span ~5 orders (L in units of 1e6 s, lags in 1e4 s);
    without the Section-3 normalization step the margin geometry is
    dominated by L and the regularizer is meaningless.
    """
    return Pipeline(
        [
            ("scaler", StandardScaler()),
            ("svr", LinearSVR(epsilon=epsilon, C=C)),
        ]
    )


def _lsvr_spec() -> AlgorithmSpec:
    return AlgorithmSpec(
        key="LSVR",
        display_name="Linear Support Vector Regressor",
        factory=_scaled_lsvr,
        paper_grid={
            "svr__epsilon": [0.5, 1.0, 1.5, 2.0, 2.5],
            "svr__C": [0.01, 0.1, 1.0, 10.0, 100.0],
        },
        fast_grid={"svr__epsilon": [0.5, 2.5], "svr__C": [0.1, 10.0]},
    )


def _rf_spec() -> AlgorithmSpec:
    return AlgorithmSpec(
        key="RF",
        display_name="Random Forest regressor",
        factory=RandomForestRegressor,
        default_params={
            "n_estimators": 60,
            "max_depth": 15,
            "random_state": 0,
        },
        paper_grid={
            "max_depth": [3, 5, 10, 20, 35, 50],
            "n_estimators": [10, 50, 100, 300, 1000],
        },
        fast_grid={"max_depth": [5, 15], "n_estimators": [30]},
    )


def _xgb_spec() -> AlgorithmSpec:
    return AlgorithmSpec(
        key="XGB",
        display_name="Histogram-based gradient boosting",
        factory=HistGradientBoostingRegressor,
        default_params={
            "max_iter": 120,
            "max_depth": 6,
            "learning_rate": 0.1,
            "random_state": 0,
        },
        paper_grid={
            "max_depth": [3, 5, 10, 20, 35, 50],
            "max_iter": [10, 50, 100, 300, 1000],
        },
        fast_grid={"max_depth": [3, 6], "max_iter": [60]},
    )


def _mlp_spec() -> AlgorithmSpec:
    """The neural model the paper deferred to future releases.

    "Some models (e.g., Neural Networks) have not been included in this
    first release due to the lack of a sufficiently large amount of
    training data" (Section 4.2) — it is registered here as an optional
    extension, outside :data:`PAPER_ALGORITHM_ORDER`.
    """
    return AlgorithmSpec(
        key="MLP",
        display_name="Multi-layer perceptron",
        factory=MLPRegressor,
        default_params={
            "hidden_layer_sizes": (32, 16),
            "max_iter": 150,
            "random_state": 0,
        },
        paper_grid={
            "hidden_layer_sizes": [(16,), (32, 16), (64, 32)],
            "learning_rate": [1e-3, 1e-2],
        },
        fast_grid={"hidden_layer_sizes": [(16,), (32, 16)]},
    )


ALGORITHMS: dict[str, AlgorithmSpec] = {
    spec.key: spec
    for spec in (
        _bl_spec(),
        _lr_spec(),
        _lsvr_spec(),
        _rf_spec(),
        _xgb_spec(),
        _mlp_spec(),
    )
}

#: Row order used by every table of the paper (MLP is an extension and
#: deliberately not part of the paper's row set).
PAPER_ALGORITHM_ORDER: tuple[str, ...] = ("BL", "LR", "LSVR", "RF", "XGB")


def register_algorithm(spec: AlgorithmSpec, *, overwrite: bool = False) -> None:
    """Add a custom algorithm to the registry.

    The deployed system's extension point: "Additional models can be
    straightforwardly added and tested" (Section 4.2).
    """
    if spec.key in ALGORITHMS and not overwrite:
        raise ValueError(
            f"Algorithm {spec.key!r} already registered; pass "
            "overwrite=True to replace it."
        )
    ALGORITHMS[spec.key] = spec


def get_algorithm(key: str) -> AlgorithmSpec:
    try:
        return ALGORITHMS[key]
    except KeyError:
        raise KeyError(
            f"Unknown algorithm {key!r}; registered: {sorted(ALGORITHMS)}."
        ) from None


def make_predictor(key: str, *, grid: str | None = None, cv_splits: int = 5):
    """Instantiate a fresh predictor for an algorithm key.

    Parameters
    ----------
    key:
        ``"BL"``, ``"LR"``, ``"LSVR"``, ``"RF"``, ``"XGB"`` or a custom
        registered key.
    grid:
        ``None`` (default hyper-parameters), ``"fast"`` or ``"paper"``
        (grid-searched at fit time, Section 5's protocol).
    cv_splits:
        Folds for grid search.
    """
    spec = get_algorithm(key)
    if spec.is_baseline:
        return spec.factory()
    estimator = spec.factory(**spec.default_params)
    return RegressionPredictor(
        name=spec.key,
        estimator=estimator,
        param_grid=spec.grid(grid),
        cv_splits=cv_splits,
    )
