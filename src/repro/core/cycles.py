"""Maintenance-cycle segmentation and the derived series of Section 2.

A *cycle* is "the period from one maintenance operation to the next one".
Maintenance is due once cumulative utilization since the last maintenance
reaches the allowed budget ``T_v`` ("After a fixed time amount of usage
(we have considered T_v = 2 000 000 seconds), every vehicle needs to go
under maintenance").

Given a daily utilization series ``U_v(t)`` this module derives the three
series that drive the prediction problem:

* ``C_v(t)`` — days already passed since the last maintenance;
* ``L_v(t)`` — utilization seconds left before the next maintenance at
  the *start* of day ``t`` (Eq. 1);
* ``D_v(t)`` — the target: days left until the next maintenance (0 on
  the day the budget is exhausted; NaN inside an incomplete final cycle,
  where the ground truth is not yet known).

The segmentation accepts an arbitrary accumulation start day, which is
what the paper's time-shift re-sampling augmentation exploits ("we can
shift the time reference, i.e., changing the first starting day t = 0,
without introducing errors").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Cycle",
    "SeriesBundle",
    "segment_cycles",
    "derive_series",
    "IncrementalSeriesState",
]


@dataclass(frozen=True)
class Cycle:
    """One maintenance cycle.

    Attributes
    ----------
    start:
        First day index of the cycle.
    end:
        Last day index (inclusive).  For a completed cycle this is the
        day the usage budget was exhausted (the maintenance day); for
        the trailing incomplete cycle it is the last observed day.
    completed:
        Whether the budget was exhausted within the observed data.
    total_usage:
        Seconds of utilization accumulated over the cycle's days.
    """

    start: int
    end: int
    completed: bool
    total_usage: float

    @property
    def n_days(self) -> int:
        """Cycle length in days (inclusive of both endpoints)."""
        return self.end - self.start + 1


def _validate_usage(usage) -> np.ndarray:
    usage = np.asarray(usage, dtype=np.float64)
    if usage.ndim != 1:
        raise ValueError(f"usage must be 1-D, got shape {usage.shape}.")
    if not np.isfinite(usage).all():
        raise ValueError(
            "usage contains NaN/inf; run repro.dataprep.cleaning first."
        )
    if usage.size and usage.min() < 0:
        raise ValueError("usage must be non-negative.")
    return usage


def segment_cycles(usage, t_v: float, start: int = 0) -> list[Cycle]:
    """Split a utilization series into maintenance cycles.

    Parameters
    ----------
    usage:
        Daily utilization seconds, 1-D.
    t_v:
        Usage budget per cycle, seconds.
    start:
        Day index where budget accumulation begins (days before ``start``
        belong to no cycle).  This is the shifted time reference of the
        augmentation strategy in Section 4.

    Returns
    -------
    list of :class:`Cycle`, in chronological order.  The last cycle has
    ``completed=False`` if the data ends before its budget is exhausted;
    a trailing cycle is only emitted if at least one day belongs to it.
    """
    usage = _validate_usage(usage)
    if t_v <= 0:
        raise ValueError(f"t_v must be positive, got {t_v}.")
    n = usage.size
    if not 0 <= start <= n:
        raise ValueError(f"start={start} outside [0, {n}].")

    cycles: list[Cycle] = []
    cycle_start = start
    accumulated = 0.0
    for day in range(start, n):
        accumulated += usage[day]
        if accumulated >= t_v:
            cycles.append(
                Cycle(
                    start=cycle_start,
                    end=day,
                    completed=True,
                    total_usage=accumulated,
                )
            )
            cycle_start = day + 1
            accumulated = 0.0
    if cycle_start < n:
        cycles.append(
            Cycle(
                start=cycle_start,
                end=n - 1,
                completed=False,
                total_usage=accumulated,
            )
        )
    return cycles


@dataclass(frozen=True)
class SeriesBundle:
    """The derived series ``C``, ``L``, ``D`` aligned with ``usage``.

    Days outside any cycle (before the accumulation start) hold NaN in
    all three arrays; days inside the trailing incomplete cycle hold NaN
    in ``D`` only (the label does not exist yet) but valid ``C``/``L``.
    """

    usage: np.ndarray
    t_v: float
    start: int
    cycles: tuple[Cycle, ...]
    days_since_maintenance: np.ndarray  # C_v(t)
    usage_left: np.ndarray  # L_v(t)
    days_to_maintenance: np.ndarray  # D_v(t)

    @property
    def n_days(self) -> int:
        return int(self.usage.size)

    @property
    def completed_cycles(self) -> tuple[Cycle, ...]:
        return tuple(c for c in self.cycles if c.completed)

    @property
    def labeled_mask(self) -> np.ndarray:
        """Boolean mask of days with a defined target ``D_v(t)``."""
        return np.isfinite(self.days_to_maintenance)


def derive_series(usage, t_v: float, start: int = 0) -> SeriesBundle:
    """Compute ``C_v``, ``L_v`` (Eq. 1) and the target ``D_v``.

    ``L_v(t)`` is the budget minus usage accumulated on days *before*
    ``t`` within the current cycle, exactly Eq. 1 of the paper:
    ``L_v(t) = T_v - sum_{i=t-C_v(t)}^{t-1} U_v(i)``.
    """
    usage = _validate_usage(usage)
    cycles = segment_cycles(usage, t_v, start=start)
    n = usage.size
    c_series = np.full(n, np.nan)
    l_series = np.full(n, np.nan)
    d_series = np.full(n, np.nan)

    for cycle in cycles:
        days = np.arange(cycle.start, cycle.end + 1)
        c_series[days] = days - cycle.start
        cumulative_before = np.concatenate(
            [[0.0], np.cumsum(usage[cycle.start : cycle.end])]
        )
        l_series[days] = t_v - cumulative_before
        if cycle.completed:
            d_series[days] = cycle.end - days

    return SeriesBundle(
        usage=usage,
        t_v=float(t_v),
        start=start,
        cycles=tuple(cycles),
        days_since_maintenance=c_series,
        usage_left=l_series,
        days_to_maintenance=d_series,
    )


class IncrementalSeriesState:
    """Incremental counterpart of :func:`derive_series`.

    Appending one day of utilization updates ``C``, ``L`` and the open
    cycle in O(1) (amortized); completing a cycle back-fills that
    cycle's ``D`` labels, which is O(cycle length) exactly once per
    cycle — so ingesting an ``n``-day history costs O(n) total instead
    of the O(n^2) of re-deriving from scratch after every day.

    The arithmetic mirrors the batch path operation-for-operation (the
    same sequential accumulation order), so :meth:`bundle` is
    bit-identical to ``derive_series(usage, t_v, start)`` on the same
    history — the property suite pins this equivalence exactly.
    """

    def __init__(self, t_v: float, start: int = 0):
        if t_v <= 0:
            raise ValueError(f"t_v must be positive, got {t_v}.")
        if start < 0:
            raise ValueError(f"start must be >= 0, got {start}.")
        self.t_v = float(t_v)
        self.start = int(start)
        self._n = 0
        self._usage = np.empty(16, dtype=np.float64)
        self._c = np.empty(16, dtype=np.float64)
        self._l = np.empty(16, dtype=np.float64)
        self._d = np.empty(16, dtype=np.float64)
        self._completed: list[Cycle] = []
        self._cycle_start = self.start
        self._accumulated = 0.0

    @classmethod
    def from_usage(cls, usage, t_v: float, start: int = 0) -> "IncrementalSeriesState":
        """Build the state from an existing history in one pass."""
        usage = _validate_usage(usage)
        if start > usage.size:
            raise ValueError(f"start={start} outside [0, {usage.size}].")
        state = cls(t_v, start=start)
        state.extend(usage)
        return state

    @property
    def n_days(self) -> int:
        return self._n

    @property
    def completed_cycles(self) -> tuple[Cycle, ...]:
        return tuple(self._completed)

    @property
    def usage(self) -> np.ndarray:
        """The observed utilization series (read-only view)."""
        return self._usage[: self._n]

    def _grow(self) -> None:
        if self._n < self._usage.size:
            return
        capacity = max(16, 2 * self._usage.size)
        for name in ("_usage", "_c", "_l", "_d"):
            fresh = np.empty(capacity, dtype=np.float64)
            fresh[: self._n] = getattr(self, name)[: self._n]
            setattr(self, name, fresh)

    def append(self, value: float) -> None:
        """Ingest one day of utilization."""
        value = float(value)
        if not np.isfinite(value) or value < 0:
            raise ValueError(
                f"usage must be finite and non-negative, got {value}."
            )
        self._grow()
        day = self._n
        if day < self.start:
            self._c[day] = np.nan
            self._l[day] = np.nan
            self._d[day] = np.nan
        else:
            self._c[day] = day - self._cycle_start
            self._l[day] = self.t_v - self._accumulated
            self._d[day] = np.nan
            self._accumulated += value
            if self._accumulated >= self.t_v:
                self._completed.append(
                    Cycle(
                        start=self._cycle_start,
                        end=day,
                        completed=True,
                        total_usage=self._accumulated,
                    )
                )
                days = np.arange(self._cycle_start, day + 1)
                self._d[days] = day - days
                self._cycle_start = day + 1
                self._accumulated = 0.0
        self._usage[day] = value
        self._n += 1

    def extend(self, usage) -> None:
        """Ingest several days in order."""
        for value in np.asarray(usage, dtype=np.float64):
            self.append(value)

    def bundle(self) -> SeriesBundle:
        """Snapshot of the derived series as of the latest appended day.

        ``usage``/``C``/``L`` are zero-copy views (their past entries are
        never rewritten); ``D`` is copied because a later cycle
        completion back-fills labels inside the currently open cycle.
        """
        n = self._n
        cycles = list(self._completed)
        if self._cycle_start < n:
            cycles.append(
                Cycle(
                    start=self._cycle_start,
                    end=n - 1,
                    completed=False,
                    total_usage=self._accumulated,
                )
            )
        return SeriesBundle(
            usage=self._usage[:n],
            t_v=self.t_v,
            start=self.start,
            cycles=tuple(cycles),
            days_since_maintenance=self._c[:n],
            usage_left=self._l[:n],
            days_to_maintenance=self._d[:n].copy(),
        )
