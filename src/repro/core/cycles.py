"""Maintenance-cycle segmentation and the derived series of Section 2.

A *cycle* is "the period from one maintenance operation to the next one".
Maintenance is due once cumulative utilization since the last maintenance
reaches the allowed budget ``T_v`` ("After a fixed time amount of usage
(we have considered T_v = 2 000 000 seconds), every vehicle needs to go
under maintenance").

Given a daily utilization series ``U_v(t)`` this module derives the three
series that drive the prediction problem:

* ``C_v(t)`` — days already passed since the last maintenance;
* ``L_v(t)`` — utilization seconds left before the next maintenance at
  the *start* of day ``t`` (Eq. 1);
* ``D_v(t)`` — the target: days left until the next maintenance (0 on
  the day the budget is exhausted; NaN inside an incomplete final cycle,
  where the ground truth is not yet known).

The segmentation accepts an arbitrary accumulation start day, which is
what the paper's time-shift re-sampling augmentation exploits ("we can
shift the time reference, i.e., changing the first starting day t = 0,
without introducing errors").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Cycle", "SeriesBundle", "segment_cycles", "derive_series"]


@dataclass(frozen=True)
class Cycle:
    """One maintenance cycle.

    Attributes
    ----------
    start:
        First day index of the cycle.
    end:
        Last day index (inclusive).  For a completed cycle this is the
        day the usage budget was exhausted (the maintenance day); for
        the trailing incomplete cycle it is the last observed day.
    completed:
        Whether the budget was exhausted within the observed data.
    total_usage:
        Seconds of utilization accumulated over the cycle's days.
    """

    start: int
    end: int
    completed: bool
    total_usage: float

    @property
    def n_days(self) -> int:
        """Cycle length in days (inclusive of both endpoints)."""
        return self.end - self.start + 1


def _validate_usage(usage) -> np.ndarray:
    usage = np.asarray(usage, dtype=np.float64)
    if usage.ndim != 1:
        raise ValueError(f"usage must be 1-D, got shape {usage.shape}.")
    if not np.isfinite(usage).all():
        raise ValueError(
            "usage contains NaN/inf; run repro.dataprep.cleaning first."
        )
    if usage.size and usage.min() < 0:
        raise ValueError("usage must be non-negative.")
    return usage


def segment_cycles(usage, t_v: float, start: int = 0) -> list[Cycle]:
    """Split a utilization series into maintenance cycles.

    Parameters
    ----------
    usage:
        Daily utilization seconds, 1-D.
    t_v:
        Usage budget per cycle, seconds.
    start:
        Day index where budget accumulation begins (days before ``start``
        belong to no cycle).  This is the shifted time reference of the
        augmentation strategy in Section 4.

    Returns
    -------
    list of :class:`Cycle`, in chronological order.  The last cycle has
    ``completed=False`` if the data ends before its budget is exhausted;
    a trailing cycle is only emitted if at least one day belongs to it.
    """
    usage = _validate_usage(usage)
    if t_v <= 0:
        raise ValueError(f"t_v must be positive, got {t_v}.")
    n = usage.size
    if not 0 <= start <= n:
        raise ValueError(f"start={start} outside [0, {n}].")

    cycles: list[Cycle] = []
    cycle_start = start
    accumulated = 0.0
    for day in range(start, n):
        accumulated += usage[day]
        if accumulated >= t_v:
            cycles.append(
                Cycle(
                    start=cycle_start,
                    end=day,
                    completed=True,
                    total_usage=accumulated,
                )
            )
            cycle_start = day + 1
            accumulated = 0.0
    if cycle_start < n:
        cycles.append(
            Cycle(
                start=cycle_start,
                end=n - 1,
                completed=False,
                total_usage=accumulated,
            )
        )
    return cycles


@dataclass(frozen=True)
class SeriesBundle:
    """The derived series ``C``, ``L``, ``D`` aligned with ``usage``.

    Days outside any cycle (before the accumulation start) hold NaN in
    all three arrays; days inside the trailing incomplete cycle hold NaN
    in ``D`` only (the label does not exist yet) but valid ``C``/``L``.
    """

    usage: np.ndarray
    t_v: float
    start: int
    cycles: tuple[Cycle, ...]
    days_since_maintenance: np.ndarray  # C_v(t)
    usage_left: np.ndarray  # L_v(t)
    days_to_maintenance: np.ndarray  # D_v(t)

    @property
    def n_days(self) -> int:
        return int(self.usage.size)

    @property
    def completed_cycles(self) -> tuple[Cycle, ...]:
        return tuple(c for c in self.cycles if c.completed)

    @property
    def labeled_mask(self) -> np.ndarray:
        """Boolean mask of days with a defined target ``D_v(t)``."""
        return np.isfinite(self.days_to_maintenance)


def derive_series(usage, t_v: float, start: int = 0) -> SeriesBundle:
    """Compute ``C_v``, ``L_v`` (Eq. 1) and the target ``D_v``.

    ``L_v(t)`` is the budget minus usage accumulated on days *before*
    ``t`` within the current cycle, exactly Eq. 1 of the paper:
    ``L_v(t) = T_v - sum_{i=t-C_v(t)}^{t-1} U_v(i)``.
    """
    usage = _validate_usage(usage)
    cycles = segment_cycles(usage, t_v, start=start)
    n = usage.size
    c_series = np.full(n, np.nan)
    l_series = np.full(n, np.nan)
    d_series = np.full(n, np.nan)

    for cycle in cycles:
        days = np.arange(cycle.start, cycle.end + 1)
        c_series[days] = days - cycle.start
        cumulative_before = np.concatenate(
            [[0.0], np.cumsum(usage[cycle.start : cycle.end])]
        )
        l_series[days] = t_v - cumulative_before
        if cycle.completed:
            d_series[days] = cycle.end - days

    return SeriesBundle(
        usage=usage,
        t_v=float(t_v),
        start=start,
        cycles=tuple(cycles),
        days_since_maintenance=c_series,
        usage_left=l_series,
        days_to_maintenance=d_series,
    )
