"""Vehicle categorization by available history (Section 2).

"(i) Old: If at least one maintenance cycle has already been completed
since data acquisition has started. (ii) Semi-new: If the first
maintenance cycle has not been completed yet, but data about at least
half of the usage in one cycle (T_v/2) is already available. (iii) New:
If the vehicle has been used for less than T_v/2 seconds since the
beginning of the data acquisition phase."
"""

from __future__ import annotations

import enum

import numpy as np

from .series import VehicleSeries

__all__ = ["VehicleCategory", "categorize", "categorize_usage"]


class VehicleCategory(enum.Enum):
    """History-based vehicle class driving methodology selection."""

    OLD = "old"
    SEMI_NEW = "semi-new"
    NEW = "new"


def categorize_usage(usage, t_v: float) -> VehicleCategory:
    """Categorize from a raw utilization array and budget ``t_v``."""
    usage = np.asarray(usage, dtype=np.float64)
    if t_v <= 0:
        raise ValueError(f"t_v must be positive, got {t_v}.")
    if usage.size and not np.isfinite(usage).all():
        raise ValueError("usage contains NaN/inf; clean the data first.")
    total = float(usage.sum()) if usage.size else 0.0
    if total >= t_v:
        return VehicleCategory.OLD
    if total >= t_v / 2.0:
        return VehicleCategory.SEMI_NEW
    return VehicleCategory.NEW


def categorize(
    series: VehicleSeries, as_of_day: int | None = None
) -> VehicleCategory:
    """Categorize a vehicle, optionally as of an earlier day.

    Parameters
    ----------
    series:
        The vehicle's series.
    as_of_day:
        If given, only days ``< as_of_day`` count as observed history —
        this answers "what category was this vehicle on that date?".
    """
    usage = series.usage
    if as_of_day is not None:
        if not 0 <= as_of_day <= series.n_days:
            raise ValueError(
                f"as_of_day={as_of_day} outside [0, {series.n_days}]."
            )
        usage = usage[:as_of_day]
    return categorize_usage(usage, series.t_v)
