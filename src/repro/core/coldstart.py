"""Methodology for new and semi-new vehicles (Section 4.4).

Vehicles without a completed maintenance cycle cannot get a per-vehicle
model.  The paper's remedies, both trained on *first-cycle* data of old
("training") vehicles because "the first maintenance cycle of most
vehicles appears to have peculiar characteristics, with less usage":

* **Model_Uni** — one model over the merged first cycles of the
  training vehicles; the only option for *new* vehicles.
* **Model_Sim** — per test vehicle, train only on the first cycle of
  the most similar training vehicle, where similarity compares the
  utilization series of the *first half* of the first cycle (the data a
  semi-new vehicle has, by definition).
* **Baseline** — ``AVG_v`` computed from the test vehicle's own first
  half of the first cycle (only possible for semi-new vehicles).

Evaluation follows Section 5.2 / Table 3: semi-new vehicles are scored
with ``E_MRE({1..29})`` on the second half of their first cycle; new
vehicles with ``E_Global`` on the first half (near the deadline a
vehicle is no longer new), and only ``Model_Uni`` applies.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

import numpy as np

from ..dataprep.transformation import (
    RelationalDataset,
    build_relational_dataset,
)
from ..similarity.measures import most_similar
from .errors import DEFAULT_HORIZON, global_error, mean_residual_error
from .predictors import BaselinePredictor
from .registry import make_predictor
from .series import VehicleSeries

__all__ = [
    "ColdStartConfig",
    "ColdStartResult",
    "ColdStartExperiment",
    "first_cycle_dataset",
    "half_cycle_day",
    "aggregate_by_label",
]


def half_cycle_day(series: VehicleSeries) -> int:
    """First day index at which cumulative usage reaches ``T_v / 2``.

    Days ``>= half_cycle_day`` are the vehicle's *semi-new era*; days
    before it are its *new era*.  Raises if the vehicle never reaches
    half a budget (it is still new at the end of its data).
    """
    cumulative = np.cumsum(series.usage)
    reached = np.nonzero(cumulative >= series.t_v / 2.0)[0]
    if reached.size == 0:
        raise ValueError(
            f"Vehicle {series.vehicle_id!r} never reaches T_v/2; it is "
            "still 'new'."
        )
    return int(reached[0]) + 1


def first_cycle_dataset(
    series: VehicleSeries, window: int
) -> RelationalDataset:
    """Labeled windowed records of a vehicle's (completed) first cycle."""
    first = series.first_cycle()
    if not first.completed:
        raise ValueError(
            f"Vehicle {series.vehicle_id!r} has not completed its first "
            "cycle; it has no labeled first-cycle records."
        )
    return build_relational_dataset(
        series.bundle, window, day_range=(first.start, first.end + 1)
    )


@dataclass(frozen=True)
class ColdStartConfig:
    """Protocol knobs for the cold-start experiments.

    Attributes
    ----------
    window:
        Feature lag window ``W``.
    horizon:
        Day set for the semi-new ``E_MRE``.
    grid:
        Hyper-parameter grid choice forwarded to the registry.
    cv_splits:
        Grid-search folds.
    train_fraction:
        Vehicle-level split share (paper: 70 % -> 17 of 24 vehicles).
    seed:
        Seed of the vehicle split.
    similarity_measure:
        Name or callable for ``Model_Sim`` donor selection.  Default
        ``"average_usage"``: the paper describes its measure as the
        point-wise average distance ``AVG_v`` *between the utilization
        series* and interprets the result as "comparing the similarity
        of average usage" (Section 5.2) — i.e. matching vehicles on
        their mean utilization level, which is what carries the burn
        rate a univariate donor model needs.  ``"pointwise"`` (strict
        day-by-day alignment), ``"correlation"``, ``"euclidean"`` and
        ``"dtw"`` are available for the ablation bench.
    """

    window: int = 0
    horizon: tuple[int, ...] = DEFAULT_HORIZON
    grid: str | None = None
    cv_splits: int = 5
    train_fraction: float = 0.7
    seed: int = 0
    similarity_measure: object = "average_usage"

    def __post_init__(self) -> None:
        if self.window < 0:
            raise ValueError(f"window must be >= 0, got {self.window}.")
        if not self.horizon:
            raise ValueError("horizon must be non-empty.")
        if not 0.0 < self.train_fraction < 1.0:
            raise ValueError(
                f"train_fraction must be in (0, 1), got {self.train_fraction}."
            )


@dataclass
class ColdStartResult:
    """One (test vehicle, algorithm, strategy) outcome."""

    vehicle_id: str
    algorithm: str
    strategy: str  # "BL", "Uni" or "Sim"
    e_mre: float
    e_global: float
    n_eval: int
    donor_id: str | None = None
    d_true: np.ndarray = field(default_factory=lambda: np.zeros(0), repr=False)
    d_pred: np.ndarray = field(default_factory=lambda: np.zeros(0), repr=False)

    @property
    def label(self) -> str:
        """Table-3 row label, e.g. ``"RF_Sim"`` or ``"BL"``."""
        if self.strategy == "BL":
            return "BL"
        return f"{self.algorithm}_{self.strategy}"


class ColdStartExperiment:
    """Unified / similarity-based cold-start training and evaluation."""

    def __init__(self, config: ColdStartConfig | None = None):
        self.config = config or ColdStartConfig()

    # -- fleet split -------------------------------------------------------

    def split_fleet(
        self, fleet_series: Sequence[VehicleSeries]
    ) -> tuple[list[VehicleSeries], list[VehicleSeries]]:
        """Vehicle-level random split (Section 4.4: 17 train / 7 test)."""
        usable = [
            s for s in fleet_series if s.cycles and s.first_cycle().completed
        ]
        if len(usable) < 2:
            raise ValueError(
                "Need at least 2 vehicles with completed first cycles."
            )
        rng = np.random.default_rng(self.config.seed)
        order = list(usable)
        rng.shuffle(order)
        n_train = int(round(self.config.train_fraction * len(order)))
        n_train = min(max(n_train, 1), len(order) - 1)
        return order[:n_train], order[n_train:]

    # -- training ------------------------------------------------------------

    def fit_unified(
        self, train_series: Sequence[VehicleSeries], algorithm: str
    ):
        """``Model_Uni``: one model on the merged first cycles."""
        datasets = [
            first_cycle_dataset(series, self.config.window)
            for series in train_series
        ]
        merged = RelationalDataset.concatenate(datasets)
        predictor = make_predictor(
            algorithm, grid=self.config.grid, cv_splits=self.config.cv_splits
        )
        predictor.fit(merged, usage=None)
        return predictor

    def _first_half_usage(self, series: VehicleSeries) -> np.ndarray:
        half = half_cycle_day(series)
        return series.usage[:half]

    def fit_similarity(
        self,
        test_series: VehicleSeries,
        train_series: Sequence[VehicleSeries],
        algorithm: str,
    ) -> tuple[object, str]:
        """``Model_Sim``: train on the most similar vehicle's first cycle.

        Similarity compares the first half of the first cycle of the
        test vehicle against the same window of each training vehicle.
        """
        target = self._first_half_usage(test_series)
        candidates = {
            series.vehicle_id: self._first_half_usage(series)
            for series in train_series
        }
        donor_id, _ = most_similar(
            target, candidates, measure=self.config.similarity_measure
        )
        donor = next(
            s for s in train_series if s.vehicle_id == donor_id
        )
        dataset = first_cycle_dataset(donor, self.config.window)
        predictor = make_predictor(
            algorithm, grid=self.config.grid, cv_splits=self.config.cv_splits
        )
        predictor.fit(dataset, usage=donor.usage[: donor.first_cycle().end + 1])
        return predictor, donor_id

    def fit_baseline_semi_new(self, test_series: VehicleSeries):
        """Semi-new BL: ``AVG_v`` from the test vehicle's own first half."""
        predictor = BaselinePredictor()
        dummy = RelationalDataset(
            X=np.zeros((0, self.config.window + 1)),
            y=np.zeros(0),
            t_index=np.zeros(0, dtype=np.intp),
            window=self.config.window,
        )
        predictor.fit(dummy, usage=self._first_half_usage(test_series))
        return predictor

    # -- evaluation ----------------------------------------------------------

    def _eval_dataset(
        self, series: VehicleSeries, era: str
    ) -> RelationalDataset:
        """Labeled first-cycle records of the requested era.

        ``era="semi_new"`` keeps days at/after the half-budget point;
        ``era="new"`` keeps the days before it.
        """
        dataset = first_cycle_dataset(series, self.config.window)
        half = half_cycle_day(series)
        if era == "semi_new":
            mask = dataset.t_index >= half
        elif era == "new":
            mask = dataset.t_index < half
        elif era == "full":
            mask = np.ones(dataset.n_records, dtype=bool)
        else:
            raise ValueError(f"Unknown era {era!r}.")
        return RelationalDataset(
            X=dataset.X[mask],
            y=dataset.y[mask],
            t_index=dataset.t_index[mask],
            window=dataset.window,
        )

    def _score(
        self,
        series: VehicleSeries,
        predictor,
        era: str,
        algorithm: str,
        strategy: str,
        donor_id: str | None = None,
    ) -> ColdStartResult:
        dataset = self._eval_dataset(series, era)
        if dataset.n_records == 0:
            return ColdStartResult(
                vehicle_id=series.vehicle_id,
                algorithm=algorithm,
                strategy=strategy,
                e_mre=float("nan"),
                e_global=float("nan"),
                n_eval=0,
                donor_id=donor_id,
            )
        d_pred = predictor.predict(dataset.X)
        return ColdStartResult(
            vehicle_id=series.vehicle_id,
            algorithm=algorithm,
            strategy=strategy,
            e_mre=mean_residual_error(dataset.y, d_pred, self.config.horizon),
            e_global=global_error(dataset.y, d_pred),
            n_eval=dataset.n_records,
            donor_id=donor_id,
            d_true=dataset.y,
            d_pred=d_pred,
        )

    # -- full protocol ---------------------------------------------------------

    def _semi_new_vehicle(
        self,
        series: VehicleSeries,
        train_series: Sequence[VehicleSeries],
        unified: dict,
        algorithms: Sequence[str],
    ) -> list[ColdStartResult]:
        """All semi-new scores for one test vehicle (BL, Sim, Uni)."""
        results = [
            self._score(
                series,
                self.fit_baseline_semi_new(series),
                era="semi_new",
                algorithm="BL",
                strategy="BL",
            )
        ]
        for algorithm in algorithms:
            predictor, donor_id = self.fit_similarity(
                series, train_series, algorithm
            )
            results.append(
                self._score(
                    series,
                    predictor,
                    era="semi_new",
                    algorithm=algorithm,
                    strategy="Sim",
                    donor_id=donor_id,
                )
            )
            results.append(
                self._score(
                    series,
                    unified[algorithm],
                    era="semi_new",
                    algorithm=algorithm,
                    strategy="Uni",
                )
            )
        return results

    def run_semi_new(
        self,
        train_series: Sequence[VehicleSeries],
        test_series: Sequence[VehicleSeries],
        algorithms: Iterable[str],
        executor=None,
    ) -> list[ColdStartResult]:
        """Table 3 (semi-new column): BL + {alg}x{Uni, Sim} per vehicle.

        ``executor`` fans the per-test-vehicle work out in parallel;
        the flattened result order matches the serial loop exactly.
        """
        algorithms = [a for a in algorithms if a != "BL"]
        unified = {
            algorithm: self.fit_unified(train_series, algorithm)
            for algorithm in algorithms
        }
        task = _SemiNewVehicleTask(
            config=self.config,
            train_series=tuple(train_series),
            unified=unified,
            algorithms=tuple(algorithms),
        )
        if executor is None:
            groups = [task(series) for series in test_series]
        else:
            groups = executor.map_ordered(task, test_series)
        return [result for group in groups for result in group]

    def run_new(
        self,
        train_series: Sequence[VehicleSeries],
        test_series: Sequence[VehicleSeries],
        algorithms: Iterable[str],
        era: str = "full",
        executor=None,
    ) -> list[ColdStartResult]:
        """Table 3 (new column): ``Model_Uni`` only, scored by E_Global.

        The vehicle is *new* when the prediction service starts; Eq. 3's
        global error then averages daily errors over all its (first
        cycle) samples, which is what ``era="full"`` scores.  Pass
        ``era="new"`` to restrict scoring to the days on which the
        vehicle was still categorically new (a stricter reading).
        """
        algorithms = [a for a in algorithms if a != "BL"]
        unified = {
            algorithm: self.fit_unified(train_series, algorithm)
            for algorithm in algorithms
        }
        task = _NewVehicleTask(
            config=self.config,
            unified=unified,
            algorithms=tuple(algorithms),
            era=era,
        )
        if executor is None:
            groups = [task(series) for series in test_series]
        else:
            groups = executor.map_ordered(task, test_series)
        return [result for group in groups for result in group]


@dataclass(frozen=True)
class _SemiNewVehicleTask:
    """Picklable per-vehicle semi-new job for parallel fan-out."""

    config: ColdStartConfig
    train_series: tuple
    unified: dict
    algorithms: tuple

    def __call__(self, series: VehicleSeries) -> list[ColdStartResult]:
        experiment = ColdStartExperiment(self.config)
        return experiment._semi_new_vehicle(
            series, self.train_series, self.unified, self.algorithms
        )


@dataclass(frozen=True)
class _NewVehicleTask:
    """Picklable per-vehicle new-era job for parallel fan-out."""

    config: ColdStartConfig
    unified: dict
    algorithms: tuple
    era: str

    def __call__(self, series: VehicleSeries) -> list[ColdStartResult]:
        experiment = ColdStartExperiment(self.config)
        return [
            experiment._score(
                series,
                self.unified[algorithm],
                era=self.era,
                algorithm=algorithm,
                strategy="Uni",
            )
            for algorithm in self.algorithms
        ]


def aggregate_by_label(
    results: Iterable[ColdStartResult], metric: str = "e_mre"
) -> dict[str, float]:
    """Mean of a metric per Table-3 row label, skipping NaNs."""
    if metric not in ("e_mre", "e_global"):
        raise ValueError(f"metric must be 'e_mre' or 'e_global', got {metric!r}.")
    buckets: dict[str, list[float]] = {}
    for result in results:
        buckets.setdefault(result.label, []).append(getattr(result, metric))
    out: dict[str, float] = {}
    for label, values in buckets.items():
        finite = [v for v in values if np.isfinite(v)]
        out[label] = float(np.mean(finite)) if finite else float("nan")
    return out
