"""The paper's error model (Section 2.1).

Three errors per vehicle:

* the **daily error** ``E_v(t) = D_v(t) - D_predict_v(t)`` (Eq. 2);
* the **global error** ``E_Global``, the mean of daily errors over all
  samples (Eq. 3);
* the **mean residual error** ``E_MRE(D~)``, the mean of daily errors
  restricted to days whose true target falls in a chosen set ``D~``
  (Eq. 4) — the paper uses the last 29 days of each cycle,
  ``D~ = {1, ..., 29}``, because "fleet managers are mainly interested in
  getting accurate predictions when the vehicles are towards the end of
  their maintenance cycle".

Eqs. 3-4 are written with *signed* errors, but the reported values
(e.g. RF = 2.4 days) are error magnitudes, so by default these functions
average absolute errors; pass ``absolute=False`` for the literal signed
mean (useful to detect systematic bias).
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

__all__ = [
    "DEFAULT_HORIZON",
    "daily_errors",
    "global_error",
    "mean_residual_error",
    "residual_error_by_day",
]

#: The paper's D~ = {1, ..., 29} (footnote 1: "the last 29 days per cycle").
DEFAULT_HORIZON: tuple[int, ...] = tuple(range(1, 30))


def _validate(d_true, d_pred) -> tuple[np.ndarray, np.ndarray]:
    d_true = np.asarray(d_true, dtype=np.float64)
    d_pred = np.asarray(d_pred, dtype=np.float64)
    if d_true.shape != d_pred.shape:
        raise ValueError(
            f"Shape mismatch: d_true {d_true.shape} vs d_pred {d_pred.shape}."
        )
    if d_true.ndim != 1:
        raise ValueError(f"Expected 1-D arrays, got shape {d_true.shape}.")
    return d_true, d_pred


def daily_errors(d_true, d_pred) -> np.ndarray:
    """Signed daily errors ``E_v(t)`` (Eq. 2).

    Days with NaN ground truth (incomplete final cycle) yield NaN.
    """
    d_true, d_pred = _validate(d_true, d_pred)
    return d_true - d_pred


def global_error(d_true, d_pred, *, absolute: bool = True) -> float:
    """``E_Global`` (Eq. 3): mean daily error over all labeled samples."""
    errors = daily_errors(d_true, d_pred)
    errors = errors[np.isfinite(errors)]
    if errors.size == 0:
        raise ValueError("No labeled samples: all daily errors are NaN.")
    if absolute:
        errors = np.abs(errors)
    return float(errors.mean())


def mean_residual_error(
    d_true,
    d_pred,
    horizon: Iterable[int] = DEFAULT_HORIZON,
    *,
    absolute: bool = True,
) -> float:
    """``E_MRE(D~)`` (Eq. 4): mean daily error over days with
    ``D_v(t)`` in ``horizon``.

    Returns NaN when no sample's true target falls in ``horizon`` —
    callers aggregating across vehicles should skip those (a vehicle may
    simply have no test day that close to a maintenance).
    """
    d_true, d_pred = _validate(d_true, d_pred)
    horizon_set = set(int(d) for d in horizon)
    if not horizon_set:
        raise ValueError("horizon must be non-empty.")
    labeled = np.isfinite(d_true) & np.isfinite(d_pred)
    selected = labeled & np.isin(
        np.where(labeled, d_true, -1).astype(np.int64), list(horizon_set)
    )
    if not selected.any():
        return float("nan")
    errors = d_true[selected] - d_pred[selected]
    if absolute:
        errors = np.abs(errors)
    return float(errors.mean())


def residual_error_by_day(
    d_true,
    d_pred,
    days: Iterable[int] = DEFAULT_HORIZON,
    *,
    absolute: bool = True,
) -> dict[int, float]:
    """``E_MRE({d})`` for each single day ``d`` in ``days``.

    This is Figure 5 of the paper: error as a function of how many days
    remain before the maintenance deadline.  Days with no samples map to
    NaN.
    """
    return {
        int(day): mean_residual_error(
            d_true, d_pred, horizon=[int(day)], absolute=absolute
        )
        for day in days
    }
