"""Methodology for old vehicles (Section 4.3).

"Old vehicles are assumed to have a sufficiently large amount of
historical data to train reliable Machine Learning models ... separately
for each vehicle we train the multiple regression models ... Among the
trained models, we select those that minimize the mean residual error
over the last 29 days ... For each vehicle, we consider the first 70% of
their samples as training set, and the remaining part as test set."

This module is the engine behind Tables 1-2 and Figures 4-5:
:class:`OldVehicleExperiment` trains one predictor per (vehicle,
algorithm) under a :class:`OldVehicleConfig` and reports the paper's
error metrics; :func:`select_best_algorithm` is the per-vehicle model
selection rule.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

import numpy as np

from ..dataprep.transformation import (
    RelationalDataset,
    augment_with_time_shifts,
    build_relational_dataset,
)
from .errors import (
    DEFAULT_HORIZON,
    global_error,
    mean_residual_error,
    residual_error_by_day,
)
from .registry import make_predictor
from .series import VehicleSeries

__all__ = [
    "OldVehicleConfig",
    "VehicleResult",
    "FleetResult",
    "OldVehicleExperiment",
    "select_best_algorithm",
]


@dataclass(frozen=True)
class OldVehicleConfig:
    """Knobs of the per-vehicle training protocol.

    Attributes
    ----------
    window:
        ``W``: past-usage lags as features (0 = univariate, Eq. 7).
    train_fraction:
        Chronological train share (paper: 0.7).
    restrict_to_horizon:
        Train only on records whose target lies in ``horizon`` — the
        last-29-days restriction whose effect Table 1 measures.
    horizon:
        The evaluation (and optional training) day set ``D~``.
    n_shifts:
        Time-shift augmentation copies (0 disables, Section 4's data
        engineering enables).
    grid:
        ``None`` (registry default hyper-parameters), ``"fast"`` or
        ``"paper"`` (grid search with ``cv_splits``-fold CV).
    cv_splits:
        Folds for grid search (paper: 5).
    seed:
        Seed for the augmentation shift draws.
    """

    window: int = 0
    train_fraction: float = 0.7
    restrict_to_horizon: bool = False
    horizon: tuple[int, ...] = DEFAULT_HORIZON
    n_shifts: int = 0
    grid: str | None = None
    cv_splits: int = 5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.window < 0:
            raise ValueError(f"window must be >= 0, got {self.window}.")
        if not 0.0 < self.train_fraction < 1.0:
            raise ValueError(
                f"train_fraction must be in (0, 1), got {self.train_fraction}."
            )
        if not self.horizon:
            raise ValueError("horizon must be non-empty.")
        if self.n_shifts < 0:
            raise ValueError(f"n_shifts must be >= 0, got {self.n_shifts}.")


@dataclass
class VehicleResult:
    """One (vehicle, algorithm) evaluation outcome."""

    vehicle_id: str
    algorithm: str
    window: int
    e_mre: float
    e_global: float
    n_train: int
    n_test: int
    fit_seconds: float
    d_true: np.ndarray = field(repr=False)
    d_pred: np.ndarray = field(repr=False)
    t_index: np.ndarray = field(repr=False)


@dataclass
class FleetResult:
    """Per-algorithm aggregation across test vehicles."""

    algorithm: str
    window: int
    results: list[VehicleResult]

    @property
    def e_mre(self) -> float:
        """Fleet ``E_MRE``: mean of per-vehicle MREs (NaN-skipping).

        "E_MRE is the average of the mean residual errors computed over
        all the test vehicles" (Section 5.1).  Vehicles whose test span
        contains no day with a target in the horizon are skipped.
        """
        values = np.asarray([r.e_mre for r in self.results])
        finite = values[np.isfinite(values)]
        return float(finite.mean()) if finite.size else float("nan")

    @property
    def e_global(self) -> float:
        values = np.asarray([r.e_global for r in self.results])
        finite = values[np.isfinite(values)]
        return float(finite.mean()) if finite.size else float("nan")

    @property
    def mean_fit_seconds(self) -> float:
        return float(np.mean([r.fit_seconds for r in self.results]))

    def pooled_predictions(self) -> tuple[np.ndarray, np.ndarray]:
        """All test-day (true, predicted) pairs across vehicles."""
        d_true = np.concatenate([r.d_true for r in self.results])
        d_pred = np.concatenate([r.d_pred for r in self.results])
        return d_true, d_pred

    def error_by_day(
        self, days: Iterable[int] = DEFAULT_HORIZON
    ) -> dict[int, float]:
        """Figure 5's per-day curve, pooled over the fleet's test days."""
        d_true, d_pred = self.pooled_predictions()
        return residual_error_by_day(d_true, d_pred, days)


class OldVehicleExperiment:
    """Train/evaluate per-vehicle predictors under one configuration."""

    def __init__(self, config: OldVehicleConfig | None = None):
        self.config = config or OldVehicleConfig()

    def _train_dataset(self, series: VehicleSeries, cut: int) -> RelationalDataset:
        cfg = self.config
        if cfg.n_shifts > 0:
            dataset = augment_with_time_shifts(
                series.usage,
                series.t_v,
                cfg.window,
                n_shifts=cfg.n_shifts,
                rng=cfg.seed,
                max_shift=cut,
                day_range=(0, cut),
            )
        else:
            dataset = build_relational_dataset(
                series.bundle, cfg.window, day_range=(0, cut)
            )
        if cfg.restrict_to_horizon:
            restricted = dataset.restrict_to_horizon(cfg.horizon)
            # Fall back to the full dataset if the restriction would
            # leave nothing to learn from (degenerate short vehicles).
            if restricted.n_records > 0:
                dataset = restricted
        return dataset

    def run_vehicle(
        self, series: VehicleSeries, algorithm: str
    ) -> VehicleResult:
        """Train on the first 70 % of days, evaluate on the rest."""
        cfg = self.config
        cut = int(round(cfg.train_fraction * series.n_days))
        cut = min(max(cut, cfg.window + 1), series.n_days - 1)

        train = self._train_dataset(series, cut)
        test = build_relational_dataset(
            series.bundle, cfg.window, day_range=(cut, series.n_days)
        )
        if train.n_records == 0 or test.n_records == 0:
            raise ValueError(
                f"Vehicle {series.vehicle_id!r} yields an empty "
                f"{'train' if train.n_records == 0 else 'test'} set under "
                f"window={cfg.window}, train_fraction={cfg.train_fraction}."
            )

        predictor = make_predictor(
            algorithm, grid=cfg.grid, cv_splits=cfg.cv_splits
        )
        start = time.perf_counter()
        predictor.fit(train, usage=series.usage[:cut])
        fit_seconds = time.perf_counter() - start

        d_pred = predictor.predict(test.X)
        return VehicleResult(
            vehicle_id=series.vehicle_id,
            algorithm=algorithm,
            window=cfg.window,
            e_mre=mean_residual_error(test.y, d_pred, cfg.horizon),
            e_global=global_error(test.y, d_pred),
            n_train=train.n_records,
            n_test=test.n_records,
            fit_seconds=fit_seconds,
            d_true=test.y,
            d_pred=d_pred,
            t_index=test.t_index,
        )

    def run_fleet(
        self,
        fleet_series: Sequence[VehicleSeries],
        algorithm: str,
        executor=None,
    ) -> FleetResult:
        """Evaluate one algorithm over every vehicle.

        ``executor`` (a :class:`repro.serving.executor.FleetExecutor`)
        fans the per-vehicle runs out in parallel; results keep the
        input vehicle order and are identical to the serial loop
        (training is per-vehicle independent and seeded).
        """
        if not fleet_series:
            raise ValueError("fleet_series must be non-empty.")
        task = _RunVehicleTask(config=self.config, algorithm=algorithm)
        if executor is None:
            results = [task(series) for series in fleet_series]
        else:
            results = executor.map_ordered(task, fleet_series)
        return FleetResult(
            algorithm=algorithm, window=self.config.window, results=results
        )

    def run_matrix(
        self,
        fleet_series: Sequence[VehicleSeries],
        algorithms: Iterable[str],
        executor=None,
    ) -> dict[str, FleetResult]:
        """Evaluate several algorithms; keys follow the input order."""
        return {
            algorithm: self.run_fleet(fleet_series, algorithm, executor)
            for algorithm in algorithms
        }


@dataclass(frozen=True)
class _RunVehicleTask:
    """Picklable (vehicle -> result) job for process-pool fan-out."""

    config: OldVehicleConfig
    algorithm: str

    def __call__(self, series: VehicleSeries) -> VehicleResult:
        return OldVehicleExperiment(self.config).run_vehicle(
            series, self.algorithm
        )


def select_best_algorithm(
    series: VehicleSeries,
    algorithms: Iterable[str],
    config: OldVehicleConfig | None = None,
) -> tuple[str, dict[str, VehicleResult]]:
    """Section 4.3's model selection for one vehicle.

    Trains every candidate and returns the key minimizing
    ``E_MRE(horizon)`` plus all per-algorithm results.  NaN MREs lose
    against any finite one; full-NaN candidates fall back to
    ``E_Global``.
    """
    experiment = OldVehicleExperiment(config)
    results = {
        algorithm: experiment.run_vehicle(series, algorithm)
        for algorithm in algorithms
    }
    if not results:
        raise ValueError("algorithms must be non-empty.")

    def sort_key(item: tuple[str, VehicleResult]):
        _, result = item
        mre = result.e_mre
        if np.isfinite(mre):
            return (0, mre)
        return (1, result.e_global)

    best_key = min(results.items(), key=sort_key)[0]
    return best_key, results
