"""The paper's primary contribution: next-maintenance prediction.

Problem formalization (Section 2), error model (Section 2.1), the three
prediction approaches (Section 4.1), the algorithm registry (Section
4.2), per-vehicle methodology for old vehicles (Section 4.3), cold-start
methodology for new/semi-new vehicles (Section 4.4), and the fleet
planning application layer the paper motivates.
"""

from .categorize import VehicleCategory, categorize, categorize_usage
from .coldstart import (
    ColdStartConfig,
    ColdStartExperiment,
    ColdStartResult,
    aggregate_by_label,
    first_cycle_dataset,
    half_cycle_day,
)
from .cycles import Cycle, SeriesBundle, derive_series, segment_cycles
from .errors import (
    DEFAULT_HORIZON,
    daily_errors,
    global_error,
    mean_residual_error,
    residual_error_by_day,
)
from .old_vehicles import (
    FleetResult,
    OldVehicleConfig,
    OldVehicleExperiment,
    VehicleResult,
    select_best_algorithm,
)
from .planner import (
    FleetMaintenancePlanner,
    MaintenanceForecast,
    ScheduledMaintenance,
)
from .predictors import BaselinePredictor, RegressionPredictor
from .registry import (
    ALGORITHMS,
    PAPER_ALGORITHM_ORDER,
    AlgorithmSpec,
    get_algorithm,
    make_predictor,
    register_algorithm,
)
from .series import VehicleSeries

__all__ = [
    "VehicleCategory",
    "categorize",
    "categorize_usage",
    "ColdStartConfig",
    "ColdStartExperiment",
    "ColdStartResult",
    "aggregate_by_label",
    "first_cycle_dataset",
    "half_cycle_day",
    "Cycle",
    "SeriesBundle",
    "derive_series",
    "segment_cycles",
    "DEFAULT_HORIZON",
    "daily_errors",
    "global_error",
    "mean_residual_error",
    "residual_error_by_day",
    "FleetResult",
    "OldVehicleConfig",
    "OldVehicleExperiment",
    "VehicleResult",
    "select_best_algorithm",
    "FleetMaintenancePlanner",
    "MaintenanceForecast",
    "ScheduledMaintenance",
    "BaselinePredictor",
    "RegressionPredictor",
    "ALGORITHMS",
    "PAPER_ALGORITHM_ORDER",
    "AlgorithmSpec",
    "get_algorithm",
    "make_predictor",
    "register_algorithm",
    "VehicleSeries",
]
