"""The paper's three prediction approaches (Section 4.1).

* **Baseline (BL)** — assume constant future utilization equal to the
  training average; days left = usage budget left / average daily usage
  (Eqs. 5-6).
* **Univariate regression** — ``D(t) = F(L(t))`` (Eq. 7), i.e. a
  regressor over the single feature ``L(t)`` (window ``W = 0``).
* **Multivariate regression** — ``D(t) = F(L(t), U(t-1), ..., U(t-W))``
  (Eq. 8), the windowed relational layout of
  :mod:`repro.dataprep.transformation`.

The univariate/multivariate distinction lives entirely in the dataset
(its window); :class:`RegressionPredictor` wraps any
:mod:`repro.learn` estimator behind a common predictor interface so the
evaluation harness treats BL and the regressors uniformly.
"""

from __future__ import annotations

import numpy as np

from ..dataprep.transformation import RelationalDataset
from ..learn.base import clone
from ..learn.model_selection import (
    GridSearchCV,
    KFold,
    neg_mean_absolute_error_scorer,
)

__all__ = ["BaselinePredictor", "RegressionPredictor"]


class BaselinePredictor:
    """The BL scheduling policy of Eqs. 5-6.

    ``AVG_v`` is the mean daily utilization over the training period
    (idle days included — they are part of how slowly a budget burns
    down), and the prediction is ``D_BL(t) = L(t) / AVG_v``.

    Parameters
    ----------
    min_average:
        Floor on ``AVG_v`` to keep predictions finite for vehicles that
        barely worked during training.
    """

    name = "BL"
    is_baseline = True
    trusted_predict = True

    def __init__(self, min_average: float = 1.0):
        if min_average <= 0:
            raise ValueError(
                f"min_average must be positive, got {min_average}."
            )
        self.min_average = min_average

    def fit(self, train: RelationalDataset, usage: np.ndarray) -> "BaselinePredictor":
        """Estimate ``AVG_v`` from the training-period usage series.

        ``train`` is accepted (and ignored beyond interface uniformity);
        BL "is not trained" in the ML sense (Section 5.1).
        """
        usage = np.asarray(usage, dtype=np.float64)
        if usage.size == 0:
            raise ValueError("usage must be non-empty to compute AVG_v.")
        if not np.isfinite(usage).all():
            raise ValueError("usage contains NaN/inf; clean the data first.")
        self.average_ = max(float(usage.mean()), self.min_average)
        return self

    def predict(self, X, *, validate: bool = True) -> np.ndarray:
        """Predict days left from feature rows (column 0 is ``L(t)``)."""
        if not hasattr(self, "average_"):
            raise RuntimeError("BaselinePredictor used before fit().")
        X = np.asarray(X, dtype=np.float64)
        if validate and (X.ndim != 2 or X.shape[1] < 1):
            raise ValueError(
                f"X must be 2-D with L(t) in column 0, got shape {X.shape}."
            )
        return np.maximum(X[:, 0], 0.0) / self.average_


class RegressionPredictor:
    """A :mod:`repro.learn` regressor behind the predictor interface.

    Parameters
    ----------
    name:
        Algorithm label (``"LR"``, ``"LSVR"``, ``"RF"``, ``"XGB"`` ...).
    estimator:
        Unfitted estimator template (cloned at fit time).
    param_grid:
        Optional hyper-parameter grid; when given, :meth:`fit` runs the
        paper's 5-fold grid search (Section 5) and keeps the winner.
    cv_splits:
        Folds for the grid search.
    clip_negative:
        Clamp predictions at zero — "-3 days to maintenance" is never a
        useful answer for a planner.
    """

    is_baseline = False
    trusted_predict = True

    def __init__(
        self,
        name: str,
        estimator,
        param_grid: dict | None = None,
        cv_splits: int = 5,
        clip_negative: bool = True,
    ):
        self.name = name
        self.estimator = estimator
        self.param_grid = param_grid
        self.cv_splits = cv_splits
        self.clip_negative = clip_negative

    def fit(
        self, train: RelationalDataset, usage: np.ndarray | None = None
    ) -> "RegressionPredictor":
        """Fit (optionally grid-searching) on a relational dataset.

        ``usage`` is accepted for interface uniformity with
        :class:`BaselinePredictor` and ignored.
        """
        if train.n_records == 0:
            raise ValueError(f"{self.name}: empty training dataset.")
        X, y = train.X, train.y
        if self.param_grid:
            n_splits = min(self.cv_splits, train.n_records)
            if n_splits >= 2:
                search = GridSearchCV(
                    clone(self.estimator),
                    self.param_grid,
                    cv=KFold(n_splits=n_splits, shuffle=True, random_state=0),
                    scoring=neg_mean_absolute_error_scorer,
                )
                search.fit(X, y)
                self.model_ = search.best_estimator_
                self.best_params_ = search.best_params_
                return self
        self.model_ = clone(self.estimator)
        self.model_.fit(X, y)
        self.best_params_ = None
        return self

    def predict(self, X, *, validate: bool = True) -> np.ndarray:
        if not hasattr(self, "model_"):
            raise RuntimeError(
                f"RegressionPredictor {self.name!r} used before fit()."
            )
        X = np.asarray(X, dtype=np.float64)
        if not validate and getattr(self.model_, "trusted_predict", False):
            out = self.model_.predict(X, validate=False)
        else:
            out = self.model_.predict(X)
        if self.clip_negative:
            out = np.maximum(out, 0.0)
        return out
