"""Fleet maintenance planning on top of the predictors.

The application layer the paper motivates: "a data-driven application to
automatically schedule the periodic maintenance operations of industrial
vehicles" that is "complementary to existing optimization-based planning
strategies ... providing the fleet management system with specific hints
on future vehicle usage states".

:class:`FleetMaintenancePlanner` turns per-vehicle predictions of days
to next maintenance into a workshop schedule with a daily capacity
constraint: urgent vehicles first; overflow shifts to the next day with
free capacity (never earlier than predicted, so no budget is wasted on
premature service).
"""

from __future__ import annotations

import datetime as dt
from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from .categorize import VehicleCategory, categorize
from .series import VehicleSeries

__all__ = ["MaintenanceForecast", "ScheduledMaintenance", "FleetMaintenancePlanner"]


@dataclass(frozen=True)
class MaintenanceForecast:
    """One vehicle's prediction snapshot.

    Attributes
    ----------
    vehicle_id:
        Vehicle.
    category:
        History class (old / semi-new / new) at forecast time.
    days_to_maintenance:
        Predicted days until the next maintenance is due.
    usage_left:
        Budget seconds remaining (``L_v``) at forecast time.
    days_lower, days_upper:
        Optional uncertainty band (e.g. forest per-tree quantiles);
        ``days_lower`` is the conservative "could be due this early"
        estimate the planner can schedule against.
    """

    vehicle_id: str
    category: VehicleCategory
    days_to_maintenance: float
    usage_left: float
    days_lower: float | None = None
    days_upper: float | None = None

    def __post_init__(self) -> None:
        if self.days_to_maintenance < 0:
            raise ValueError(
                "days_to_maintenance must be non-negative, got "
                f"{self.days_to_maintenance}."
            )
        if self.days_lower is not None and self.days_upper is not None:
            if not (
                self.days_lower
                <= self.days_to_maintenance
                <= self.days_upper
            ):
                raise ValueError(
                    "Expected days_lower <= days_to_maintenance <= "
                    f"days_upper, got {self.days_lower} / "
                    f"{self.days_to_maintenance} / {self.days_upper}."
                )


@dataclass(frozen=True)
class ScheduledMaintenance:
    """A slot in the workshop plan."""

    vehicle_id: str
    due_date: dt.date
    scheduled_date: dt.date
    predicted_days_left: float

    @property
    def slack_days(self) -> int:
        """Days the slot was pushed past the predicted due date."""
        return (self.scheduled_date - self.due_date).days


class FleetMaintenancePlanner:
    """Build a capacity-constrained maintenance schedule.

    Parameters
    ----------
    daily_capacity:
        Workshop slots per day.
    horizon_days:
        Only vehicles predicted due within this horizon are scheduled.
    """

    def __init__(self, daily_capacity: int = 2, horizon_days: int = 60):
        if daily_capacity < 1:
            raise ValueError(
                f"daily_capacity must be >= 1, got {daily_capacity}."
            )
        if horizon_days < 1:
            raise ValueError(
                f"horizon_days must be >= 1, got {horizon_days}."
            )
        self.daily_capacity = daily_capacity
        self.horizon_days = horizon_days

    @staticmethod
    def forecast_vehicle(
        series: VehicleSeries,
        predictor,
        window: int,
        *,
        quantiles: tuple[float, float] | None = None,
    ) -> MaintenanceForecast:
        """Live forecast from a vehicle's latest observed day.

        Builds the current feature row ``[L(today), U(yesterday), ...]``
        and runs the fitted predictor.  With ``quantiles=(lo, hi)`` and
        a predictor whose underlying model exposes
        ``predict_quantiles`` (the random forest does), the forecast
        carries an uncertainty band.
        """
        bundle = series.bundle
        today = series.n_days - 1
        if today < window:
            raise ValueError(
                f"Vehicle {series.vehicle_id!r} has {series.n_days} days; "
                f"window={window} needs at least {window + 1}."
            )
        usage_left = bundle.usage_left[today]
        if not np.isfinite(usage_left):
            raise ValueError(
                f"Vehicle {series.vehicle_id!r} has no defined L on its "
                "latest day."
            )
        row = np.empty((1, window + 1))
        row[0, 0] = usage_left
        for lag in range(1, window + 1):
            row[0, lag] = series.usage[today - lag]
        prediction = max(float(predictor.predict(row)[0]), 0.0)

        days_lower = days_upper = None
        if quantiles is not None:
            lo, hi = quantiles
            if not 0.0 <= lo <= hi <= 1.0:
                raise ValueError(
                    f"quantiles must satisfy 0 <= lo <= hi <= 1, got "
                    f"{quantiles}."
                )
            model = getattr(predictor, "model_", predictor)
            if hasattr(model, "predict_quantiles"):
                band = model.predict_quantiles(row, quantiles=(lo, hi))[0]
                days_lower = max(float(band[0]), 0.0)
                days_upper = max(float(band[1]), days_lower)
                # Keep the invariant lower <= point <= upper even when the
                # point estimate (tree mean) falls outside the band.
                days_lower = min(days_lower, prediction)
                days_upper = max(days_upper, prediction)
        return MaintenanceForecast(
            vehicle_id=series.vehicle_id,
            category=categorize(series),
            days_to_maintenance=prediction,
            usage_left=float(usage_left),
            days_lower=days_lower,
            days_upper=days_upper,
        )

    def build_schedule(
        self,
        forecasts: Mapping[str, MaintenanceForecast] | list[MaintenanceForecast],
        today: dt.date,
        *,
        conservative: bool = False,
    ) -> list[ScheduledMaintenance]:
        """Assign workshop days: most urgent first, capacity respected.

        A vehicle's slot never precedes its predicted due date; when a
        day is full the vehicle shifts to the next day with capacity.
        With ``conservative=True``, forecasts carrying an uncertainty
        band are scheduled against their lower bound ("could be due this
        early") instead of the point estimate.
        """
        if isinstance(forecasts, Mapping):
            forecasts = list(forecasts.values())

        def effective_days(forecast: MaintenanceForecast) -> float:
            if conservative and forecast.days_lower is not None:
                return forecast.days_lower
            return forecast.days_to_maintenance

        due = [
            f for f in forecasts if effective_days(f) <= self.horizon_days
        ]
        due.sort(key=lambda f: (effective_days(f), f.vehicle_id))

        load: dict[dt.date, int] = {}
        schedule: list[ScheduledMaintenance] = []
        for forecast in due:
            due_date = today + dt.timedelta(
                days=int(np.floor(effective_days(forecast)))
            )
            slot = due_date
            while load.get(slot, 0) >= self.daily_capacity:
                slot += dt.timedelta(days=1)
            load[slot] = load.get(slot, 0) + 1
            schedule.append(
                ScheduledMaintenance(
                    vehicle_id=forecast.vehicle_id,
                    due_date=due_date,
                    scheduled_date=slot,
                    predicted_days_left=forecast.days_to_maintenance,
                )
            )
        schedule.sort(key=lambda s: (s.scheduled_date, s.vehicle_id))
        return schedule

    @staticmethod
    def render(schedule: list[ScheduledMaintenance]) -> str:
        """Plain-text schedule for fleet managers."""
        if not schedule:
            return "No maintenance due within the planning horizon."
        lines = ["date        vehicle   pred.days  slack"]
        for slot in schedule:
            lines.append(
                f"{slot.scheduled_date.isoformat()}  {slot.vehicle_id:<9s}"
                f"{slot.predicted_days_left:9.1f}  {slot.slack_days:5d}"
            )
        return "\n".join(lines)
