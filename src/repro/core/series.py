"""Per-vehicle series container: the problem instance of Section 2.

:class:`VehicleSeries` bundles a vehicle's daily utilization ``U_v(t)``
with its usage budget ``T_v`` and lazily derives the cycle segmentation
and the ``C``/``L``/``D`` series.  It is the single currency the
methodology modules (:mod:`repro.core.old_vehicles`,
:mod:`repro.core.coldstart`) trade in.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .cycles import Cycle, SeriesBundle, derive_series, segment_cycles

__all__ = ["VehicleSeries"]


@dataclass
class VehicleSeries:
    """A vehicle's utilization history plus derived maintenance series.

    Attributes
    ----------
    vehicle_id:
        Identifier used in reports and joins.
    usage:
        Daily utilization seconds ``U_v(t)`` (clean: finite, >= 0).
    t_v:
        Allowed usage seconds between maintenances.
    """

    vehicle_id: str
    usage: np.ndarray
    t_v: float
    _bundle: SeriesBundle | None = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.usage = np.asarray(self.usage, dtype=np.float64)
        if self.usage.ndim != 1:
            raise ValueError(
                f"usage must be 1-D, got shape {self.usage.shape}."
            )
        if self.t_v <= 0:
            raise ValueError(f"t_v must be positive, got {self.t_v}.")

    @classmethod
    def from_vehicle(cls, vehicle) -> "VehicleSeries":
        """Build from a :class:`repro.fleet.vehicle.SimulatedVehicle`."""
        return cls(
            vehicle_id=vehicle.vehicle_id,
            usage=vehicle.usage,
            t_v=vehicle.spec.t_v,
        )

    # -- derived views -----------------------------------------------------

    @property
    def bundle(self) -> SeriesBundle:
        """Derived ``C``/``L``/``D`` series (computed once, cached)."""
        if self._bundle is None:
            self._bundle = derive_series(self.usage, self.t_v)
        return self._bundle

    @property
    def n_days(self) -> int:
        return int(self.usage.size)

    @property
    def cycles(self) -> tuple[Cycle, ...]:
        return self.bundle.cycles

    @property
    def completed_cycles(self) -> tuple[Cycle, ...]:
        return self.bundle.completed_cycles

    @property
    def days_since_maintenance(self) -> np.ndarray:
        """``C_v(t)``: days already passed since the last maintenance."""
        return self.bundle.days_since_maintenance

    @property
    def usage_left(self) -> np.ndarray:
        """``L_v(t)``: utilization seconds left to the next maintenance."""
        return self.bundle.usage_left

    @property
    def days_to_maintenance(self) -> np.ndarray:
        """``D_v(t)``: the prediction target (NaN where undefined)."""
        return self.bundle.days_to_maintenance

    @property
    def total_usage(self) -> float:
        return float(self.usage.sum())

    # -- slicing -----------------------------------------------------------

    def truncated(self, n_days: int) -> "VehicleSeries":
        """A copy containing only the first ``n_days`` days.

        Used to rewind history, e.g. to re-categorize a vehicle as it
        would have looked earlier in its life.
        """
        if not 0 <= n_days <= self.n_days:
            raise ValueError(
                f"n_days={n_days} outside [0, {self.n_days}]."
            )
        return VehicleSeries(
            vehicle_id=self.vehicle_id,
            usage=self.usage[:n_days].copy(),
            t_v=self.t_v,
        )

    def first_cycle(self) -> Cycle:
        """The first cycle (completed or not); errors on empty series."""
        cycles = self.cycles
        if not cycles:
            raise ValueError(
                f"Vehicle {self.vehicle_id!r} has no observed days."
            )
        return cycles[0]

    def reanchored(self, start: int) -> SeriesBundle:
        """Derived series with budget accumulation starting at ``start``.

        This is the paper's time-reference shift: the same utilization
        history yields different (but equally valid) cycle boundaries.
        """
        return derive_series(self.usage, self.t_v, start=start)

    def __repr__(self) -> str:  # concise: usage array elided
        return (
            f"VehicleSeries(vehicle_id={self.vehicle_id!r}, "
            f"n_days={self.n_days}, t_v={self.t_v:g}, "
            f"cycles={len(self.cycles)})"
        )
