"""Utilization-series similarity measures (for ``Model_Sim``)."""

from .dtw import dtw_distance, dtw_path
from .measures import (
    MEASURES,
    average_usage_distance,
    correlation_distance,
    euclidean_distance,
    most_similar,
    pointwise_average_distance,
    resolve_measure,
)

__all__ = [
    "dtw_distance",
    "dtw_path",
    "MEASURES",
    "average_usage_distance",
    "correlation_distance",
    "euclidean_distance",
    "most_similar",
    "pointwise_average_distance",
    "resolve_measure",
]
