"""Similarity measures between utilization series.

Section 4.4.1's ``Model_Sim`` "estimate[s] the pairwise correlation
between the utilization series acquired in the first half of the first
cycle ... In the current implementation, we estimate the pairwise
similarity in terms of point-wise average distance AVG_v between the
utilization series.  However, more advanced similarity measures (e.g.,
[9] — generalized dynamic time warping) can be integrated as well."

This module provides the paper's measure plus the cited alternatives,
all as *distances* (smaller = more similar) under a common signature
``measure(a, b) -> float``.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

import numpy as np

from .dtw import dtw_distance

__all__ = [
    "pointwise_average_distance",
    "average_usage_distance",
    "euclidean_distance",
    "correlation_distance",
    "MEASURES",
    "resolve_measure",
    "most_similar",
]


def _common_prefix(a, b) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 1 or b.ndim != 1:
        raise ValueError("Series must be 1-D.")
    if a.size == 0 or b.size == 0:
        raise ValueError("Series must be non-empty.")
    n = min(a.size, b.size)
    return a[:n], b[:n]


def pointwise_average_distance(a, b) -> float:
    """Mean absolute point-wise gap over the common prefix.

    The paper's similarity for ``Model_Sim``.  Series of unequal length
    are compared over their overlap (cold-start candidates have short
    histories by definition).
    """
    a, b = _common_prefix(a, b)
    return float(np.mean(np.abs(a - b)))


def average_usage_distance(a, b) -> float:
    """Absolute gap between the two series' mean levels.

    A coarser variant ("comparing the similarity of average usage",
    Section 5.2) that ignores temporal alignment entirely.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.size == 0 or b.size == 0:
        raise ValueError("Series must be non-empty.")
    return float(abs(a.mean() - b.mean()))


def euclidean_distance(a, b) -> float:
    """L2 distance over the common prefix."""
    a, b = _common_prefix(a, b)
    return float(np.linalg.norm(a - b))


def correlation_distance(a, b) -> float:
    """``1 - Pearson correlation`` over the common prefix.

    Constant series (zero variance) are maximally dissimilar to
    anything non-constant and identical to other constants at the same
    level convention: distance 1.0 (correlation undefined -> treated
    as 0).
    """
    a, b = _common_prefix(a, b)
    if a.size < 2:
        raise ValueError("Correlation needs at least 2 points.")
    sd_a = a.std()
    sd_b = b.std()
    if sd_a == 0.0 or sd_b == 0.0:
        return 1.0
    corr = float(np.corrcoef(a, b)[0, 1])
    return 1.0 - corr


MEASURES: Mapping[str, Callable] = {
    "pointwise": pointwise_average_distance,
    "average_usage": average_usage_distance,
    "euclidean": euclidean_distance,
    "correlation": correlation_distance,
    "dtw": dtw_distance,
}


def resolve_measure(measure) -> Callable:
    """Accept a measure name or a callable; return the callable."""
    if callable(measure):
        return measure
    try:
        return MEASURES[measure]
    except KeyError:
        raise ValueError(
            f"Unknown measure {measure!r}; choose from {sorted(MEASURES)} "
            "or pass a callable."
        ) from None


def most_similar(
    target,
    candidates: Mapping[str, np.ndarray],
    measure="pointwise",
) -> tuple[str, float]:
    """The candidate key minimizing ``measure(target, candidate)``.

    Ties break on the (sorted) candidate key for determinism.
    """
    if not candidates:
        raise ValueError("candidates must be non-empty.")
    fn = resolve_measure(measure)
    best_key = None
    best_distance = np.inf
    for key in sorted(candidates):
        distance = fn(target, candidates[key])
        if distance < best_distance:
            best_key, best_distance = key, distance
    return best_key, float(best_distance)
