"""Dynamic time warping distance.

The paper cites generalized DTW [9] as the natural upgrade of its
point-wise similarity for ``Model_Sim``; this module implements classic
DTW with an optional Sakoe-Chiba band so the ablation bench can compare
it against the paper's simpler measure.
"""

from __future__ import annotations

import numpy as np

__all__ = ["dtw_distance", "dtw_path"]


def _cost_matrix(a: np.ndarray, b: np.ndarray, window: int | None) -> np.ndarray:
    n, m = a.size, b.size
    if window is not None:
        window = max(window, abs(n - m))
    acc = np.full((n + 1, m + 1), np.inf)
    acc[0, 0] = 0.0
    for i in range(1, n + 1):
        if window is None:
            lo, hi = 1, m
        else:
            lo = max(1, i - window)
            hi = min(m, i + window)
        for j in range(lo, hi + 1):
            cost = abs(a[i - 1] - b[j - 1])
            acc[i, j] = cost + min(
                acc[i - 1, j], acc[i, j - 1], acc[i - 1, j - 1]
            )
    return acc


def dtw_distance(a, b, window: int | None = None) -> float:
    """DTW alignment cost between two 1-D series.

    Parameters
    ----------
    a, b:
        Series to align (may have different lengths).
    window:
        Sakoe-Chiba band half-width; ``None`` = unconstrained.  The band
        is automatically widened to ``|len(a) - len(b)|`` when needed so
        a path always exists.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 1 or b.ndim != 1:
        raise ValueError("Series must be 1-D.")
    if a.size == 0 or b.size == 0:
        raise ValueError("Series must be non-empty.")
    if window is not None and window < 0:
        raise ValueError(f"window must be >= 0, got {window}.")
    acc = _cost_matrix(a, b, window)
    return float(acc[a.size, b.size])


def dtw_path(a, b, window: int | None = None) -> list[tuple[int, int]]:
    """The optimal alignment path as ``(i, j)`` index pairs."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.size == 0 or b.size == 0:
        raise ValueError("Series must be non-empty.")
    acc = _cost_matrix(a, b, window)
    i, j = a.size, b.size
    path = [(i - 1, j - 1)]
    while (i, j) != (1, 1):
        steps = [
            (acc[i - 1, j - 1], i - 1, j - 1),
            (acc[i - 1, j], i - 1, j),
            (acc[i, j - 1], i, j - 1),
        ]
        _, i, j = min(steps, key=lambda s: s[0])
        path.append((i - 1, j - 1))
    path.reverse()
    return path
