"""Synthetic site weather.

The paper's future work plans "to enrich regression models using
contextual information (e.g., meteorological data, fleet movements)".
Construction-site weather is not available offline, so this module
synthesizes a defensible stand-in: daily temperature as a seasonal
sinusoid plus AR(1) weather-system noise, and precipitation as a
seasonally-modulated wet-day process with gamma-distributed amounts —
the standard stochastic weather-generator recipe (Richardson-type).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["WeatherSeries", "WeatherSimulator"]

DAYS_PER_YEAR = 365.25


@dataclass(frozen=True)
class WeatherSeries:
    """Daily site weather aligned with a usage series.

    Attributes
    ----------
    temperature:
        Daily mean temperature, degC.
    precipitation:
        Daily precipitation, mm (0 on dry days).
    """

    temperature: np.ndarray
    precipitation: np.ndarray

    def __post_init__(self) -> None:
        if self.temperature.shape != self.precipitation.shape:
            raise ValueError("temperature and precipitation must align.")
        if self.temperature.ndim != 1:
            raise ValueError("Weather series must be 1-D.")

    @property
    def n_days(self) -> int:
        return int(self.temperature.size)

    def is_freezing(self) -> np.ndarray:
        """Boolean mask of sub-zero days (outdoor work restricted)."""
        return self.temperature < 0.0

    def is_heavy_rain(self, threshold_mm: float = 10.0) -> np.ndarray:
        """Boolean mask of heavy-precipitation days."""
        return self.precipitation >= threshold_mm


class WeatherSimulator:
    """Generate daily weather series.

    Parameters
    ----------
    mean_temperature:
        Yearly mean, degC.
    seasonal_amplitude:
        Half peak-to-trough seasonal swing, degC.
    noise_sd:
        Standard deviation of the AR(1) temperature residual.
    ar_coefficient:
        Day-to-day persistence of weather systems (0 <= rho < 1).
    wet_day_probability:
        Mean fraction of days with precipitation.
    wet_season_amplitude:
        Relative seasonal modulation of wet-day probability.
    rain_shape, rain_scale_mm:
        Gamma parameters for precipitation amounts on wet days.
    phase:
        Radians; 0 puts the temperature peak at ~mid-year.
    """

    def __init__(
        self,
        mean_temperature: float = 12.0,
        seasonal_amplitude: float = 10.0,
        noise_sd: float = 3.0,
        ar_coefficient: float = 0.7,
        wet_day_probability: float = 0.3,
        wet_season_amplitude: float = 0.4,
        rain_shape: float = 0.9,
        rain_scale_mm: float = 8.0,
        phase: float = 0.0,
    ):
        if not 0.0 <= ar_coefficient < 1.0:
            raise ValueError(
                f"ar_coefficient must be in [0, 1), got {ar_coefficient}."
            )
        if not 0.0 < wet_day_probability < 1.0:
            raise ValueError(
                "wet_day_probability must be in (0, 1), got "
                f"{wet_day_probability}."
            )
        if not 0.0 <= wet_season_amplitude < 1.0:
            raise ValueError(
                "wet_season_amplitude must be in [0, 1), got "
                f"{wet_season_amplitude}."
            )
        if rain_shape <= 0 or rain_scale_mm <= 0:
            raise ValueError("rain_shape and rain_scale_mm must be positive.")
        if noise_sd < 0:
            raise ValueError(f"noise_sd must be >= 0, got {noise_sd}.")
        self.mean_temperature = mean_temperature
        self.seasonal_amplitude = seasonal_amplitude
        self.noise_sd = noise_sd
        self.ar_coefficient = ar_coefficient
        self.wet_day_probability = wet_day_probability
        self.wet_season_amplitude = wet_season_amplitude
        self.rain_shape = rain_shape
        self.rain_scale_mm = rain_scale_mm
        self.phase = phase

    def generate(self, n_days: int, rng=None) -> WeatherSeries:
        """Sample ``n_days`` of weather."""
        if n_days < 0:
            raise ValueError(f"n_days must be >= 0, got {n_days}.")
        rng = np.random.default_rng(rng)
        days = np.arange(n_days)
        season = np.sin(
            2.0 * np.pi * days / DAYS_PER_YEAR - np.pi / 2.0 + self.phase
        )

        # AR(1) residual around the seasonal mean.
        residual = np.zeros(n_days)
        innovation_sd = self.noise_sd * np.sqrt(
            1.0 - self.ar_coefficient**2
        )
        previous = 0.0
        for day in range(n_days):
            previous = (
                self.ar_coefficient * previous
                + rng.normal(0.0, innovation_sd)
            )
            residual[day] = previous
        temperature = (
            self.mean_temperature
            + self.seasonal_amplitude * season
            + residual
        )

        # Wet days: more likely in the cold season (anti-phase to temp).
        wet_probability = np.clip(
            self.wet_day_probability * (1.0 - self.wet_season_amplitude * season),
            0.01,
            0.99,
        )
        wet = rng.random(n_days) < wet_probability
        precipitation = np.zeros(n_days)
        n_wet = int(wet.sum())
        if n_wet:
            precipitation[wet] = rng.gamma(
                self.rain_shape, self.rain_scale_mm, size=n_wet
            )
        return WeatherSeries(
            temperature=temperature, precipitation=precipitation
        )
