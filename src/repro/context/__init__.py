"""Contextual enrichment (the paper's stated future work).

Synthetic site weather, usage/weather coupling, weather-derived model
features with forecast-noise realism, and fleet-movement inference from
utilization gaps.
"""

from .coupling import WeatherCoupling, apply_weather_to_usage
from .features import ContextFeatureBuilder, ContextualDataset
from .movements import (
    RelocationEvent,
    days_since_relocation,
    infer_relocations,
)
from .weather import WeatherSeries, WeatherSimulator

__all__ = [
    "WeatherCoupling",
    "apply_weather_to_usage",
    "ContextFeatureBuilder",
    "ContextualDataset",
    "RelocationEvent",
    "days_since_relocation",
    "infer_relocations",
    "WeatherSeries",
    "WeatherSimulator",
]
