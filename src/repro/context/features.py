"""Contextual feature construction.

Extends the windowed relational layout of
:mod:`repro.dataprep.transformation` with weather-derived columns.  The
causality question matters here: predicting *days to the next
maintenance* is a forward-looking task, so a deployed system would use
*forecast* weather.  :class:`ContextFeatureBuilder` therefore offers
both backward features (recent observed weather, always safe) and
forward features (the next ``forecast_horizon`` days, optionally
perturbed with forecast noise to avoid oracle leakage).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dataprep.transformation import RelationalDataset
from .weather import WeatherSeries

__all__ = ["ContextualDataset", "ContextFeatureBuilder"]


@dataclass(frozen=True)
class ContextualDataset:
    """A relational dataset with appended context columns."""

    X: np.ndarray
    y: np.ndarray
    t_index: np.ndarray
    feature_names: list[str]

    @property
    def n_records(self) -> int:
        return int(self.X.shape[0])


class ContextFeatureBuilder:
    """Append weather features to a relational dataset.

    Parameters
    ----------
    lookback:
        Days of observed weather summarized backward from each record's
        day (mean temperature, total precipitation, rain-stop days).
    forecast_horizon:
        Days of forward weather summarized as forecast features; 0
        disables forward features.
    forecast_noise_sd:
        Gaussian noise added to forward temperature (degC) and
        multiplicative log-noise on forward precipitation, emulating
        real forecast error.
    heavy_rain_mm:
        Threshold used for the rain-day count features.
    seed:
        Seed for the forecast-noise draws.
    """

    def __init__(
        self,
        lookback: int = 7,
        forecast_horizon: int = 7,
        forecast_noise_sd: float = 1.5,
        heavy_rain_mm: float = 10.0,
        seed: int | None = 0,
    ):
        if lookback < 1:
            raise ValueError(f"lookback must be >= 1, got {lookback}.")
        if forecast_horizon < 0:
            raise ValueError(
                f"forecast_horizon must be >= 0, got {forecast_horizon}."
            )
        if forecast_noise_sd < 0:
            raise ValueError(
                f"forecast_noise_sd must be >= 0, got {forecast_noise_sd}."
            )
        self.lookback = lookback
        self.forecast_horizon = forecast_horizon
        self.forecast_noise_sd = forecast_noise_sd
        self.heavy_rain_mm = heavy_rain_mm
        self.seed = seed

    @property
    def feature_names(self) -> list[str]:
        names = [
            f"temp_mean_back{self.lookback}",
            f"precip_sum_back{self.lookback}",
            f"rain_days_back{self.lookback}",
        ]
        if self.forecast_horizon:
            names += [
                f"temp_mean_fwd{self.forecast_horizon}",
                f"precip_sum_fwd{self.forecast_horizon}",
                f"rain_days_fwd{self.forecast_horizon}",
            ]
        return names

    def _window_stats(
        self,
        weather: WeatherSeries,
        start: int,
        stop: int,
        rng: np.random.Generator | None,
    ) -> tuple[float, float, float]:
        start = max(start, 0)
        stop = min(stop, weather.n_days)
        if stop <= start:
            return 0.0, 0.0, 0.0
        temperature = weather.temperature[start:stop].copy()
        precipitation = weather.precipitation[start:stop].copy()
        if rng is not None and self.forecast_noise_sd > 0:
            temperature += rng.normal(
                0.0, self.forecast_noise_sd, size=temperature.size
            )
            precipitation *= np.exp(
                rng.normal(0.0, 0.25, size=precipitation.size)
            )
        rain_days = float(np.sum(precipitation >= self.heavy_rain_mm))
        return (
            float(temperature.mean()),
            float(precipitation.sum()),
            rain_days,
        )

    def augment(
        self, dataset: RelationalDataset, weather: WeatherSeries
    ) -> ContextualDataset:
        """Build the context-extended copy of ``dataset``."""
        if dataset.n_records and dataset.t_index.max() >= weather.n_days:
            raise ValueError(
                "Weather series too short for the dataset's day indices "
                f"(need > {int(dataset.t_index.max())} days, have "
                f"{weather.n_days})."
            )
        rng = (
            np.random.default_rng(self.seed)
            if self.forecast_horizon
            else None
        )
        n_context = len(self.feature_names)
        context = np.zeros((dataset.n_records, n_context))
        for row, day in enumerate(dataset.t_index):
            day = int(day)
            back = self._window_stats(
                weather, day - self.lookback, day, rng=None
            )
            context[row, :3] = back
            if self.forecast_horizon:
                forward = self._window_stats(
                    weather, day, day + self.forecast_horizon, rng=rng
                )
                context[row, 3:] = forward
        return ContextualDataset(
            X=np.hstack([dataset.X, context]),
            y=dataset.y.copy(),
            t_index=dataset.t_index.copy(),
            feature_names=dataset.feature_names + self.feature_names,
        )
