"""Coupling weather to vehicle utilization.

For the contextual-enrichment extension to be testable, the synthetic
fleet must actually *react* to weather — otherwise weather features are
pure noise and no model could benefit.  :func:`apply_weather_to_usage`
post-processes a generated utilization series with the physical effects
outdoor construction knows well: heavy rain suspends work, freezing
days shorten it.
"""

from __future__ import annotations

import numpy as np

from .weather import WeatherSeries

__all__ = ["WeatherCoupling", "apply_weather_to_usage"]


class WeatherCoupling:
    """Parameters of the usage/weather interaction.

    Attributes
    ----------
    heavy_rain_mm:
        Precipitation threshold above which work is (probabilistically)
        suspended.
    rain_stop_probability:
        Chance a heavy-rain day becomes a zero-usage day.
    rain_slowdown:
        Multiplicative usage factor on heavy-rain days that do proceed.
    freezing_slowdown:
        Multiplicative usage factor on sub-zero days.
    """

    def __init__(
        self,
        heavy_rain_mm: float = 10.0,
        rain_stop_probability: float = 0.6,
        rain_slowdown: float = 0.5,
        freezing_slowdown: float = 0.65,
    ):
        if heavy_rain_mm <= 0:
            raise ValueError(
                f"heavy_rain_mm must be positive, got {heavy_rain_mm}."
            )
        if not 0.0 <= rain_stop_probability <= 1.0:
            raise ValueError(
                "rain_stop_probability must be in [0, 1], got "
                f"{rain_stop_probability}."
            )
        for name, value in (
            ("rain_slowdown", rain_slowdown),
            ("freezing_slowdown", freezing_slowdown),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}.")
        self.heavy_rain_mm = heavy_rain_mm
        self.rain_stop_probability = rain_stop_probability
        self.rain_slowdown = rain_slowdown
        self.freezing_slowdown = freezing_slowdown


def apply_weather_to_usage(
    usage,
    weather: WeatherSeries,
    coupling: WeatherCoupling | None = None,
    rng=None,
) -> np.ndarray:
    """Return a copy of ``usage`` modulated by the weather series."""
    usage = np.asarray(usage, dtype=np.float64)
    if usage.ndim != 1:
        raise ValueError(f"usage must be 1-D, got shape {usage.shape}.")
    if usage.size != weather.n_days:
        raise ValueError(
            f"usage has {usage.size} days; weather has {weather.n_days}."
        )
    coupling = coupling or WeatherCoupling()
    rng = np.random.default_rng(rng)

    out = usage.copy()
    heavy = weather.is_heavy_rain(coupling.heavy_rain_mm)
    stopped = heavy & (rng.random(usage.size) < coupling.rain_stop_probability)
    slowed_by_rain = heavy & ~stopped
    out[stopped] = 0.0
    out[slowed_by_rain] *= coupling.rain_slowdown
    out[weather.is_freezing()] *= coupling.freezing_slowdown
    return out
