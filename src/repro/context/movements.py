"""Fleet movement inference.

The second contextual signal the paper's future work names: "fleet
movements".  Telematics rarely labels relocations explicitly; the usable
proxy is the utilization series itself — a long zero-usage run is, with
high probability, a machine parked for transport between sites.  This
module infers relocation events from usage and derives the
``days_since_relocation`` feature stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RelocationEvent", "infer_relocations", "days_since_relocation"]


@dataclass(frozen=True)
class RelocationEvent:
    """One inferred site move.

    Attributes
    ----------
    start, end:
        First and last day index of the idle gap (inclusive).
    """

    start: int
    end: int

    @property
    def n_days(self) -> int:
        return self.end - self.start + 1


def infer_relocations(usage, min_gap_days: int = 10) -> list[RelocationEvent]:
    """Zero-usage runs of at least ``min_gap_days`` become relocations."""
    usage = np.asarray(usage, dtype=np.float64)
    if usage.ndim != 1:
        raise ValueError(f"usage must be 1-D, got shape {usage.shape}.")
    if min_gap_days < 1:
        raise ValueError(f"min_gap_days must be >= 1, got {min_gap_days}.")

    events: list[RelocationEvent] = []
    run_start: int | None = None
    for day, seconds in enumerate(usage):
        if seconds == 0.0:
            if run_start is None:
                run_start = day
        else:
            if run_start is not None and day - run_start >= min_gap_days:
                events.append(RelocationEvent(start=run_start, end=day - 1))
            run_start = None
    if run_start is not None and usage.size - run_start >= min_gap_days:
        events.append(RelocationEvent(start=run_start, end=usage.size - 1))
    return events


def days_since_relocation(
    usage, min_gap_days: int = 10, *, horizon: int = 365
) -> np.ndarray:
    """Per-day count of days since the last inferred relocation ended.

    Days before any relocation get ``horizon`` (a "long time ago" cap,
    which also bounds the feature's range for the models).
    """
    usage = np.asarray(usage, dtype=np.float64)
    events = infer_relocations(usage, min_gap_days=min_gap_days)
    out = np.full(usage.size, float(horizon))
    last_end: int | None = None
    event_iter = iter(events)
    current = next(event_iter, None)
    for day in range(usage.size):
        while current is not None and day > current.end:
            last_end = current.end
            current = next(event_iter, None)
        if current is not None and current.start <= day <= current.end:
            out[day] = 0.0  # mid-relocation
        elif last_end is not None:
            out[day] = min(float(day - last_end), float(horizon))
    return out
