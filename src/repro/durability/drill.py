"""SIGKILL kill-recovery drill: the durability layer's acid test.

The drill proves the acknowledged-write guarantee end to end, with a
*real* process death (no mocked crash):

1. write a deterministic op stream (``records.jsonl``) to a work dir;
2. spawn a worker subprocess (``python -m repro.durability.drill``)
   that recovers a service from the state dir, applies ops one by one,
   and appends ``"<applied> <durable_seq>"`` to an acks file after
   each — the drill's stand-in for a client-visible acknowledgement;
3. poll the acks file until the worker has applied ``kill_after`` ops,
   then ``SIGKILL`` it mid-ingest — no atexit, no flush, no cleanup;
4. optionally tear the journal tail (the torn-write fault site);
5. recover a fresh service from the same state dir and compare it to a
   *reference* service built by applying the journaled op prefix to a
   blank service in-process.

Equivalence is exact: every recovered forecast must be bit-identical
to the reference's (``Forecast.to_dict`` equality) and the fleet
health reports must match — and the journal's high-water mark must
cover at least the last *durably acked* op (records past it may
survive too; acknowledged ones must).

Everything is deterministic given the seed except the kill point
itself, which only moves *where* the prefix ends — never what the
recovered state looks like for that prefix.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from .config import DurabilityConfig
from .recovery import RecoveryManager

__all__ = ["apply_op", "generate_ops", "kill_recovery_drill"]

#: Drill fleet configuration shared by worker and reference service.
_DRILL_T_V = 200_000.0
_DRILL_CONFIG = DurabilityConfig(fsync_every=8, checkpoint_every=32)


def _build_service(t_v: float = _DRILL_T_V):
    """One drill service: guarded, cached, no monitor (ingest-only)."""
    from ..serving.reliability import IngestionGuard
    from ..serving.service import MaintenancePredictionService

    return MaintenancePredictionService(
        t_v=t_v,
        window=0,
        algorithm="LR",
        guard=IngestionGuard(),
        cycle_cache=True,
    )


def apply_op(service, op: dict) -> None:
    """Apply one drill op; swallows the per-op errors ops can raise."""
    try:
        if op["op"] == "register":
            service.register_vehicle(op["v"])
        elif op["op"] == "ingest":
            service.ingest(op["v"], float(op["s"]), day=op.get("d"))
        elif op["op"] == "series":
            service.ingest_series(op["v"], op["u"], start_day=op.get("d0"))
        else:
            raise ValueError(f"unknown drill op {op['op']!r}")
    except (ValueError, KeyError):
        pass


def generate_ops(n_vehicles: int, days: int, seed: int) -> list[dict]:
    """Deterministic op stream; every op journals exactly one record.

    Registers the fleet, seeds each vehicle with a short bulk history,
    then streams per-day ingests with ~5 % dirty values (NaN, negative,
    over-ceiling) so the guard's screening state is exercised too.
    """
    rng = np.random.default_rng(seed)
    ids = [f"drill{i:02d}" for i in range(n_vehicles)]
    ops: list[dict] = [{"op": "register", "v": vid} for vid in ids]
    history = 4
    for vid in ids:
        seed_usage = rng.uniform(10_000.0, 40_000.0, size=history)
        ops.append(
            {"op": "series", "v": vid, "u": list(seed_usage), "d0": 0}
        )
    for day in range(history, history + days):
        for vid in ids:
            value = float(rng.uniform(10_000.0, 40_000.0))
            roll = float(rng.random())
            if roll < 0.02:
                value = float("nan")
            elif roll < 0.035:
                value = -value
            elif roll < 0.05:
                value = 86_400.0 + value
            ops.append({"op": "ingest", "v": vid, "s": value, "d": day})
    return ops


# -- worker subprocess ----------------------------------------------------


def _worker_main(argv: list[str] | None = None) -> int:
    """``python -m repro.durability.drill``: the killable worker."""
    parser = argparse.ArgumentParser(
        description="kill-recovery drill worker (internal)"
    )
    parser.add_argument("--state", required=True)
    parser.add_argument("--records", required=True)
    parser.add_argument("--acks", required=True)
    parser.add_argument("--t-v", type=float, default=_DRILL_T_V)
    parser.add_argument("--throttle-ms", type=float, default=0.0)
    args = parser.parse_args(argv)

    ops = [
        json.loads(line)
        for line in Path(args.records).read_text("utf-8").splitlines()
        if line.strip()
    ]
    service = _build_service(args.t_v)
    manager = RecoveryManager(
        args.state, service, config=_DRILL_CONFIG
    )
    manager.recover()
    acks = open(args.acks, "a", encoding="utf-8")
    for index, op in enumerate(ops, start=1):
        apply_op(service, op)
        manager.maybe_checkpoint()
        # Ack = op applied + its journal position durable-or-not; the
        # driver treats ops with seq <= durable_seq as acknowledged.
        acks.write(f"{index} {manager.journal.durable_seq}\n")
        acks.flush()
        if args.throttle_ms > 0:
            time.sleep(args.throttle_ms / 1000.0)
    acks.close()
    manager.close()
    return 0


def _read_acks(path: Path) -> tuple[int, int]:
    """(ops applied, durable seq at last ack) from the acks file."""
    applied = durable = 0
    try:
        text = path.read_text("utf-8")
    except OSError:
        return 0, 0
    for line in text.splitlines():
        parts = line.split()
        if len(parts) == 2:
            try:
                applied, durable = int(parts[0]), int(parts[1])
            except ValueError:
                continue
    return applied, durable


# -- the drill ------------------------------------------------------------


def kill_recovery_drill(
    work_dir,
    *,
    n_vehicles: int = 4,
    days: int = 40,
    seed: int = 0,
    kill_after: int | None = None,
    t_v: float = _DRILL_T_V,
    torn_tail: bool = False,
    throttle_ms: float = 2.0,
    timeout_s: float = 60.0,
) -> dict:
    """Run one kill-recovery drill; returns the equivalence report.

    ``kill_after`` is the op count after which the worker is SIGKILLed
    (default: halfway).  ``torn_tail`` additionally truncates the
    journal's final record before recovery, exercising the torn-write
    repair path on top of the process death.  The work dir is wiped
    and recreated; it is left behind for inspection (and for the CI
    ``repro recover --dry-run`` smoke).
    """
    work_dir = Path(work_dir)
    if work_dir.exists():
        shutil.rmtree(work_dir)
    state_dir = work_dir / "state"
    work_dir.mkdir(parents=True)

    ops = generate_ops(n_vehicles, days, seed)
    if kill_after is None:
        kill_after = len(ops) // 2
    kill_after = max(1, min(kill_after, len(ops)))
    records_path = work_dir / "records.jsonl"
    records_path.write_text(
        "".join(json.dumps(op) + "\n" for op in ops), "utf-8"
    )
    acks_path = work_dir / "acks.log"
    acks_path.touch()

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    worker = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.durability.drill",
            "--state",
            str(state_dir),
            "--records",
            str(records_path),
            "--acks",
            str(acks_path),
            "--t-v",
            str(t_v),
            "--throttle-ms",
            str(throttle_ms),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )

    deadline = time.monotonic() + timeout_s
    killed = False
    applied_acked = durable_acked = 0
    while time.monotonic() < deadline:
        applied_acked, durable_acked = _read_acks(acks_path)
        if applied_acked >= kill_after:
            worker.kill()  # SIGKILL: no atexit, no flush, no cleanup
            killed = True
            break
        if worker.poll() is not None:
            break  # finished every op before the kill point
        time.sleep(0.005)
    if not killed and worker.poll() is None:
        worker.kill()
        stderr = worker.communicate()[1]
        raise TimeoutError(
            f"drill worker stalled at {applied_acked}/{kill_after} acked "
            f"ops within {timeout_s}s: {stderr.decode(errors='replace')}"
        )
    stderr = worker.communicate()[1]
    if not killed and worker.returncode != 0:
        raise RuntimeError(
            f"drill worker failed before the kill point: "
            f"{stderr.decode(errors='replace')}"
        )
    applied_acked, durable_acked = _read_acks(acks_path)

    torn = 0
    if torn_tail:
        from ..serving.faults import tear_journal_tail

        torn = tear_journal_tail(state_dir / "journal")

    # Recover a fresh service from whatever the dead worker left.
    recovered = _build_service(t_v)
    manager = RecoveryManager(state_dir, recovered, config=_DRILL_CONFIG)
    report = manager.recover()
    last_seq = report.last_seq

    # Acknowledged-write guarantee: every op whose journal record was
    # durable at ack time must have survived the kill (and the torn
    # tail can only eat a not-yet-acknowledged record).
    acked_survived = last_seq >= durable_acked

    # Reference: the same op prefix applied in-process, no crash.  Ops
    # map 1:1 onto journal seqs, so ops[:last_seq] is the journaled
    # prefix the recovered service must reproduce exactly.
    reference = _build_service(t_v)
    for op in ops[:last_seq]:
        apply_op(reference, op)

    ready = [
        vid
        for vid in reference.vehicle_ids
        if reference.n_days(vid) > reference.window
    ]
    reference_forecasts = {
        vid: reference.predict(vid).to_dict() for vid in ready
    }
    recovered_forecasts = {
        vid: recovered.predict(vid).to_dict() for vid in ready
    }
    forecasts_match = reference_forecasts == recovered_forecasts
    health_match = (
        reference.health().as_dict() == recovered.health().as_dict()
    )
    manager.close()

    return {
        "ok": bool(
            killed and acked_survived and forecasts_match and health_match
        ),
        "killed": killed,
        "ops_total": len(ops),
        "kill_after": kill_after,
        "applied_acked": applied_acked,
        "durable_acked": durable_acked,
        "last_seq": last_seq,
        "acked_survived": acked_survived,
        "replayed": report.replayed,
        "checkpoint_seq": report.checkpoint_seq,
        "checkpoints_discarded": report.checkpoints_discarded,
        "lock_stolen": report.lock_stolen,
        "torn_tail": bool(torn_tail),
        "torn_bytes": torn,
        "torn_records_dropped": report.torn_records_dropped,
        "forecasts_match": forecasts_match,
        "health_match": health_match,
        "vehicles_compared": len(ready),
    }


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(_worker_main())
