"""Startup recovery: checkpoint load + journal replay behind a lock fence.

:class:`RecoveryManager` owns the on-disk state directory::

    <state_dir>/
        service.lock        pid lock file (double-start fence)
        journal/            write-ahead journal segments
        checkpoints/        ckpt-*.json generations

``recover()`` acquires the lock, opens (and repairs) the journal, loads
the newest valid checkpoint, replays journal records past the
checkpoint's high-water mark by re-executing the same service methods
with journaling suspended, and only then wires the journal into the
service and reports ready.  Replay is deterministic: the journal holds
the *requested* mutations (pre-guard), so re-execution routes every
record through the same guard/clamp/quarantine logic and reproduces the
applied state exactly — including records that originally raised.

Recovery metrics and spans flow through :mod:`repro.obs` when an
:class:`~repro.obs.Observability` bundle is attached.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path

from ..obs import tracing
from .checkpoint import CheckpointManager
from .config import DurabilityConfig
from .journal import JournalRecord, WriteAheadJournal, decode_f64

__all__ = [
    "LOCK_FILENAME",
    "LockFile",
    "LockHeldError",
    "RecoveryError",
    "RecoveryManager",
    "RecoveryReport",
    "build_service_from_state",
]

LOCK_FILENAME = "service.lock"


class RecoveryError(RuntimeError):
    """Recovery could not produce a consistent service state."""


class LockHeldError(RuntimeError):
    """Another live process holds the state-directory lock."""

    def __init__(self, path: Path, pid: int):
        self.path = path
        self.pid = pid
        super().__init__(
            f"State directory lock {path} is held by live pid {pid}."
        )


class LockFile:
    """Pid-based lock file fencing a state directory against double-start.

    A lock left behind by a SIGKILLed process is *stale*: the recorded
    pid no longer exists, so :meth:`acquire` deletes it and takes the
    lock (``stolen`` is set for the recovery report).  A lock whose pid
    is alive raises :exc:`LockHeldError` — two journaling writers on
    one directory would interleave segments and corrupt the log.
    """

    def __init__(self, path):
        self.path = Path(path)
        self.held = False
        self.stolen = False

    @staticmethod
    def _pid_alive(pid: int) -> bool:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        except PermissionError:
            return True  # exists, owned by someone else
        return True

    def read_pid(self) -> int | None:
        """Pid recorded in the lock file; ``None`` if absent/garbled."""
        try:
            return int(self.path.read_text("ascii").strip())
        except (OSError, ValueError):
            return None

    def acquire(self) -> None:
        if self.held:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        for _ in range(16):  # bounded: steal/retry races are rare
            try:
                fd = os.open(
                    self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
                )
            except FileExistsError:
                pid = self.read_pid()
                if pid is not None and pid != os.getpid() and self._pid_alive(pid):
                    raise LockHeldError(self.path, pid)
                # Stale (dead pid) or unreadable: steal it.
                try:
                    self.path.unlink()
                except FileNotFoundError:
                    pass
                self.stolen = True
                continue
            try:
                os.write(fd, str(os.getpid()).encode("ascii"))
                os.fsync(fd)
            finally:
                os.close(fd)
            self.held = True
            return
        raise RecoveryError(f"Could not acquire lock {self.path}.")

    def release(self) -> None:
        if not self.held:
            return
        self.held = False
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "LockFile":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()


@dataclass(frozen=True)
class RecoveryReport:
    """What one :meth:`RecoveryManager.recover` call did."""

    checkpoint_seq: int          # 0 = cold start, no checkpoint
    replayed: int                # journal records re-executed
    replay_errors: int           # records whose re-execution raised
    torn_records_dropped: int    # torn tails truncated on journal open
    checkpoints_discarded: int   # corrupt generations quarantined
    lock_stolen: bool
    last_seq: int                # journal high-water mark after open
    duration_s: float

    def as_dict(self) -> dict:
        return {
            "checkpoint_seq": self.checkpoint_seq,
            "replayed": self.replayed,
            "replay_errors": self.replay_errors,
            "torn_records_dropped": self.torn_records_dropped,
            "checkpoints_discarded": self.checkpoints_discarded,
            "lock_stolen": self.lock_stolen,
            "last_seq": self.last_seq,
            "duration_s": self.duration_s,
        }


class RecoveryManager:
    """Owns a service's durable state directory across restarts.

    Parameters
    ----------
    state_dir:
        Directory holding lock file, ``journal/`` and ``checkpoints/``.
    service:
        A :class:`~repro.serving.service.MaintenancePredictionService`
        to recover into and journal from.
    config:
        :class:`~repro.durability.config.DurabilityConfig`.
    obs:
        Optional :class:`~repro.obs.Observability`; recovery emits
        ``durability.*`` counters, a ``durability.recover`` span and a
        recovery event through it.
    """

    def __init__(self, state_dir, service, *, config=None, obs=None):
        self.state_dir = Path(state_dir)
        self.service = service
        self.config = config or DurabilityConfig()
        self.obs = obs
        self.lock = LockFile(self.state_dir / LOCK_FILENAME)
        self.journal: WriteAheadJournal | None = None
        self.checkpoints = CheckpointManager(
            self.state_dir / "checkpoints", keep=self.config.keep_checkpoints
        )
        self.ready = False
        self.report: RecoveryReport | None = None
        self.last_checkpoint_seq = 0
        self.checkpoints_taken = 0

    # -- recovery ----------------------------------------------------------

    def _apply(self, record: JournalRecord) -> None:
        """Re-execute one journal record against the service."""
        payload = record.payload
        if record.kind == "register":
            self.service.register_vehicle(payload["v"])
        elif record.kind == "ingest":
            self.service.ingest(
                payload["v"], float(payload["s"]), day=payload.get("d")
            )
        elif record.kind == "series":
            self.service.ingest_series(
                payload["v"],
                decode_f64(payload["u"]),
                start_day=payload.get("d0"),
            )
        elif record.kind == "day":
            values = decode_f64(payload["u"])
            day = payload.get("d")
            # A record without "vs" covered the whole registered fleet
            # when it was written; replay is deterministic re-execution,
            # so the sorted registry rebuilt by the preceding "register"
            # records is the column order.
            ids = payload.get("vs")
            if ids is None:
                ids = self.service.vehicle_ids
                if len(ids) != len(values):
                    raise RecoveryError(
                        f"fleet-wide day record at seq {record.seq} has "
                        f"{len(values)} values for {len(ids)} registered "
                        "vehicles"
                    )
            for vehicle_id, seconds in zip(ids, values):
                self.service.ingest(vehicle_id, float(seconds), day=day)
        elif record.kind == "lifecycle":
            # Replay passes no predictor: the promoted/pinned artifact
            # is reloaded from the model store when still present (bit
            # identical), otherwise the service drops to deterministic
            # lazy retraining for that vehicle.
            self.service.apply_lifecycle_event(
                payload["a"],
                payload["v"],
                version=payload.get("ver"),
                trained_cycles=payload.get("c"),
                reason=payload.get("r"),
            )
        else:
            raise RecoveryError(
                f"Unknown journal record kind {record.kind!r} "
                f"at seq {record.seq}."
            )

    def recover(self) -> RecoveryReport:
        """Lock, load checkpoint, replay journal, wire up journaling.

        Idempotent per process lifetime: a second call returns the
        stored report.  Raises :exc:`LockHeldError` when another live
        process owns the directory and :exc:`RecoveryError` when the
        on-disk state is unrecoverable (e.g. a pruned journal with no
        readable checkpoint).
        """
        if self.ready and self.report is not None:
            return self.report
        started = time.perf_counter()
        preloaded = bool(getattr(self.service, "vehicle_ids", None))
        self.lock.acquire()
        try:
            with tracing.span("durability.recover", dir=str(self.state_dir)):
                self.journal = WriteAheadJournal(
                    self.state_dir / "journal",
                    fsync_every=self.config.fsync_every,
                    segment_max_bytes=self.config.segment_max_bytes,
                )
                checkpoint = self.checkpoints.load_latest()
                replay_from = 0
                if checkpoint is not None:
                    try:
                        self.service.load_state_dict(checkpoint.state)
                    except ValueError as exc:
                        raise RecoveryError(
                            f"Checkpoint seq {checkpoint.seq} does not fit "
                            f"this service: {exc}"
                        ) from exc
                    replay_from = checkpoint.seq
                    self.last_checkpoint_seq = checkpoint.seq
                else:
                    first = self.journal.first_seq
                    if first is not None and first != 1:
                        raise RecoveryError(
                            f"Journal starts at seq {first} but no readable "
                            "checkpoint covers the pruned prefix."
                        )
                replayed = 0
                replay_errors = 0
                suspend = getattr(self.service, "journal_suspended", None)
                for record in self.journal.replay(after_seq=replay_from):
                    replayed += 1
                    try:
                        if suspend is not None:
                            with suspend():
                                self._apply(record)
                        else:
                            self._apply(record)
                    except RecoveryError:
                        raise
                    except Exception:
                        # The original execution raised the same way
                        # (deterministic re-execution); the record still
                        # advances the high-water mark.
                        replay_errors += 1
        except BaseException:
            if self.journal is not None:
                self.journal.close()
                self.journal = None
            self.lock.release()
            raise

        # Journal-before-apply from here on.
        self.service.journal = self.journal
        self.ready = True
        if preloaded:
            # Vehicles registered before recover() exist only in this
            # process's memory — neither the journal nor any checkpoint
            # covers them.  Snapshot immediately so a crash cannot
            # silently rewind the preload, and so fleet-wide ``day``
            # records (which omit the id list) always replay against
            # the full registry.
            self.checkpoint()
        self.report = RecoveryReport(
            checkpoint_seq=replay_from,
            replayed=replayed,
            replay_errors=replay_errors,
            torn_records_dropped=self.journal.torn_records_dropped,
            checkpoints_discarded=self.checkpoints.discarded,
            lock_stolen=self.lock.stolen,
            last_seq=self.journal.last_seq,
            duration_s=time.perf_counter() - started,
        )
        if self.obs is not None:
            counters = {
                "durability.recover.replayed": replayed,
                "durability.recover.replay_errors": replay_errors,
                "durability.recover.torn_dropped":
                    self.report.torn_records_dropped,
                "durability.recover.checkpoints_discarded":
                    self.report.checkpoints_discarded,
            }
            for name, value in counters.items():
                if value:
                    self.obs.registry.counter(name).inc(value)
            self.obs.events.emit(
                "durability.recovered", **self.report.as_dict()
            )
        return self.report

    # -- checkpointing -----------------------------------------------------

    def checkpoint(self) -> int:
        """Snapshot current state at the journal high-water mark.

        Syncs the journal first so the checkpoint never covers records
        that could still be lost, then prunes journal segments wholly
        below the oldest retained generation.
        """
        if self.journal is None:
            raise RecoveryError("checkpoint() before recover().")
        with tracing.span("durability.checkpoint"):
            self.journal.sync()
            seq = self.journal.last_seq
            state = self.service.state_dict()
            self.checkpoints.save(state, seq=seq)
            self.last_checkpoint_seq = seq
            self.checkpoints_taken += 1
            oldest = self.checkpoints.oldest_retained_seq()
            if oldest:
                self.journal.prune(oldest)
        if self.obs is not None:
            self.obs.registry.counter("durability.checkpoints").inc()
        return seq

    def maybe_checkpoint(self) -> bool:
        """Checkpoint if ``checkpoint_every`` records accrued since last."""
        if not self.ready or self.journal is None:
            return False
        pending = self.journal.last_seq - self.last_checkpoint_seq
        if pending < self.config.checkpoint_every:
            return False
        self.checkpoint()
        return True

    def on_ingest_batch(self) -> None:
        """Gateway hook after each acknowledged ingest batch."""
        if not self.ready or self.journal is None:
            return
        if self.config.sync_on_ack:
            self.journal.sync()
        self.maybe_checkpoint()

    # -- lifecycle ---------------------------------------------------------

    def status(self) -> dict:
        """Counter view for readiness payloads and the metrics registry."""
        return {
            "ready": self.ready,
            "checkpoint_seq": self.last_checkpoint_seq,
            "checkpoints_taken": self.checkpoints_taken,
            "journal": self.journal.stats() if self.journal else None,
            "checkpoints": self.checkpoints.stats(),
            "recovery": self.report.as_dict() if self.report else None,
        }

    def close(self, *, checkpoint: bool = True) -> None:
        """Final checkpoint (by default), close the journal, drop the lock."""
        if self.ready and checkpoint and self.journal is not None:
            self.checkpoint()
        if self.service is not None and getattr(self.service, "journal", None):
            self.service.journal = None
        if self.journal is not None:
            self.journal.close()
            self.journal = None
        self.lock.release()
        self.ready = False

    def __enter__(self) -> "RecoveryManager":
        self.recover()
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def build_service_from_state(state: dict, **kwargs):
    """Construct a service compatible with a checkpoint's fingerprint.

    The checkpoint stores the service *configuration fingerprint*
    (``t_v``, ``window``, ``algorithm``) plus the guard/breaker/monitor
    state dicts.  This helper rebuilds matching components so
    ``load_state_dict`` accepts the snapshot — the ``repro recover``
    CLI path, where no pre-built service exists.  Extra ``kwargs``
    (e.g. ``store``, ``cycle_cache``) pass through to the service
    constructor.
    """
    from ..serving.monitoring import DriftMonitor
    from ..serving.reliability import CircuitBreaker, IngestionGuard
    from ..serving.service import MaintenancePredictionService

    config = state.get("config")
    if not isinstance(config, dict):
        raise RecoveryError("Checkpoint state has no config fingerprint.")
    guard = None
    if state.get("guard") is not None:
        guard = IngestionGuard.from_state(state["guard"])
    breaker = None
    if state.get("breaker") is not None:
        breaker = CircuitBreaker.from_state(state["breaker"])
    monitor = None
    if state.get("monitor") is not None:
        monitor = DriftMonitor.from_state(state["monitor"])
    service = MaintenancePredictionService(
        t_v=float(config["t_v"]),
        window=int(config["window"]),
        algorithm=str(config["algorithm"]),
        guard=guard,
        breaker=breaker,
        monitor=monitor,
        **kwargs,
    )
    service.load_state_dict(state)
    return service
