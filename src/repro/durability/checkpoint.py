"""Atomic, checksummed engine-state checkpoints with retained generations.

A checkpoint is one JSON payload file plus a SHA-256 sidecar::

    ckpt-000000002048.json      {"schema": 1, "seq": 2048, "state": {...}}
    ckpt-000000002048.sha256    <hex digest of the payload bytes>

The file name carries the journal sequence number the snapshot covers:
recovery loads the newest *valid* generation and replays journal
records past that mark.  Payloads are written with
:func:`~repro.serving.persistence.atomic_write_bytes` (temp + fsync +
rename + directory fsync), so a crash mid-checkpoint leaves either the
previous generation intact or a complete new one — never a torn file
that parses.  A generation whose payload is unreadable, whose digest
diverges, or whose sidecar is missing is *corrupt*: it is moved to the
``quarantine/`` subdirectory for inspection and the loader falls back
to the next-newest generation, mirroring the
:class:`~repro.serving.persistence.ModelStore` fallback contract.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

from ..serving.persistence import atomic_write_bytes

__all__ = ["Checkpoint", "CheckpointCorruptError", "CheckpointManager"]

_SCHEMA_VERSION = 1
_PREFIX = "ckpt-"
_SUFFIX = ".json"
_SIDECAR_SUFFIX = ".sha256"
_QUARANTINE_DIR = "quarantine"


class CheckpointCorruptError(ValueError):
    """A stored checkpoint generation could not be read back."""

    def __init__(self, seq: int, reason: str):
        self.seq = seq
        self.reason = reason
        super().__init__(f"Corrupt checkpoint seq {seq}: {reason}")


@dataclass(frozen=True)
class Checkpoint:
    """One loaded checkpoint: journal high-water mark plus state."""

    seq: int
    state: dict
    path: Path


class CheckpointManager:
    """Directory of N retained checkpoint generations.

    Parameters
    ----------
    root:
        Checkpoint directory (created if missing).
    keep:
        Generations retained; :meth:`save` prunes older ones.
    """

    def __init__(self, root, *, keep: int = 3):
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}.")
        self.root = Path(root)
        self.keep = keep
        self.root.mkdir(parents=True, exist_ok=True)
        self.saved = 0
        self.discarded = 0  # corrupt generations quarantined on load

    # -- paths -------------------------------------------------------------

    def _path(self, seq: int) -> Path:
        return self.root / f"{_PREFIX}{seq:012d}{_SUFFIX}"

    @staticmethod
    def _sidecar(path: Path) -> Path:
        return path.with_suffix(_SIDECAR_SUFFIX)

    def seqs(self) -> list[int]:
        """Stored generation sequence numbers, ascending."""
        found = []
        for path in self.root.glob(f"{_PREFIX}*{_SUFFIX}"):
            stem = path.name[len(_PREFIX): -len(_SUFFIX)]
            try:
                found.append(int(stem))
            except ValueError:
                continue
        return sorted(found)

    # -- writing -----------------------------------------------------------

    def save(self, state: dict, *, seq: int) -> Path:
        """Persist one generation durably; prunes beyond ``keep``.

        The payload lands (fsynced) before its sidecar, so a crash
        between the two leaves a digest-less payload — treated as
        corrupt on load, falling back to the previous generation.
        """
        if seq < 0:
            raise ValueError(f"seq must be >= 0, got {seq}.")
        body = json.dumps(
            {"schema": _SCHEMA_VERSION, "seq": seq, "state": state},
            separators=(",", ":"),
            sort_keys=True,
            allow_nan=True,
        ).encode("utf-8")
        path = self._path(seq)
        atomic_write_bytes(path, body, fsync=True)
        atomic_write_bytes(
            self._sidecar(path),
            hashlib.sha256(body).hexdigest().encode("ascii"),
            fsync=True,
        )
        self.saved += 1
        self.prune()
        return path

    def prune(self) -> int:
        """Drop generations beyond ``keep`` (oldest first)."""
        seqs = self.seqs()
        removed = 0
        for seq in seqs[: max(0, len(seqs) - self.keep)]:
            path = self._path(seq)
            path.unlink(missing_ok=True)
            self._sidecar(path).unlink(missing_ok=True)
            removed += 1
        return removed

    def oldest_retained_seq(self) -> int | None:
        seqs = self.seqs()
        return seqs[0] if seqs else None

    def latest_seq(self) -> int | None:
        seqs = self.seqs()
        return seqs[-1] if seqs else None

    # -- reading -----------------------------------------------------------

    def _load(self, seq: int) -> Checkpoint:
        path = self._path(seq)
        try:
            body = path.read_bytes()
        except OSError as exc:
            raise CheckpointCorruptError(seq, f"unreadable payload: {exc}")
        try:
            expected = self._sidecar(path).read_text("ascii").strip()
        except OSError as exc:
            raise CheckpointCorruptError(seq, f"missing sidecar: {exc}")
        digest = hashlib.sha256(body).hexdigest()
        if digest != expected:
            raise CheckpointCorruptError(
                seq,
                f"checksum mismatch (stored {expected[:12]}…, "
                f"payload {digest[:12]}…)",
            )
        try:
            obj = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CheckpointCorruptError(seq, f"malformed JSON ({exc})")
        if not isinstance(obj, dict) or obj.get("schema") != _SCHEMA_VERSION:
            raise CheckpointCorruptError(
                seq,
                f"schema {obj.get('schema') if isinstance(obj, dict) else obj!r};"
                f" expected {_SCHEMA_VERSION}",
            )
        if obj.get("seq") != seq:
            raise CheckpointCorruptError(
                seq, f"embedded seq {obj.get('seq')!r} does not match file name"
            )
        state = obj.get("state")
        if not isinstance(state, dict):
            raise CheckpointCorruptError(seq, "state is not an object")
        return Checkpoint(seq=seq, state=state, path=path)

    def _quarantine(self, seq: int) -> None:
        directory = self.root / _QUARANTINE_DIR
        directory.mkdir(parents=True, exist_ok=True)
        path = self._path(seq)
        for victim in (path, self._sidecar(path)):
            if victim.exists():
                os.replace(victim, directory / victim.name)

    def load_latest(self, *, quarantine: bool = True) -> Checkpoint | None:
        """Newest valid generation, or ``None`` when none is readable.

        Corrupt generations are moved to ``quarantine/`` (unless
        ``quarantine=False`` — the read-only ``--dry-run`` posture) and
        the next-newest one is tried.
        """
        for seq in reversed(self.seqs()):
            try:
                return self._load(seq)
            except CheckpointCorruptError:
                self.discarded += 1
                if quarantine:
                    self._quarantine(seq)
        return None

    def stats(self) -> dict:
        """Counter view for the ``durability`` metrics section."""
        seqs = self.seqs()
        return {
            "generations": len(seqs),
            "latest_seq": seqs[-1] if seqs else None,
            "saved": self.saved,
            "discarded": self.discarded,
        }
