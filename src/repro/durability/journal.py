"""Write-ahead ingestion journal: append-only, CRC-framed, crash-safe.

The journal is a directory of JSON-lines *segments*.  Each line frames
one record::

    {"k":"ingest","q":17,"s":17345.2,"v":"v03","d":12} 1a2b3c4d\n

The JSON object carries the record's monotonically increasing sequence
number (``q``), its kind (``k``) and the kind-specific payload; the
trailing hex token is the CRC-32 of the JSON bytes.  A record is only
*committed* once its full line (CRC included) is on disk — a torn
write at a crash leaves an unparseable or checksum-divergent tail,
which :class:`WriteAheadJournal` truncates away when the directory is
reopened.  Corruption *before* the tail is a different animal (bit
rot, not a crash) and raises :exc:`JournalCorruptError` instead of
being silently dropped.

Durability is batched (group commit): appends go to the OS through a
buffered file and the journal fsyncs once every ``fsync_every``
records (or on :meth:`WriteAheadJournal.sync`).  ``durable_seq``
tracks the last sequence number known to have hit stable storage.

Bulk payloads (``series``/``day`` records) carry their float64 values
as base64 of the raw little-endian bytes (:func:`encode_f64`), so
replay is bit-exact — including NaN payloads from dirty telemetry
feeds — and the per-reading encode cost on the bulk ingest hot path
is a few tens of nanoseconds instead of a ``repr`` per float.
"""

from __future__ import annotations

import base64
import json
import os
import zlib
from collections.abc import Iterator
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = [
    "JournalCorruptError",
    "JournalRecord",
    "WriteAheadJournal",
    "decode_f64",
    "decode_record",
    "encode_f64",
    "encode_record",
]

_SEGMENT_PREFIX = "seg-"
_SEGMENT_SUFFIX = ".jrnl"

#: Record kinds the serving layer writes (recovery refuses others).
RECORD_KINDS = ("register", "ingest", "series", "day", "lifecycle")


class JournalCorruptError(ValueError):
    """The journal holds damage that torn-tail repair cannot explain.

    Raised for checksum/parse failures *before* the final record of
    the final segment, non-monotonic sequence numbers, and corrupt
    segment file names — all signs of bit rot or tampering rather
    than a crash mid-append.
    """


@dataclass(frozen=True)
class JournalRecord:
    """One committed journal record: sequence number, kind, payload."""

    seq: int
    kind: str
    payload: dict


def _f64_b64(values) -> bytes:
    return base64.b64encode(np.asarray(values, dtype="<f8").tobytes())


def encode_f64(values) -> str:
    """Base64 of the little-endian float64 bytes (bit-exact, NaN-safe)."""
    return _f64_b64(values).decode("ascii")


def decode_f64(data: str) -> np.ndarray:
    """Inverse of :func:`encode_f64` (returns a fresh writable array)."""
    return np.frombuffer(
        base64.b64decode(data.encode("ascii")), dtype="<f8"
    ).copy()


#: Reused encoder: ``json.dumps`` with non-default kwargs constructs a
#: fresh ``JSONEncoder`` per call, which roughly doubles the framing
#: cost on the append hot path.
_JSON_ENCODE = json.JSONEncoder(
    separators=(",", ":"), sort_keys=True, allow_nan=True
).encode


def _fast_fragment(value) -> str | None:
    """JSON fragment for an int or escape-free ASCII string, else None.

    The bulk ``day``/``register`` payloads are exactly ints plus
    base64/vehicle-id strings; emitting them by hand skips the JSON
    encoder's per-call machinery on the amortized ingest hot path.
    ``bool`` is deliberately excluded (``type is int``), and any string
    needing escapes falls back to the full encoder.
    """
    if type(value) is int:
        return str(value)
    if (
        type(value) is str
        and value.isascii()
        and value.isprintable()
        and '"' not in value
        and "\\" not in value
    ):
        return '"' + value + '"'
    return None


def encode_record(seq: int, kind: str, payload: dict) -> bytes:
    """Frame one record as a CRC-terminated JSON line.

    ``numpy`` float arrays among the payload values are encoded with
    :func:`encode_f64` — the serving layer hands bulk readings over as
    arrays and never needs to import this package; the reader knows
    which fields are arrays from the record kind.  Flat int/string
    payloads are framed by hand (identical bytes to the sorted-key
    encoder output); anything else goes through the JSON encoder.
    """
    obj = {"q": seq, "k": kind}
    arrays = None
    for key, value in payload.items():
        if isinstance(value, np.ndarray):
            # Straight to base64 *bytes*: the KB-scale bulk payload
            # never round-trips through str, which saves the
            # decode("ascii") here and the encode("utf-8") of the
            # assembled line below — two full copies plus an escape
            # scan on the amortized ingest hot path.
            if arrays is None:
                arrays = {}
            arrays[key] = _f64_b64(value)
        obj[key] = value
    chunks = [b"{"]
    for i, key in enumerate(sorted(obj)):
        if not (key.isascii() and key.isalnum()):
            chunks = None
            break
        if i:
            chunks.append(b",")
        prefix = b'"%s":' % key.encode("ascii")
        if arrays is not None and key in arrays:
            # Quotes as separate chunks: the join below is the single
            # copy the bulk payload pays for framing.
            chunks += (prefix + b'"', arrays[key], b'"')
        else:
            fragment = _fast_fragment(obj[key])
            if fragment is None:
                chunks = None
                break
            chunks.append(prefix + fragment.encode("ascii"))
    if chunks is not None:
        chunks.append(b"}")
        data = b"".join(chunks)
    else:
        if arrays is not None:
            for key, encoded in arrays.items():
                obj[key] = encoded.decode("ascii")
        data = _JSON_ENCODE(obj).encode("utf-8")
    return data + b" %08x\n" % (zlib.crc32(data),)


def decode_record(line: bytes) -> JournalRecord:
    """Parse one framed line; raises ``ValueError`` on any damage.

    The caller decides whether damage means *torn tail* (truncate) or
    *corruption* (raise :exc:`JournalCorruptError`) from the line's
    position in the segment.
    """
    body, _, crc_token = line.rstrip(b"\n").rpartition(b" ")
    if not body:
        raise ValueError("unframed journal line")
    try:
        expected = int(crc_token, 16)
    except ValueError:
        raise ValueError(f"bad CRC token {crc_token!r}") from None
    actual = zlib.crc32(body)
    if actual != expected:
        raise ValueError(
            f"CRC mismatch (stored {expected:08x}, payload {actual:08x})"
        )
    obj = json.loads(body.decode("utf-8"))
    if not isinstance(obj, dict) or "q" not in obj or "k" not in obj:
        raise ValueError("journal record missing 'q'/'k' fields")
    seq = obj.pop("q")
    kind = obj.pop("k")
    if not isinstance(seq, int) or seq < 1:
        raise ValueError(f"bad sequence number {seq!r}")
    return JournalRecord(seq=seq, kind=kind, payload=obj)


def _segment_name(first_seq: int) -> str:
    return f"{_SEGMENT_PREFIX}{first_seq:012d}{_SEGMENT_SUFFIX}"


def _segment_first_seq(path: Path) -> int:
    stem = path.name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
    try:
        return int(stem)
    except ValueError:
        raise JournalCorruptError(
            f"unparseable segment name {path.name!r}"
        ) from None


@dataclass
class _ScanResult:
    """What a read-only pass over the segment files found."""

    segments: list[Path] = field(default_factory=list)
    records: int = 0
    first_seq: int | None = None
    last_seq: int = 0
    torn_bytes: int = 0  # trailing bytes a repair pass would drop
    torn_segment: Path | None = None
    torn_offset: int = 0


class WriteAheadJournal:
    """Append-only journal over CRC-framed JSON-lines segments.

    Parameters
    ----------
    root:
        Journal directory (created if missing).  Segments are named by
        the sequence number of their first record, so replay can skip
        whole segments below a checkpoint's high-water mark.
    fsync_every:
        Group-commit width — fsync once per N appended records.
    segment_max_bytes:
        Rotate to a fresh segment beyond this size.
    repair:
        Truncate a torn tail on open (the default).  ``repair=False``
        raises :exc:`JournalCorruptError` if a torn tail is present —
        the read-only posture of ``repro recover --dry-run``.
    """

    def __init__(
        self,
        root,
        *,
        fsync_every: int = 64,
        segment_max_bytes: int = 4 * 1024 * 1024,
        repair: bool = True,
    ):
        if fsync_every < 1:
            raise ValueError(f"fsync_every must be >= 1, got {fsync_every}.")
        if segment_max_bytes < 1024:
            raise ValueError(
                f"segment_max_bytes must be >= 1024, got {segment_max_bytes}."
            )
        self.root = Path(root)
        self.fsync_every = fsync_every
        self.segment_max_bytes = segment_max_bytes
        self.root.mkdir(parents=True, exist_ok=True)

        self.records_appended = 0
        self.fsyncs = 0
        self.torn_records_dropped = 0

        scan = self._scan(self.root)
        if scan.torn_bytes:
            if not repair:
                raise JournalCorruptError(
                    f"torn tail of {scan.torn_bytes} bytes in "
                    f"{scan.torn_segment.name} (repair disabled)"
                )
            with open(scan.torn_segment, "r+b") as fh:
                fh.truncate(scan.torn_offset)
                fh.flush()
                os.fsync(fh.fileno())
            self.torn_records_dropped += 1

        self._segments = scan.segments
        self._last_seq = scan.last_seq
        self._durable_seq = scan.last_seq  # on-disk state is durable
        self._pending = 0
        self._file = None
        self._file_size = 0
        # Appends accumulate here and reach the OS on flush/fsync/
        # rotation; a BufferedWriter.write per record costs ~2-3 us of
        # lock + memcpy overhead that a bytearray += avoids.
        self._buffer = bytearray()
        if self._segments:
            tail = self._segments[-1]
            size = tail.stat().st_size
            if size < self.segment_max_bytes:
                self._file = open(tail, "ab")
                self._file_size = size

    # -- scanning ----------------------------------------------------------

    @classmethod
    def _scan(cls, root: Path) -> _ScanResult:
        """Read-only integrity pass over every segment.

        Only the *final* record of the *final* segment may be damaged
        (that is what a crash mid-append produces); anything else
        raises :exc:`JournalCorruptError`.
        """
        result = _ScanResult()
        if not root.is_dir():
            return result
        segments = sorted(
            p
            for p in root.iterdir()
            if p.name.startswith(_SEGMENT_PREFIX)
            and p.name.endswith(_SEGMENT_SUFFIX)
        )
        for path in segments:
            _segment_first_seq(path)  # validates the name
        result.segments = segments
        previous: int | None = None
        for index, path in enumerate(segments):
            is_last_segment = index == len(segments) - 1
            data = path.read_bytes()
            offset = 0
            while offset < len(data):
                newline = data.find(b"\n", offset)
                complete = newline != -1
                end = (newline + 1) if complete else len(data)
                line = data[offset:end]
                record = None
                if complete:
                    try:
                        record = decode_record(line)
                    except ValueError:
                        record = None
                if record is None:
                    # Damaged (or unterminated) line: legal only as
                    # the very tail of the very last segment.
                    if is_last_segment and end == len(data):
                        result.torn_bytes = len(data) - offset
                        result.torn_segment = path
                        result.torn_offset = offset
                        return result
                    raise JournalCorruptError(
                        f"damaged record before the tail in {path.name} "
                        f"at byte {offset}"
                    )
                if previous is None:
                    # A pruned journal legitimately starts past 1; the
                    # first retained record anchors the gap check.
                    if record.seq != _segment_first_seq(path):
                        raise JournalCorruptError(
                            f"segment {path.name} opens at seq "
                            f"{record.seq}, not its named first seq"
                        )
                    result.first_seq = record.seq
                elif record.seq != previous + 1:
                    raise JournalCorruptError(
                        f"sequence gap in {path.name}: {record.seq} "
                        f"after {previous}"
                    )
                previous = record.seq
                result.records += 1
                result.last_seq = record.seq
                offset = end
        return result

    @classmethod
    def scan(cls, root) -> dict:
        """Read-only integrity report (``repro recover --dry-run``)."""
        result = cls._scan(Path(root))
        return {
            "segments": len(result.segments),
            "records": result.records,
            "first_seq": result.first_seq,
            "last_seq": result.last_seq,
            "torn_tail_bytes": result.torn_bytes,
        }

    # -- appending ---------------------------------------------------------

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest appended record (0 = empty)."""
        return self._last_seq

    @property
    def durable_seq(self) -> int:
        """Newest sequence number known fsynced to stable storage."""
        return self._durable_seq

    @property
    def first_seq(self) -> int | None:
        """First retained sequence number (``None`` for an empty journal)."""
        if not self._segments:
            return None
        first = _segment_first_seq(self._segments[0])
        return first if self._last_seq >= first else None

    def segment_count(self) -> int:
        return len(self._segments)

    def _open_segment(self, first_seq: int) -> None:
        path = self.root / _segment_name(first_seq)
        self._segments.append(path)
        self._file = open(path, "ab")
        self._file_size = 0

    def append(self, kind: str, **payload) -> int:
        """Append one record; returns its sequence number.

        The record is written through a buffered file handle — it is
        *committed* (will survive reopening) once the OS has it, and
        *durable* (will survive power loss) once the next group
        commit fsyncs, at the latest after ``fsync_every`` appends.
        """
        seq = self._last_seq + 1
        line = encode_record(seq, kind, payload)
        if self._file is None or self._file_size >= self.segment_max_bytes:
            self._rotate(seq)
        self._buffer += line
        self._file_size += len(line)
        self._last_seq = seq
        self.records_appended += 1
        self._pending += 1
        if self._pending >= self.fsync_every:
            self._fsync()
        return seq

    def _rotate(self, first_seq: int) -> None:
        if self._file is not None:
            self._fsync()
            self._file.close()
        self._open_segment(first_seq)

    def _fsync(self) -> None:
        if self._file is None or self._pending == 0:
            return
        self.flush()
        os.fsync(self._file.fileno())
        self._durable_seq = self._last_seq
        self.fsyncs += 1
        self._pending = 0

    def sync(self) -> int:
        """Force a group commit; returns the durable sequence number."""
        self._fsync()
        return self._durable_seq

    def flush(self) -> None:
        """Push buffered lines to the OS without fsync (commit, not
        durability) — enough for :meth:`replay` to see them."""
        if self._file is not None:
            if self._buffer:
                self._file.write(bytes(self._buffer))
                self._buffer.clear()
            self._file.flush()

    def close(self) -> None:
        if self._file is not None:
            self._fsync()
            self._file.close()
            self._file = None

    # -- replay ------------------------------------------------------------

    def replay(self, after_seq: int = 0) -> Iterator[JournalRecord]:
        """Yield committed records with ``seq > after_seq``, in order.

        Segments wholly below the mark are skipped without reading
        (their name carries their first sequence number).
        """
        self.flush()
        for index, path in enumerate(self._segments):
            nxt = (
                _segment_first_seq(self._segments[index + 1])
                if index + 1 < len(self._segments)
                else None
            )
            if nxt is not None and nxt <= after_seq + 1:
                continue  # the whole segment is at or below the mark
            with open(path, "rb") as fh:
                for line in fh:
                    if not line.endswith(b"\n"):
                        break  # torn tail mid-append from this process
                    try:
                        record = decode_record(line)
                    except ValueError:
                        break
                    if record.seq > after_seq:
                        yield record

    # -- pruning -----------------------------------------------------------

    def prune(self, up_to_seq: int) -> int:
        """Drop whole segments whose records all have ``seq <= up_to_seq``.

        Called after a successful checkpoint; the live (open) segment
        is never dropped.  Returns the number of segments removed.
        """
        removed = 0
        while len(self._segments) > 1:
            nxt_first = _segment_first_seq(self._segments[1])
            if nxt_first - 1 > up_to_seq:
                break
            self._segments[0].unlink()
            self._segments.pop(0)
            removed += 1
        return removed

    def stats(self) -> dict:
        """Counter view for the ``durability`` metrics section."""
        return {
            "last_seq": self._last_seq,
            "durable_seq": self._durable_seq,
            "segments": len(self._segments),
            "records_appended": self.records_appended,
            "fsyncs": self.fsyncs,
            "torn_records_dropped": self.torn_records_dropped,
        }

    def __enter__(self) -> "WriteAheadJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
