"""Shared knobs for the durability subsystem (:class:`DurabilityConfig`).

A separate module (not the package ``__init__``) so the journal,
checkpoint and recovery modules can import it without touching the
package facade — the facade imports *them*.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DurabilityConfig"]


@dataclass(frozen=True)
class DurabilityConfig:
    """Knobs shared by the journal, checkpointer and recovery manager.

    Attributes
    ----------
    fsync_every:
        Group-commit width: the journal fsyncs once every N appended
        records (and on :meth:`~repro.durability.journal.
        WriteAheadJournal.sync`).  ``1`` fsyncs every record.
    segment_max_bytes:
        Rotate to a fresh journal segment once the active one exceeds
        this size.
    checkpoint_every:
        Journal records between periodic checkpoints
        (:meth:`~repro.durability.recovery.RecoveryManager.
        maybe_checkpoint`).
    keep_checkpoints:
        Checkpoint generations retained; older ones (and the journal
        segments wholly below the oldest retained generation) are
        pruned after each successful checkpoint.
    sync_on_ack:
        When the HTTP gateway carries a durability manager, fsync the
        journal before acknowledging each ingest request (ack ⇒
        durable).  Off by default: acknowledged writes are then
        durable up to the ``fsync_every`` group-commit window, the
        standard latency/durability trade.
    """

    fsync_every: int = 64
    segment_max_bytes: int = 4 * 1024 * 1024
    checkpoint_every: int = 2048
    keep_checkpoints: int = 3
    sync_on_ack: bool = False

    def __post_init__(self) -> None:
        if self.fsync_every < 1:
            raise ValueError(
                f"fsync_every must be >= 1, got {self.fsync_every}."
            )
        if self.segment_max_bytes < 1024:
            raise ValueError(
                f"segment_max_bytes must be >= 1024, "
                f"got {self.segment_max_bytes}."
            )
        if self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}."
            )
        if self.keep_checkpoints < 1:
            raise ValueError(
                f"keep_checkpoints must be >= 1, got {self.keep_checkpoints}."
            )
