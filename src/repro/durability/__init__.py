"""Crash-safe durability for the fleet service (``repro.durability``).

Every stateful layer the reproduction grew across PRs 1-4 — cycle
cache, dead letters, fleet health, drift residuals — lived only in
process memory: a crash silently rewound the fleet to zero.  This
package makes the serving state restart-survivable with the classic
write-ahead recipe:

* :class:`~repro.durability.journal.WriteAheadJournal` — append-only
  JSON-lines segments with a per-record CRC, fsync batching (group
  commit), size-based segment rotation and torn-tail truncation on
  open.  Every ingestion mutation is journaled *before* it is applied.
* :class:`~repro.durability.checkpoint.CheckpointManager` — periodic
  atomic snapshots of the full service state (usage histories, guard
  counters, dead letters, breaker states, drift residuals, model
  version pins) with checksum validation, N retained generations and
  fallback to the previous generation on corruption.  A successful
  checkpoint prunes journal segments below the oldest retained
  generation.
* :class:`~repro.durability.recovery.RecoveryManager` — on startup
  loads the newest valid checkpoint, replays journal records past its
  high-water mark (idempotent: replay is keyed by record sequence
  number), emits recovery metrics and spans through :mod:`repro.obs`,
  and only then reports ready — the gateway answers 503 until replay
  completes.  A pid lock file fences against double-start; a stale
  lock left by a killed process is detected and stolen.
* :mod:`~repro.durability.drill` — the SIGKILL kill-recovery harness:
  spawn a journaling worker subprocess, kill it mid-ingest, recover,
  and assert the recovered state is bit-identical to an uninterrupted
  run over the journaled records (``repro chaos --kill-after``).

Everything is stdlib + numpy; determinism mirrors the chaos harness
(seeded inputs replay exactly, recovery is a pure function of the
bytes on disk).
"""

from __future__ import annotations

from .checkpoint import Checkpoint, CheckpointCorruptError, CheckpointManager
from .config import DurabilityConfig
from .journal import (
    JournalCorruptError,
    JournalRecord,
    WriteAheadJournal,
    decode_f64,
    decode_record,
    encode_f64,
    encode_record,
)
from .recovery import (
    LockFile,
    LockHeldError,
    RecoveryError,
    RecoveryManager,
    RecoveryReport,
    build_service_from_state,
)

__all__ = [
    "Checkpoint",
    "CheckpointCorruptError",
    "CheckpointManager",
    "DurabilityConfig",
    "JournalCorruptError",
    "JournalRecord",
    "LockFile",
    "LockHeldError",
    "RecoveryError",
    "RecoveryManager",
    "RecoveryReport",
    "WriteAheadJournal",
    "build_service_from_state",
    "decode_f64",
    "decode_record",
    "encode_f64",
    "encode_record",
]
