"""Shadow evaluation: score a challenger against the serving champion.

A challenger trained off the hot path must prove itself on *recent
resolved outcomes* before it may serve (the Air Force ground-vehicles
study's validate-against-recent-outcomes discipline).  The evaluator
replays the vehicle's most recent days with known ground truth — the
same ``[L(t), u(t-1..t-window)]`` feature rows the serving path builds —
through both models and reports paired absolute-error statistics; the
:class:`~repro.lifecycle.policy.PromotionPolicy` then gates promotion on
them.

Shadow evaluation never mutates serving state: no pending forecasts are
appended, no models installed, no residuals recorded.  The champion
keeps serving untouched while its replacement is scored.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ShadowEvaluator", "ShadowReport"]


@dataclass(frozen=True)
class ShadowReport:
    """Paired champion/challenger error statistics over the shadow window."""

    vehicle_id: str
    n_samples: int
    champion_mae: float
    challenger_mae: float
    champion_worst: float
    challenger_worst: float
    win_rate: float  # fraction of days the challenger was closer (ties ½)

    @property
    def improvement(self) -> float:
        """Mean absolute-error reduction in days (positive = better)."""
        return self.champion_mae - self.challenger_mae

    def as_dict(self) -> dict:
        return {
            "vehicle_id": self.vehicle_id,
            "n_samples": self.n_samples,
            "champion_mae": self.champion_mae,
            "challenger_mae": self.challenger_mae,
            "champion_worst": self.champion_worst,
            "challenger_worst": self.challenger_worst,
            "win_rate": self.win_rate,
            "improvement": self.improvement,
        }


class ShadowEvaluator:
    """Replays recent resolved days through champion and challenger.

    Parameters
    ----------
    window_days:
        Upper bound on shadow samples: the newest that-many days with
        known ground truth are scored.  Recency matters — under concept
        drift the oldest outcomes describe a regime the challenger is
        supposed to replace.
    """

    def __init__(self, window_days: int = 45):
        if window_days < 1:
            raise ValueError(f"window_days must be >= 1, got {window_days}.")
        self.window_days = window_days

    def _shadow_rows(
        self, service, vehicle_id: str
    ) -> tuple[np.ndarray, np.ndarray]:
        """(feature matrix, truth vector) for the newest resolved days.

        Rows use exactly the serving feature layout
        (``service._feature_row``): ``[usage_left[t], usage[t-1],
        ..., usage[t-window]]`` for every day ``t >= window`` whose true
        days-to-maintenance is known (its cycle completed).
        """
        series = service.series(vehicle_id)
        window = service.window
        d_true = series.days_to_maintenance
        days = [
            t
            for t in range(window, series.n_days)
            if np.isfinite(d_true[t])
        ]
        days = days[-self.window_days:]
        rows = np.empty((len(days), window + 1))
        for i, t in enumerate(days):
            rows[i, 0] = series.usage_left[t]
            for lag in range(1, window + 1):
                rows[i, lag] = series.usage[t - lag]
        return rows, d_true[days] if days else np.empty(0)

    def evaluate(
        self, service, vehicle_id: str, champion, challenger
    ) -> ShadowReport:
        """Score both models on the vehicle's shadow window.

        Predictions are clamped at zero exactly as the serving path
        clamps them, so the shadow errors are the errors clients would
        have seen.  With no resolved days yet the report carries
        ``n_samples=0`` (the policy rejects it as insufficient).
        """
        rows, truth = self._shadow_rows(service, vehicle_id)
        if rows.shape[0] == 0:
            nan = float("nan")
            return ShadowReport(
                vehicle_id=vehicle_id,
                n_samples=0,
                champion_mae=nan,
                challenger_mae=nan,
                champion_worst=nan,
                challenger_worst=nan,
                win_rate=nan,
            )
        champ_pred = np.maximum(np.asarray(champion.predict(rows)), 0.0)
        chall_pred = np.maximum(np.asarray(challenger.predict(rows)), 0.0)
        champ_err = np.abs(truth - champ_pred)
        chall_err = np.abs(truth - chall_pred)
        n = rows.shape[0]
        wins = float(np.sum(chall_err < champ_err))
        ties = float(np.sum(chall_err == champ_err))
        return ShadowReport(
            vehicle_id=vehicle_id,
            n_samples=n,
            champion_mae=float(np.mean(champ_err)),
            challenger_mae=float(np.mean(chall_err)),
            champion_worst=float(np.max(champ_err)),
            challenger_worst=float(np.max(chall_err)),
            win_rate=(wins + 0.5 * ties) / n,
        )
