"""Versioned rollback: pin or revert a vehicle to a prior stored model.

Rollback loads the target version with an *exact pin* — no
newest-readable fallback — so the restored model is bit-identical to
what that version served before, or the load raises
:exc:`~repro.serving.persistence.ArtifactCorruptError` and nothing
changes.  The replaced version can optionally be parked in the store's
``quarantine/`` directory for offline inspection.
"""

from __future__ import annotations

__all__ = ["RollbackManager"]


class RollbackManager:
    """Pin/revert vehicles to prior :class:`ModelStore` versions.

    Every action flows through the service's journaled
    ``apply_lifecycle_event`` path, so rollbacks and pins survive a
    crash and replay idempotently like promotions do.
    """

    def __init__(self, engine):
        self.engine = engine
        self.rollbacks = 0
        self.pins = 0
        self.unpins = 0
        self.quarantines = 0

    def _store_and_state(self, vehicle_id: str):
        service = self.engine.service
        if service.store is None:
            raise ValueError(
                "Rollback needs a ModelStore; this service has none."
            )
        return service, service.store, service._state(vehicle_id)

    def rollback(
        self,
        vehicle_id: str,
        version: int | None = None,
        *,
        quarantine_current: bool = False,
        reason: str | None = None,
    ) -> dict:
        """Revert a vehicle to a prior version (newest-prior by default).

        The vehicle is left *pinned* to the target version — a rollback
        that immediately retrains over itself would be pointless — and
        serves it until an operator unpins or a later promotion clears
        the pin.  ``quarantine_current`` parks the replaced version in
        the store's quarantine directory.
        """
        service, store, state = self._store_and_state(vehicle_id)
        key = f"{vehicle_id}.per-vehicle"
        current = state.model_version
        if version is None:
            candidates = [
                v
                for v in store.versions(key)
                if current is None or v < current
            ]
            if not candidates:
                raise ValueError(
                    f"No prior stored version to roll {vehicle_id!r} back "
                    f"to (current: {current})."
                )
            version = candidates[-1]
        # Exact pin: corrupt target raises here and nothing changes.
        artifact = store.load(key, version)
        event = service.apply_lifecycle_event(
            "rollback",
            vehicle_id,
            version=version,
            trained_cycles=int(artifact.metadata.get("trained_cycles", -1)),
            reason=reason or f"rollback from v{current}",
            predictor=artifact.predictor,
        )
        self.rollbacks += 1
        if quarantine_current and current is not None and current != version:
            try:
                store.quarantine(key, current)
                self.quarantines += 1
            except KeyError:
                pass  # already pruned/quarantined
        return event

    def pin(
        self, vehicle_id: str, version: int, *, reason: str | None = None
    ) -> dict:
        """Pin a vehicle to one stored version; no retraining while pinned."""
        service, store, _ = self._store_and_state(vehicle_id)
        artifact = store.load(f"{vehicle_id}.per-vehicle", version)
        event = service.apply_lifecycle_event(
            "pin",
            vehicle_id,
            version=version,
            trained_cycles=int(artifact.metadata.get("trained_cycles", -1)),
            reason=reason or "operator pin",
            predictor=artifact.predictor,
        )
        self.pins += 1
        return event

    def unpin(self, vehicle_id: str, *, reason: str | None = None) -> dict:
        """Release a pin; normal freshness rules apply again."""
        service = self.engine.service
        event = service.apply_lifecycle_event(
            "unpin", vehicle_id, reason=reason or "operator unpin"
        )
        self.unpins += 1
        return event

    def counters(self) -> dict:
        return {
            "rollbacks": self.rollbacks,
            "pins": self.pins,
            "unpins": self.unpins,
            "quarantines": self.quarantines,
        }
