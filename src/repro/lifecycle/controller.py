"""Lifecycle controller: drift alerts in, safe model rollovers out.

The controller closes the loop the serving stack left open: the
:class:`~repro.serving.monitoring.DriftMonitor` *detects* degradation,
but nothing acted on it.  Each :meth:`LifecycleController.run_once`
sweep:

1. collects **candidates** — vehicles with a debounced drift alert
   (``monitor.fire_alerts()``) plus, optionally, vehicles whose champion
   is more than ``staleness_cycles`` maintenance cycles old;
2. trains a **challenger** off the hot path through the engine's
   training executor (the champion keeps serving throughout);
3. **shadow-evaluates** both models on the vehicle's recent resolved
   days and runs the :class:`~repro.lifecycle.policy.PromotionPolicy`;
4. on a pass, **promotes**: the challenger is persisted to the
   :class:`ModelStore` as a new version, the decision is journaled
   through ``repro.durability`` (crash-survivable), the serving model is
   swapped atomically, old versions are pruned (never the active or
   pinned one), and the vehicle's residual window is reset so the new
   champion is judged on its own evidence.

Training failures land on a per-vehicle ``<vid>:lifecycle`` circuit
breaker so a sick training path is not hammered every sweep.  All
counters join the consolidated metrics snapshot as the ``lifecycle``
section once :meth:`FleetEngine.attach_lifecycle` has run (the
constructor does this).
"""

from __future__ import annotations

import math

import numpy as np

from ..core.categorize import VehicleCategory
from ..obs import tracing
from ..serving.engine import _run_training_task_safe, _TrainingTask
from .policy import PromotionDecision, PromotionPolicy
from .rollback import RollbackManager
from .shadow import ShadowEvaluator

__all__ = ["LifecycleController"]

#: Breaker key suffix for challenger training (per vehicle).
_BREAKER_SUFFIX = "lifecycle"


def _json_safe(value):
    """NaN/inf -> None so status payloads are strict-JSON clean."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


class LifecycleController:
    """Drift-triggered shadow retraining and evaluation-gated promotion.

    Parameters
    ----------
    engine:
        The :class:`~repro.serving.engine.FleetEngine` to manage; the
        controller registers itself via ``engine.attach_lifecycle``.
    policy:
        :class:`PromotionPolicy`; defaults apply.
    shadow:
        :class:`ShadowEvaluator`; defaults to a 45-day window.
    staleness_cycles:
        Also sweep (undrifted) vehicles whose champion is at least this
        many completed cycles behind — the periodic re-evaluation the
        Scania study shows stale models silently need.  ``None``
        disables the schedule (drift alerts only).
    retention:
        ``keep_last`` for the post-promotion store prune; the active
        and pinned versions are always exempt.
    history_limit:
        Decision entries kept for :meth:`status`.
    """

    def __init__(
        self,
        engine,
        policy: PromotionPolicy | None = None,
        *,
        shadow: ShadowEvaluator | None = None,
        staleness_cycles: int | None = None,
        retention: int = 8,
        history_limit: int = 256,
    ):
        if staleness_cycles is not None and staleness_cycles < 1:
            raise ValueError(
                f"staleness_cycles must be >= 1, got {staleness_cycles}."
            )
        if retention < 1:
            raise ValueError(f"retention must be >= 1, got {retention}.")
        self.engine = engine
        self.policy = policy or PromotionPolicy()
        self.shadow = shadow or ShadowEvaluator()
        self.staleness_cycles = staleness_cycles
        self.retention = retention
        self.history_limit = history_limit
        self.rollback_manager = RollbackManager(engine)
        self.history: list[dict] = []
        self._sweeps = 0
        self._candidates_seen = 0
        self._promotions = 0
        self._rejections = 0
        self._train_failures = 0
        self._breaker_skips = 0
        engine.attach_lifecycle(self)

    # -- candidate selection -----------------------------------------------

    def candidates(self) -> list[tuple[str, str]]:
        """``(vehicle_id, reason)`` pairs due for a shadow evaluation.

        Drift alerts are consumed through the monitor's debounced
        ``fire_alerts`` — a still-degraded vehicle does not retrigger
        every sweep — and pinned vehicles are never candidates (a pin
        means "serve exactly this version").  Only OLD vehicles qualify:
        they are the ones serving per-vehicle champions.
        """
        service = self.engine.service
        due: dict[str, str] = {}
        if service.monitor is not None:
            for alert in service.monitor.fire_alerts():
                vid = alert.vehicle_id
                if not service.has_vehicle(vid):
                    continue
                state = service._vehicles[vid]
                if state.pinned_version is not None:
                    continue
                if service.category(vid) is not VehicleCategory.OLD:
                    continue
                due[vid] = (
                    f"drift: mean |error| {alert.mean_abs_error:.2f}d > "
                    f"{alert.threshold:.2f}d over {alert.n_residuals} resolved"
                )
        if self.staleness_cycles is not None:
            for vid in service.vehicle_ids:
                if vid in due:
                    continue
                state = service._vehicles[vid]
                if state.model is None or state.pinned_version is not None:
                    continue
                if service.category(vid) is not VehicleCategory.OLD:
                    continue
                behind = (
                    len(service.series(vid).completed_cycles)
                    - state.model_trained_cycles
                )
                if behind >= self.staleness_cycles:
                    due[vid] = (
                        f"stale: champion {behind} completed cycles behind"
                    )
        return sorted(due.items())

    # -- the sweep ---------------------------------------------------------

    def run_once(self) -> list[dict]:
        """One full sweep: evaluate every candidate; returns the entries."""
        self._sweeps += 1
        entries = []
        with tracing.span("lifecycle.sweep"):
            for vehicle_id, reason in self.candidates():
                self._candidates_seen += 1
                entries.append(self.evaluate_vehicle(vehicle_id, reason))
        return entries

    def evaluate_vehicle(self, vehicle_id: str, reason: str = "manual") -> dict:
        """Train, shadow-evaluate and (maybe) promote one challenger.

        Serving is never interrupted: the champion handles traffic while
        the challenger trains and is scored; only a policy pass swaps it
        — atomically — and a training failure leaves the champion
        exactly as it was.
        """
        service = self.engine.service
        key = f"{vehicle_id}:{_BREAKER_SUFFIX}"
        if service.breaker is not None and not service.breaker.allow(key):
            self._breaker_skips += 1
            return self._record(
                vehicle_id, "skipped", reason, detail="training breaker open"
            )
        with tracing.span("lifecycle.evaluate", vehicle_id=vehicle_id):
            try:
                champion = service._ensure_vehicle_model(vehicle_id)
            except Exception as exc:
                if service.breaker is not None:
                    service.breaker.record_failure(key)
                self._train_failures += 1
                return self._record(
                    vehicle_id,
                    "failed",
                    reason,
                    detail=f"champion unavailable: {type(exc).__name__}: {exc}",
                )
            challenger, error = self._train_challenger(vehicle_id)
            if error is not None:
                if service.breaker is not None:
                    service.breaker.record_failure(key)
                self._train_failures += 1
                return self._record(
                    vehicle_id,
                    "failed",
                    reason,
                    detail=(
                        f"challenger training failed: "
                        f"{type(error).__name__}: {error}"
                    ),
                )
            if service.breaker is not None:
                service.breaker.record_success(key)
            with tracing.span("lifecycle.shadow", vehicle_id=vehicle_id):
                report = self.shadow.evaluate(
                    service, vehicle_id, champion, challenger
                )
            decision = self.policy.decide(report)
            if decision.promote:
                version = self._promote(vehicle_id, challenger, decision)
                return self._record(
                    vehicle_id,
                    "promoted",
                    reason,
                    detail=decision.reason,
                    decision=decision,
                    version=version,
                )
            self._rejections += 1
            return self._record(
                vehicle_id,
                "rejected",
                reason,
                detail=decision.reason,
                decision=decision,
            )

    def _train_challenger(self, vehicle_id: str):
        """(predictor, error) — trained off-path via the fleet executor."""
        service = self.engine.service
        from ..core.registry import make_predictor as _default_factory

        factory = (
            None
            if service._make_predictor is _default_factory
            else service._make_predictor
        )
        task = _TrainingTask(
            vehicle_id=vehicle_id,
            usage=np.asarray(
                service._vehicles[vehicle_id].usage, dtype=np.float64
            ),
            t_v=service.t_v,
            window=service.window,
            algorithm=service.algorithm,
            n_cycles=len(service.series(vehicle_id).completed_cycles),
            factory=factory,
        )
        with tracing.span("lifecycle.train", vehicle_id=vehicle_id):
            (result,) = self.engine._training_executor().map_ordered(
                _run_training_task_safe, [task]
            )
        return result

    def _promote(
        self, vehicle_id: str, challenger, decision: PromotionDecision
    ) -> int | None:
        """Persist, journal, atomically install, prune, reset residuals."""
        service = self.engine.service
        state = service._vehicles[vehicle_id]
        n_cycles = len(service.series(vehicle_id).completed_cycles)
        key = f"{vehicle_id}.per-vehicle"
        report = decision.report
        version = service._persist(
            key,
            challenger,
            strategy="per-vehicle",
            trained_cycles=n_cycles,
            promoted=True,
            shadow_samples=report.n_samples,
            improvement_days=round(report.improvement, 6),
        )
        service.apply_lifecycle_event(
            "promote",
            vehicle_id,
            version=version,
            trained_cycles=n_cycles,
            reason=decision.reason,
            predictor=challenger,
        )
        if service.store is not None and version is not None:
            try:
                service.store.prune(
                    key,
                    keep_last=self.retention,
                    keep={
                        v
                        for v in (state.model_version, state.pinned_version)
                        if v is not None
                    },
                )
            except OSError:
                pass  # retention is best-effort; never fail a promotion
        if service.monitor is not None:
            service.monitor.reset(vehicle_id)
        self._promotions += 1
        return version

    # -- bookkeeping -------------------------------------------------------

    def _record(
        self,
        vehicle_id: str,
        outcome: str,
        reason: str,
        *,
        detail: str | None = None,
        decision: PromotionDecision | None = None,
        version: int | None = None,
    ) -> dict:
        entry = {
            "vehicle_id": vehicle_id,
            "outcome": outcome,  # promoted | rejected | failed | skipped
            "trigger": reason,
            "detail": detail,
            "version": version,
        }
        if decision is not None and decision.report is not None:
            entry["shadow"] = {
                k: _json_safe(v)
                for k, v in decision.report.as_dict().items()
            }
        self.history.append(entry)
        if len(self.history) > self.history_limit:
            del self.history[: -self.history_limit]
        tracing.add_event("lifecycle-decision", **{
            "vehicle_id": vehicle_id, "outcome": outcome,
        })
        return entry

    def counters(self) -> dict:
        """Metrics-registry collector payload (``lifecycle`` section)."""
        return {
            "sweeps": self._sweeps,
            "candidates": self._candidates_seen,
            "promotions": self._promotions,
            "rejections": self._rejections,
            "train_failures": self._train_failures,
            "breaker_skips": self._breaker_skips,
            **self.rollback_manager.counters(),
        }

    def status(self) -> dict:
        """JSON-safe admin view for the gateway and CLI."""
        service = self.engine.service
        monitor = service.monitor
        vehicles = {}
        for vid in service.vehicle_ids:
            state = service._vehicles[vid]
            vehicles[vid] = {
                "category": service.category(vid).name,
                "model_version": state.model_version,
                "pinned_version": state.pinned_version,
                "trained_cycles": state.model_trained_cycles,
                "mean_abs_error": (
                    None
                    if monitor is None
                    else _json_safe(monitor.mean_abs_error(vid))
                ),
                "still_degraded": (
                    0 if monitor is None else monitor.still_degraded(vid)
                ),
            }
        return {
            "policy": {
                "min_shadow_samples": self.policy.min_shadow_samples,
                "min_improvement_days": self.policy.min_improvement_days,
                "min_relative_improvement":
                    self.policy.min_relative_improvement,
                "max_worst_regression_days":
                    self.policy.max_worst_regression_days,
                "allowed_strategies": list(self.policy.allowed_strategies),
                "staleness_cycles": self.staleness_cycles,
                "shadow_window_days": self.shadow.window_days,
                "retention": self.retention,
            },
            "counters": self.counters(),
            "vehicles": vehicles,
            "history": self.history[-32:],
            "log": service.lifecycle_log[-32:],
        }

    # -- rollback / pin passthrough ---------------------------------------

    def rollback(self, vehicle_id: str, version: int | None = None, **kwargs):
        return self.rollback_manager.rollback(vehicle_id, version, **kwargs)

    def pin(self, vehicle_id: str, version: int, **kwargs):
        return self.rollback_manager.pin(vehicle_id, version, **kwargs)

    def unpin(self, vehicle_id: str, **kwargs):
        return self.rollback_manager.unpin(vehicle_id, **kwargs)
