"""Online model lifecycle: drift-triggered shadow retraining,
champion/challenger promotion, and versioned rollback.

The serving layer (``repro.serving``) trains and swaps models inline
with prediction; this package moves model *replacement* off the hot
path and behind an evaluation gate:

- :class:`LifecycleController` — consumes debounced
  :class:`~repro.serving.monitoring.DriftMonitor` alerts plus an
  optional staleness schedule, retrains challengers through the fleet
  executor, and drives the promote/reject decision.
- :class:`ShadowEvaluator` / :class:`ShadowReport` — replay recent
  resolved days through champion and challenger; paired error stats.
- :class:`PromotionPolicy` / :class:`PromotionDecision` — the gates a
  challenger must pass (samples, absolute + relative improvement,
  worst-case regression, strategy guardrails).
- :class:`RollbackManager` — journaled pin/revert to prior stored
  versions with optional quarantine of the replaced artifact.
- :func:`drift_promotion_drill` / :func:`lifecycle_kill_drill` —
  end-to-end proofs: injected drift recovers via gated promotion, and a
  SIGKILL mid-promotion recovers to a consistent journaled state.
"""

from .controller import LifecycleController
from .drill import drift_promotion_drill, lifecycle_kill_drill
from .policy import PromotionDecision, PromotionPolicy
from .rollback import RollbackManager
from .shadow import ShadowEvaluator, ShadowReport

__all__ = [
    "LifecycleController",
    "PromotionDecision",
    "PromotionPolicy",
    "RollbackManager",
    "ShadowEvaluator",
    "ShadowReport",
    "drift_promotion_drill",
    "lifecycle_kill_drill",
]
