"""Promotion policy: the evaluation gate between challenger and champion.

Every gate rejects with an explicit reason string so the controller's
history (and the gateway's ``/v1/lifecycle`` payload) reads as an audit
trail: which challenger was rejected, by which gate, with which
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from .shadow import ShadowReport

__all__ = ["PromotionDecision", "PromotionPolicy"]


@dataclass(frozen=True)
class PromotionDecision:
    """Outcome of one policy check."""

    vehicle_id: str
    promote: bool
    reason: str
    report: ShadowReport | None = None

    def as_dict(self) -> dict:
        return {
            "vehicle_id": self.vehicle_id,
            "promote": self.promote,
            "reason": self.reason,
            "report": None if self.report is None else self.report.as_dict(),
        }


@dataclass(frozen=True)
class PromotionPolicy:
    """Gates a shadow-evaluated challenger must pass to serve.

    Attributes
    ----------
    min_shadow_samples:
        Resolved shadow days required before any verdict — a challenger
        scored on a handful of points is noise, not evidence.
    min_improvement_days:
        Absolute mean-|error| reduction (days) the challenger must
        deliver.
    min_relative_improvement:
        Relative reduction against the champion's mean |error|; the
        effective bar is ``max(min_improvement_days,
        champion_mae * min_relative_improvement)``, so vehicles with
        large errors need proportionally more improvement.
    max_worst_regression_days:
        Optional tail guardrail: reject when the challenger's worst
        shadow error exceeds the champion's by more than this many days
        (a better mean bought with a worse tail is a bad trade for
        maintenance scheduling).  ``None`` disables the gate.
    allowed_strategies:
        Strategy-aware guardrail — promotion only ever replaces models
        on these serving strategies (donor-trained similarity/unified
        models are shared artifacts, not per-vehicle champions).
    """

    min_shadow_samples: int = 8
    min_improvement_days: float = 0.25
    min_relative_improvement: float = 0.05
    max_worst_regression_days: float | None = None
    allowed_strategies: tuple = ("per-vehicle",)

    def __post_init__(self) -> None:
        if self.min_shadow_samples < 1:
            raise ValueError(
                f"min_shadow_samples must be >= 1, "
                f"got {self.min_shadow_samples}."
            )
        if self.min_improvement_days < 0:
            raise ValueError(
                f"min_improvement_days must be >= 0, "
                f"got {self.min_improvement_days}."
            )
        if not 0 <= self.min_relative_improvement < 1:
            raise ValueError(
                f"min_relative_improvement must be in [0, 1), "
                f"got {self.min_relative_improvement}."
            )
        if not self.allowed_strategies:
            raise ValueError("allowed_strategies must not be empty.")

    def required_improvement(self, champion_mae: float) -> float:
        """The effective improvement bar for a given champion error."""
        return max(
            self.min_improvement_days,
            champion_mae * self.min_relative_improvement,
        )

    def decide(
        self, report: ShadowReport, *, strategy: str = "per-vehicle"
    ) -> PromotionDecision:
        """Promote or reject one shadow-evaluated challenger."""
        vid = report.vehicle_id
        if strategy not in self.allowed_strategies:
            return PromotionDecision(
                vid,
                False,
                f"strategy guardrail: {strategy!r} not in "
                f"{self.allowed_strategies}",
                report,
            )
        if report.n_samples < self.min_shadow_samples:
            return PromotionDecision(
                vid,
                False,
                f"insufficient shadow samples: {report.n_samples} < "
                f"{self.min_shadow_samples}",
                report,
            )
        required = self.required_improvement(report.champion_mae)
        if not report.improvement >= required:  # NaN-safe: rejects NaN
            return PromotionDecision(
                vid,
                False,
                f"improvement {report.improvement:.3f}d below required "
                f"{required:.3f}d",
                report,
            )
        if self.max_worst_regression_days is not None:
            regression = report.challenger_worst - report.champion_worst
            if regression > self.max_worst_regression_days:
                return PromotionDecision(
                    vid,
                    False,
                    f"worst-case regression {regression:.3f}d exceeds "
                    f"{self.max_worst_regression_days:.3f}d",
                    report,
                )
        return PromotionDecision(
            vid,
            True,
            f"improvement {report.improvement:.3f}d over {report.n_samples} "
            f"shadow samples (win rate {report.win_rate:.2f})",
            report,
        )
