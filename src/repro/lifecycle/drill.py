"""Lifecycle drills: drift-injection promotion and SIGKILL recovery.

Two end-to-end proofs for the lifecycle subsystem:

:func:`drift_promotion_drill`
    Seeds a fleet, warms per-vehicle champions, then injects concept
    drift (scaled usage rates) into K vehicles while the champions stay
    frozen (``retrain_on_cycle=False``) — exactly the stale-model
    failure the Scania study documents.  Lifecycle sweeps must then:
    fire debounced drift alerts for the drifted vehicles only, promote
    evaluation-gated replacements for exactly those vehicles, and bring
    the fleet's mean error back under the alert threshold — all with
    zero degraded serves (the champion keeps serving until the atomic
    swap).  Deterministic under the seed.

:func:`lifecycle_kill_drill`
    Runs the same scenario in a subprocess that journals every mutation
    (including lifecycle promotions) through ``repro.durability``, then
    SIGKILLs it mid-sweep.  Recovery from the state directory must
    succeed, replay deterministically (two independent recoveries are
    bit-identical), honour the acknowledged-write guarantee, and
    reinstall every journaled promotion from the model store so the
    recovered champion predicts identically to the stored artifact.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import shutil
import signal  # noqa: F401  (documents the drill's SIGKILL contract)
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

__all__ = [
    "drift_promotion_drill",
    "generate_lifecycle_ops",
    "lifecycle_kill_drill",
]

#: Shared drill fleet configuration (small cycles -> fast maintenance).
_DRILL_T_V = 200_000.0


def _build_stack(
    *,
    store_dir,
    t_v: float = _DRILL_T_V,
    threshold_days: float = 2.0,
    alert_cooldown: int = 12,
    min_improvement_days: float = 0.1,
):
    """(engine, controller) wired for a lifecycle drill.

    Frozen champions (``retrain_on_cycle=False`` + ``auto_refresh=
    False``): the lifecycle controller is the *only* path that replaces
    a model, so a recovery in the drill is attributable to a promotion
    and nothing else.
    """
    from ..serving import (
        DriftMonitor,
        EngineConfig,
        FleetEngine,
        MaintenancePredictionService,
        ModelStore,
    )
    from .controller import LifecycleController
    from .policy import PromotionPolicy
    from .shadow import ShadowEvaluator

    service = MaintenancePredictionService(
        t_v=t_v,
        window=0,
        algorithm="LR",
        store=None if store_dir is None else ModelStore(store_dir),
        monitor=DriftMonitor(
            threshold_days=threshold_days,
            window=30,
            min_samples=5,
            alert_cooldown=alert_cooldown,
        ),
        cycle_cache=True,
        retrain_on_cycle=False,
    )
    engine = FleetEngine(
        service,
        config=EngineConfig(
            max_workers=1, executor="serial", auto_refresh=False
        ),
    )
    controller = LifecycleController(
        engine,
        PromotionPolicy(
            min_shadow_samples=6,
            min_improvement_days=min_improvement_days,
            min_relative_improvement=0.02,
        ),
        shadow=ShadowEvaluator(window_days=30),
        retention=6,
    )
    return engine, controller


def _daily_usage(rng, rate: float) -> float:
    """One noisy daily reading around a vehicle's base rate."""
    return float(np.clip(rate + rng.normal(0.0, rate * 0.02), 1_000, 86_400))


def drift_promotion_drill(
    *,
    n_vehicles: int = 6,
    n_drifted: int = 2,
    seed: int = 0,
    warm_days: int = 70,
    drift_days: int = 45,
    recovery_days: int = 75,
    drift_factor: float = 2.0,
    threshold_days: float = 2.0,
    t_v: float = _DRILL_T_V,
    store_dir=None,
) -> dict:
    """Run the drift-injection promotion drill; returns the check report.

    Timeline: ``warm_days`` of the base regime (champions train once and
    freeze), then the first ``n_drifted`` vehicles permanently shift to
    ``drift_factor`` × their base rate.  After ``drift_days`` of silent
    degradation the lifecycle controller starts sweeping once per day
    for ``recovery_days`` while the drifted regime continues.
    """
    if not 1 <= n_drifted <= n_vehicles:
        raise ValueError(
            f"n_drifted must be in [1, {n_vehicles}], got {n_drifted}."
        )
    cleanup = None
    if store_dir is None:
        cleanup = tempfile.TemporaryDirectory(prefix="repro-lifecycle-")
        store_dir = cleanup.name
    try:
        return _drift_promotion_drill(
            n_vehicles=n_vehicles,
            n_drifted=n_drifted,
            seed=seed,
            warm_days=warm_days,
            drift_days=drift_days,
            recovery_days=recovery_days,
            drift_factor=drift_factor,
            threshold_days=threshold_days,
            t_v=t_v,
            store_dir=store_dir,
        )
    finally:
        if cleanup is not None:
            cleanup.cleanup()


def _drift_promotion_drill(
    *,
    n_vehicles,
    n_drifted,
    seed,
    warm_days,
    drift_days,
    recovery_days,
    drift_factor,
    threshold_days,
    t_v,
    store_dir,
) -> dict:
    rng = np.random.default_rng(seed)
    ids = [f"lc{i:02d}" for i in range(n_vehicles)]
    drifted = set(ids[:n_drifted])
    rates = dict(zip(ids, rng.uniform(15_000.0, 21_000.0, size=n_vehicles)))

    engine, controller = _build_stack(
        store_dir=store_dir, t_v=t_v, threshold_days=threshold_days
    )
    service = engine.service
    monitor = service.monitor
    engine.register_fleet(ids)

    # Forecast quality accounting: serving must never degrade or shrink.
    degraded_serves = 0
    short_batches = 0
    peak_mae = {vid: 0.0 for vid in ids}
    predict_from = 15  # all vehicles OLD well before this (t_v / rate ~ 10d)
    last_forecasts = []

    def one_day(day: int, *, drifting: bool, sweep: bool) -> None:
        nonlocal degraded_serves, short_batches, last_forecasts
        batch = {
            vid: _daily_usage(
                rng, rates[vid] * (drift_factor if drifting and vid in drifted else 1.0)
            )
            for vid in ids
        }
        engine.ingest_day(batch, day=day)
        if day >= predict_from:
            forecasts = engine.predict_all()
            last_forecasts = forecasts
            degraded_serves += sum(1 for f in forecasts if f.degraded)
            if len(forecasts) != len(ids):
                short_batches += 1
        for vid in ids:
            mae = monitor.mean_abs_error(vid)
            if np.isfinite(mae):
                peak_mae[vid] = max(peak_mae[vid], mae)
        if sweep:
            controller.run_once()

    day = 0
    for _ in range(warm_days):
        one_day(day, drifting=False, sweep=False)
        day += 1
    for _ in range(drift_days):
        one_day(day, drifting=True, sweep=False)
        day += 1
    for _ in range(recovery_days):
        one_day(day, drifting=True, sweep=True)
        day += 1

    final_mae = {
        vid: float(mae)
        for vid in ids
        if np.isfinite(mae := monitor.mean_abs_error(vid))
    }
    promoted = {
        e["vehicle_id"]
        for e in service.lifecycle_log
        if e["action"] == "promote"
    }
    drift_triggered = {
        e["vehicle_id"]
        for e in controller.history
        if e["trigger"].startswith("drift")
    }
    candidates_seen = {e["vehicle_id"] for e in controller.history}
    drifted_peak = min(peak_mae[vid] for vid in drifted)
    drifted_final = max(
        (final_mae.get(vid, 0.0) for vid in drifted), default=float("inf")
    )

    checks = [
        (
            "zero degraded serves, every batch complete",
            degraded_serves == 0 and short_batches == 0,
        ),
        (
            "drift alerts fired for every drifted vehicle",
            drifted <= drift_triggered,
        ),
        (
            "no spurious lifecycle candidates",
            candidates_seen <= drifted,
        ),
        (
            "stale champions breached the alert threshold",
            drifted_peak > threshold_days,
        ),
        (
            "replacements promoted for exactly the drifted vehicles",
            promoted == drifted,
        ),
        (
            "fleet mean error recovered under the threshold",
            drifted_final <= threshold_days
            and drifted_final < drifted_peak,
        ),
        (
            "promoted versions attributed in forecasts",
            all(
                f.model_version is not None
                for f in last_forecasts
                if f.vehicle_id in drifted
            )
            and bool(last_forecasts),
        ),
    ]
    digest = hashlib.sha256(
        json.dumps(
            {
                "log": service.lifecycle_log,
                "history": controller.history,
                "forecasts": [f.to_dict() for f in last_forecasts],
            },
            sort_keys=True,
            default=str,
        ).encode()
    ).hexdigest()
    return {
        "ok": all(ok for _label, ok in checks),
        "checks": [{"name": label, "ok": ok} for label, ok in checks],
        "seed": seed,
        "drifted": sorted(drifted),
        "promoted": sorted(promoted),
        "peak_mae": {vid: round(peak_mae[vid], 4) for vid in sorted(ids)},
        "final_mae": {
            vid: round(mae, 4) for vid, mae in sorted(final_mae.items())
        },
        "counters": controller.counters(),
        "still_degraded": monitor.still_degraded(),
        "digest": digest,
    }


# -- SIGKILL drill ---------------------------------------------------------


def generate_lifecycle_ops(
    n_vehicles: int,
    seed: int,
    *,
    warm_days: int = 70,
    drift_days: int = 45,
    sweep_days: int = 40,
    n_drifted: int = 2,
    drift_factor: float = 2.0,
) -> list[dict]:
    """Deterministic op stream replaying the drift scenario as ops.

    ``day`` ops carry the whole fleet's readings (one journal record),
    ``predict`` ops serve the fleet (resolving residuals into the
    monitor), and ``sweep`` ops run one lifecycle sweep — each sweep may
    journal promote records.  The op stream is what the killable worker
    executes; journal seqs do *not* map 1:1 onto ops here, so recovery
    is checked for internal consistency, not against an op prefix.
    """
    rng = np.random.default_rng(seed)
    ids = [f"lc{i:02d}" for i in range(n_vehicles)]
    drifted = set(ids[:n_drifted])
    rates = dict(zip(ids, rng.uniform(15_000.0, 21_000.0, size=n_vehicles)))
    ops: list[dict] = [{"op": "register", "v": vid} for vid in ids]
    day = 0
    predict_from = 15

    def day_op(drifting: bool) -> dict:
        return {
            "op": "day",
            "d": day,
            "u": {
                vid: _daily_usage(
                    rng,
                    rates[vid]
                    * (drift_factor if drifting and vid in drifted else 1.0),
                )
                for vid in ids
            },
        }

    for _ in range(warm_days):
        ops.append(day_op(False))
        if day >= predict_from:
            ops.append({"op": "predict"})
        day += 1
    for _ in range(drift_days):
        ops.append(day_op(True))
        ops.append({"op": "predict"})
        day += 1
    for _ in range(sweep_days):
        ops.append(day_op(True))
        ops.append({"op": "predict"})
        ops.append({"op": "sweep"})
        day += 1
    return ops


def apply_lifecycle_op(engine, controller, op: dict) -> None:
    """Apply one drill op; swallows the per-op errors ops can raise."""
    try:
        if op["op"] == "register":
            engine.service.register_vehicle(op["v"])
        elif op["op"] == "day":
            engine.ingest_day(
                {vid: float(s) for vid, s in op["u"].items()}, day=op.get("d")
            )
        elif op["op"] == "predict":
            engine.predict_all()
        elif op["op"] == "sweep":
            controller.run_once()
        else:
            raise ValueError(f"unknown lifecycle drill op {op['op']!r}")
    except (ValueError, KeyError):
        pass


def _recover_stack(state_dir: Path, *, with_store: bool):
    """A fresh drill stack recovered from ``state_dir``.

    Returns ``(engine, controller, manager)``; the caller closes the
    manager.  ``with_store`` points the service at the worker's model
    store (journaled promotions then reinstall the exact artifacts);
    without it, replay degrades to deterministic lazy retraining.
    """
    from ..durability import DurabilityConfig, RecoveryManager

    engine, controller = _build_stack(
        store_dir=str(state_dir / "models") if with_store else None
    )
    manager = RecoveryManager(
        state_dir,
        engine.service,
        config=DurabilityConfig(fsync_every=4, checkpoint_every=48),
    )
    manager.recover()
    return engine, controller, manager


def _worker_main(argv: list[str] | None = None) -> int:
    """``python -m repro.lifecycle.drill``: the killable worker."""
    parser = argparse.ArgumentParser(
        description="lifecycle kill-drill worker (internal)"
    )
    parser.add_argument("--state", required=True)
    parser.add_argument("--records", required=True)
    parser.add_argument("--acks", required=True)
    parser.add_argument("--throttle-ms", type=float, default=0.0)
    args = parser.parse_args(argv)

    from ..durability import DurabilityConfig, RecoveryManager

    ops = [
        json.loads(line)
        for line in Path(args.records).read_text("utf-8").splitlines()
        if line.strip()
    ]
    state_dir = Path(args.state)
    engine, controller = _build_stack(store_dir=str(state_dir / "models"))
    manager = RecoveryManager(
        state_dir,
        engine.service,
        config=DurabilityConfig(fsync_every=4, checkpoint_every=48),
    )
    manager.recover()
    acks = open(args.acks, "a", encoding="utf-8")
    for index, op in enumerate(ops, start=1):
        apply_lifecycle_op(engine, controller, op)
        manager.maybe_checkpoint()
        acks.write(f"{index} {manager.journal.durable_seq}\n")
        acks.flush()
        if args.throttle_ms > 0:
            time.sleep(args.throttle_ms / 1000.0)
    acks.close()
    manager.close()
    return 0


def _read_acks(path: Path) -> tuple[int, int]:
    """(ops applied, durable seq at last ack) from the acks file."""
    applied = durable = 0
    try:
        text = path.read_text("utf-8")
    except OSError:
        return 0, 0
    for line in text.splitlines():
        parts = line.split()
        if len(parts) == 2:
            try:
                applied, durable = int(parts[0]), int(parts[1])
            except ValueError:
                continue
    return applied, durable


def lifecycle_kill_drill(
    work_dir,
    *,
    n_vehicles: int = 5,
    seed: int = 0,
    kill_after: int | None = None,
    throttle_ms: float = 1.0,
    timeout_s: float = 180.0,
) -> dict:
    """SIGKILL the worker mid-sweep; prove recovery is consistent.

    ``kill_after`` is the op count after which the worker is killed
    (default: halfway through the sweep phase, where promotions are
    being journaled).  Checks: recovery succeeds; two independent
    recoveries produce bit-identical forecasts, lifecycle logs and
    health; acknowledged journal records survived; and every journaled
    promotion whose artifact is still stored is reinstalled such that
    the in-memory champion predicts identically to the stored version.
    """
    work_dir = Path(work_dir)
    if work_dir.exists():
        shutil.rmtree(work_dir)
    state_dir = work_dir / "state"
    work_dir.mkdir(parents=True)

    ops = generate_lifecycle_ops(n_vehicles, seed)
    first_sweep = next(
        (i for i, op in enumerate(ops) if op["op"] == "sweep"), len(ops) // 2
    )
    if kill_after is None:
        kill_after = (first_sweep + len(ops)) // 2
    kill_after = max(1, min(kill_after, len(ops)))
    records_path = work_dir / "records.jsonl"
    records_path.write_text(
        "".join(json.dumps(op) + "\n" for op in ops), "utf-8"
    )
    acks_path = work_dir / "acks.log"
    acks_path.touch()

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    worker = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.lifecycle.drill",
            "--state",
            str(state_dir),
            "--records",
            str(records_path),
            "--acks",
            str(acks_path),
            "--throttle-ms",
            str(throttle_ms),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )
    deadline = time.monotonic() + timeout_s
    killed = False
    applied_acked = durable_acked = 0
    while time.monotonic() < deadline:
        applied_acked, durable_acked = _read_acks(acks_path)
        if applied_acked >= kill_after:
            worker.kill()  # SIGKILL: no atexit, no flush, no cleanup
            killed = True
            break
        if worker.poll() is not None:
            break  # finished every op before the kill point
        time.sleep(0.005)
    if not killed and worker.poll() is None:
        worker.kill()
        stderr = worker.communicate()[1]
        raise TimeoutError(
            f"lifecycle drill worker stalled at {applied_acked}/{kill_after} "
            f"acked ops within {timeout_s}s: {stderr.decode(errors='replace')}"
        )
    stderr = worker.communicate()[1]
    if not killed and worker.returncode != 0:
        raise RuntimeError(
            f"lifecycle drill worker failed before the kill point: "
            f"{stderr.decode(errors='replace')}"
        )
    applied_acked, durable_acked = _read_acks(acks_path)

    # Artifact-integrity pass first (reads state only, predicts nothing,
    # so the shared model store is not advanced by lazy retrains).
    engine, _, manager = _recover_stack(state_dir, with_store=True)
    service = engine.service
    last_seq = manager.journal.last_seq
    acked_survived = last_seq >= durable_acked
    promotes = {}
    for event in service.lifecycle_log:
        if event["action"] in ("promote", "rollback", "pin"):
            promotes[event["vehicle_id"]] = event["version"]
    artifacts_ok = True
    artifacts_checked = 0
    probe = np.array([[100_000.0]])
    for vid, version in sorted(promotes.items()):
        if version is None:
            continue
        key = f"{vid}.per-vehicle"
        if version not in service.store.versions(key):
            continue  # pruned after a later promotion: consistent
        artifacts_checked += 1
        state = service._vehicles[vid]
        # A promotion journaled before the last checkpoint is restored
        # as a version number with a lazy model; resolving it must
        # reload the exact stored artifact, not retrain.
        service._ensure_vehicle_model(vid)
        stored = service.store.load(key, version)
        if state.model_version != version or state.model is None:
            artifacts_ok = False
            continue
        if not np.array_equal(
            np.asarray(state.model.predict(probe)),
            np.asarray(stored.predictor.predict(probe)),
        ):
            artifacts_ok = False
    lifecycle_log = [dict(e) for e in service.lifecycle_log]
    manager.close()

    # Determinism pass: two independent store-less recoveries must agree
    # bit-for-bit (forecasts, lifecycle log, health).
    snapshots = []
    for _ in range(2):
        engine, _, manager = _recover_stack(state_dir, with_store=False)
        service = engine.service
        ready = [
            vid
            for vid in service.vehicle_ids
            if service.n_days(vid) > service.window
        ]
        snapshots.append(
            {
                "forecasts": {
                    vid: service.predict(vid).to_dict() for vid in ready
                },
                "log": [dict(e) for e in service.lifecycle_log],
                "health": service.health().as_dict(),
            }
        )
        manager.close()
    replay_deterministic = snapshots[0] == snapshots[1]

    checks = [
        ("worker killed mid-run", killed),
        ("acknowledged records survived", acked_survived),
        ("replay deterministic across recoveries", replay_deterministic),
        ("journaled promotions reinstalled bit-identically", artifacts_ok),
        ("at least one promotion journaled before the kill",
         bool(promotes)),
    ]
    return {
        "ok": all(ok for _label, ok in checks),
        "checks": [{"name": label, "ok": ok} for label, ok in checks],
        "ops_total": len(ops),
        "kill_after": kill_after,
        "applied_acked": applied_acked,
        "durable_acked": durable_acked,
        "last_seq": last_seq,
        "promotions_journaled": len(
            [e for e in lifecycle_log if e["action"] == "promote"]
        ),
        "artifacts_checked": artifacts_checked,
    }


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(_worker_main())
