"""Prediction-quality monitoring for the deployed service.

Once a vehicle's maintenance cycle completes, the true days-to-
maintenance for every day of that cycle become known, and each earlier
forecast can be scored retroactively.  :class:`DriftMonitor` tracks these
resolved residuals per vehicle and raises alerts when accuracy degrades —
the feedback loop the paper's "further tests and tunings" deployment
phase needs.

A distribution-shift check (:func:`population_stability_index`) is also
provided: comparing the live feature distribution (e.g. of ``L`` or the
usage lags) against the training distribution catches input drift before
it shows up as residual error.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass

import numpy as np

__all__ = ["DriftAlert", "DriftMonitor", "population_stability_index"]


def population_stability_index(
    reference, live, n_bins: int = 10, *, eps: float = 1e-4
) -> float:
    """PSI between a reference and a live sample.

    Bins are deciles of the reference distribution.  Common reading:
    < 0.1 stable, 0.1-0.25 moderate shift, > 0.25 action needed.
    """
    reference = np.asarray(reference, dtype=np.float64)
    live = np.asarray(live, dtype=np.float64)
    if n_bins < 2:
        raise ValueError(f"n_bins must be >= 2, got {n_bins}.")
    if reference.size < n_bins or live.size == 0:
        raise ValueError(
            f"Need >= {n_bins} reference and >= 1 live samples, got "
            f"{reference.size} / {live.size}."
        )
    quantiles = np.linspace(0, 100, n_bins + 1)[1:-1]
    edges = np.unique(np.percentile(reference, quantiles))
    if edges.size == 1:
        # Degenerate reference: heavy ties collapse every interior decile
        # to one value c.  Half-open searchsorted bins would then lump
        # "equal to c" together with "below c", silently hiding any
        # downward shift of the live distribution (while flagging the
        # mirror-image upward shift) — bin explicitly on {<c, ==c, >c}.
        c = edges[0]
        ref_counts = np.array(
            [(reference < c).sum(), (reference == c).sum(), (reference > c).sum()]
        )
        live_counts = np.array(
            [(live < c).sum(), (live == c).sum(), (live > c).sum()]
        )
    else:
        ref_counts = np.bincount(
            np.searchsorted(edges, reference), minlength=edges.size + 1
        )
        live_counts = np.bincount(
            np.searchsorted(edges, live), minlength=edges.size + 1
        )
    ref_frac = np.maximum(ref_counts / reference.size, eps)
    live_frac = np.maximum(live_counts / live.size, eps)
    return float(np.sum((live_frac - ref_frac) * np.log(live_frac / ref_frac)))


@dataclass(frozen=True)
class DriftAlert:
    """One degradation alert."""

    vehicle_id: str
    mean_abs_error: float
    threshold: float
    n_residuals: int

    def __str__(self) -> str:
        return (
            f"[drift] {self.vehicle_id}: mean |error| "
            f"{self.mean_abs_error:.1f} days over last "
            f"{self.n_residuals} resolved predictions "
            f"(threshold {self.threshold:.1f})"
        )


class DriftMonitor:
    """Rolling per-vehicle residual tracker with threshold alerts.

    Parameters
    ----------
    threshold_days:
        Mean absolute resolved error (days) above which a vehicle is
        flagged.
    window:
        Number of most recent resolved residuals considered per vehicle.
    min_samples:
        Residuals required before a vehicle can be flagged at all.
    alert_cooldown:
        Debounce for :meth:`fire_alerts`: after an alert fires for a
        vehicle, re-firing is suppressed until that many *new* residuals
        have been recorded for it (fresh evidence).  Suppressed re-fires
        are counted as "still degraded" instead of retriggering
        consumers in a loop.  ``None`` (default) uses ``min_samples``.
    """

    def __init__(
        self,
        threshold_days: float = 7.0,
        window: int = 30,
        min_samples: int = 5,
        alert_cooldown: int | None = None,
    ):
        if threshold_days <= 0:
            raise ValueError(
                f"threshold_days must be positive, got {threshold_days}."
            )
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}.")
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}.")
        if alert_cooldown is None:
            alert_cooldown = min_samples
        if alert_cooldown < 1:
            raise ValueError(
                f"alert_cooldown must be >= 1, got {alert_cooldown}."
            )
        self.threshold_days = threshold_days
        self.window = window
        self.min_samples = min_samples
        self.alert_cooldown = alert_cooldown
        self._residuals: dict[str, deque] = defaultdict(
            lambda: deque(maxlen=self.window)
        )
        # Running per-vehicle sums of the windowed residuals (plain and
        # absolute), maintained on append/evict so the per-sweep alert
        # scan is O(vehicles), not O(vehicles * window) numpy reductions
        # — the lifecycle controller polls alerts every serve day.
        self._sums: dict[str, float] = defaultdict(float)
        self._abs_sums: dict[str, float] = defaultdict(float)
        self._strategy_counts: dict[str, dict[str, int]] = defaultdict(dict)
        self._recorded = 0  # monotonic, unlike the windowed deques
        self._recorded_by_vehicle: dict[str, int] = defaultdict(int)
        # Per-vehicle recorded-count at the moment the last alert fired;
        # a vehicle re-fires only once alert_cooldown new residuals land.
        self._fired_at: dict[str, int] = {}
        self._still_degraded: dict[str, int] = defaultdict(int)

    def record(
        self,
        vehicle_id: str,
        d_true: float,
        d_pred: float,
        *,
        strategy: str | None = None,
    ) -> None:
        """Add one resolved (truth became known) prediction.

        ``strategy`` tags which serving path produced the forecast
        ("per-vehicle", "similarity", "unified", "baseline"), so
        residuals from degraded baseline-fallback serving stay
        attributable separately from the primary paths.
        """
        if not np.isfinite(d_true) or not np.isfinite(d_pred):
            raise ValueError("Resolved residuals must be finite.")
        self._append(vehicle_id, float(d_true) - float(d_pred))
        if strategy is not None:
            counts = self._strategy_counts[vehicle_id]
            counts[strategy] = counts.get(strategy, 0) + 1

    def strategy_counts(self, vehicle_id: str) -> dict[str, int]:
        """Resolved-residual counts per serving strategy for a vehicle."""
        return dict(self._strategy_counts.get(vehicle_id, {}))

    def record_many(self, vehicle_id: str, d_true, d_pred) -> None:
        d_true = np.asarray(d_true, dtype=np.float64)
        d_pred = np.asarray(d_pred, dtype=np.float64)
        if d_true.shape != d_pred.shape:
            raise ValueError("d_true and d_pred must align.")
        for t, p in zip(d_true, d_pred):
            if np.isfinite(t) and np.isfinite(p):
                self._append(vehicle_id, float(t) - float(p))

    def _append(self, vehicle_id: str, residual: float) -> None:
        """Window one residual in, keeping the running sums consistent."""
        window = self._residuals[vehicle_id]
        if len(window) == self.window:
            evicted = window[0]
            self._sums[vehicle_id] -= evicted
            self._abs_sums[vehicle_id] -= abs(evicted)
        window.append(residual)
        self._sums[vehicle_id] += residual
        self._abs_sums[vehicle_id] += abs(residual)
        self._recorded += 1
        self._recorded_by_vehicle[vehicle_id] += 1

    def mean_abs_error(self, vehicle_id: str) -> float:
        residuals = self._residuals.get(vehicle_id)
        if not residuals:
            return float("nan")
        return self._abs_sums[vehicle_id] / len(residuals)

    def bias(self, vehicle_id: str) -> float:
        """Signed mean residual: positive = systematic under-prediction."""
        residuals = self._residuals.get(vehicle_id)
        if not residuals:
            return float("nan")
        return self._sums[vehicle_id] / len(residuals)

    def check(self, vehicle_id: str) -> DriftAlert | None:
        """Alert for one vehicle, or ``None`` if healthy/insufficient data."""
        residuals = self._residuals.get(vehicle_id)
        if not residuals or len(residuals) < self.min_samples:
            return None
        mae = self._abs_sums[vehicle_id] / len(residuals)
        if mae <= self.threshold_days:
            return None
        return DriftAlert(
            vehicle_id=vehicle_id,
            mean_abs_error=mae,
            threshold=self.threshold_days,
            n_residuals=len(residuals),
        )

    def alerts(self) -> list[DriftAlert]:
        """All currently-firing alerts, worst first (pure view)."""
        found = [
            alert
            for vehicle_id in self._residuals
            if (alert := self.check(vehicle_id)) is not None
        ]
        found.sort(key=lambda a: -a.mean_abs_error)
        return found

    def fire_alerts(self) -> list[DriftAlert]:
        """Debounced alert consumption for downstream automation.

        :meth:`alerts` is a pure view and re-reports an identical alert
        for a still-degraded vehicle on every check — fine for a
        dashboard, a retrigger loop for anything that *acts* on alerts
        (the lifecycle controller).  This variant marks each returned
        alert as fired and suppresses that vehicle until
        ``alert_cooldown`` new residuals have been recorded for it;
        suppressed re-fires increment the vehicle's "still degraded"
        counter instead.
        """
        fired: list[DriftAlert] = []
        for alert in self.alerts():
            vehicle_id = alert.vehicle_id
            seen = self._recorded_by_vehicle.get(vehicle_id, 0)
            fired_at = self._fired_at.get(vehicle_id)
            if (
                fired_at is not None
                and seen - fired_at < self.alert_cooldown
            ):
                self._still_degraded[vehicle_id] += 1
                continue
            self._fired_at[vehicle_id] = seen
            fired.append(alert)
        return fired

    def still_degraded(self, vehicle_id: str | None = None) -> int:
        """Suppressed re-fires — for one vehicle, or fleet-wide."""
        if vehicle_id is not None:
            return self._still_degraded.get(vehicle_id, 0)
        return sum(self._still_degraded.values())

    def reset(self, vehicle_id: str) -> None:
        """Forget a vehicle's residual window and alert debounce state.

        Called after a model promotion/rollback: the residuals scored
        the *replaced* model, so the new one starts with a clean window
        and may alert again as soon as its own evidence accrues.
        """
        self._residuals.pop(vehicle_id, None)
        self._sums.pop(vehicle_id, None)
        self._abs_sums.pop(vehicle_id, None)
        self._fired_at.pop(vehicle_id, None)
        self._still_degraded.pop(vehicle_id, None)

    def counters(self) -> dict:
        """Fleet-level counter view — the ``drift`` section of the
        consolidated metrics snapshot (JSON-safe, no NaN values)."""
        strategies: dict[str, int] = {}
        for counts in self._strategy_counts.values():
            for strategy, n in counts.items():
                strategies[strategy] = strategies.get(strategy, 0) + n
        return {
            "vehicles_tracked": len(self._residuals),
            "residuals_recorded": self._recorded,
            "residuals_held": sum(len(r) for r in self._residuals.values()),
            "resolved_by_strategy": dict(sorted(strategies.items())),
            "alerts": len(self.alerts()),
            "alerts_suppressed": self.still_degraded(),
            "still_degraded_vehicles": sum(
                1 for n in self._still_degraded.values() if n
            ),
            "threshold_days": self.threshold_days,
        }

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-vehicle {n, mae, bias} snapshot."""
        return {
            vehicle_id: {
                "n": len(residuals),
                "mae": self.mean_abs_error(vehicle_id),
                "bias": self.bias(vehicle_id),
            }
            for vehicle_id, residuals in self._residuals.items()
        }

    # -- checkpoint state --------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-ready snapshot (config + windowed residuals + counters)."""
        return {
            "config": {
                "threshold_days": self.threshold_days,
                "window": self.window,
                "min_samples": self.min_samples,
                "alert_cooldown": self.alert_cooldown,
            },
            "residuals": {
                vid: [float(r) for r in residuals]
                for vid, residuals in sorted(self._residuals.items())
            },
            "strategy_counts": {
                vid: dict(counts)
                for vid, counts in sorted(self._strategy_counts.items())
            },
            "recorded": self._recorded,
            "recorded_by_vehicle": dict(
                sorted(self._recorded_by_vehicle.items())
            ),
            "fired_at": dict(sorted(self._fired_at.items())),
            "still_degraded": dict(sorted(self._still_degraded.items())),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot into this monitor."""
        self._residuals = defaultdict(lambda: deque(maxlen=self.window))
        self._sums = defaultdict(float)
        self._abs_sums = defaultdict(float)
        for vid, residuals in state.get("residuals", {}).items():
            window = deque(maxlen=self.window)
            for raw in residuals:
                residual = float(raw)
                if len(window) == self.window:
                    evicted = window[0]
                    self._sums[vid] -= evicted
                    self._abs_sums[vid] -= abs(evicted)
                window.append(residual)
                self._sums[vid] += residual
                self._abs_sums[vid] += abs(residual)
            self._residuals[vid] = window
        self._strategy_counts = defaultdict(dict)
        for vid, counts in state.get("strategy_counts", {}).items():
            self._strategy_counts[vid] = {
                strategy: int(n) for strategy, n in counts.items()
            }
        self._recorded = int(state.get("recorded", 0))
        self._recorded_by_vehicle = defaultdict(int)
        for vid, n in state.get("recorded_by_vehicle", {}).items():
            self._recorded_by_vehicle[vid] = int(n)
        self._fired_at = {
            vid: int(n) for vid, n in state.get("fired_at", {}).items()
        }
        self._still_degraded = defaultdict(int)
        for vid, n in state.get("still_degraded", {}).items():
            self._still_degraded[vid] = int(n)

    @classmethod
    def from_state(cls, state: dict) -> "DriftMonitor":
        """Build a monitor matching a snapshot's config, then restore it."""
        config = state.get("config", {})
        cooldown = config.get("alert_cooldown")
        monitor = cls(
            threshold_days=float(config.get("threshold_days", 7.0)),
            window=int(config.get("window", 30)),
            min_samples=int(config.get("min_samples", 5)),
            alert_cooldown=None if cooldown is None else int(cooldown),
        )
        monitor.load_state_dict(state)
        return monitor
