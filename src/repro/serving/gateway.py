"""Async HTTP gateway: the network entry point of the fleet service.

The paper's deployment serves per-vehicle ``D̂_v(t)`` forecasts to
operators every day; until now the reproduction could only do that
in-process.  :class:`FleetGateway` puts a stdlib-only asyncio
JSON-over-HTTP front end on :class:`~repro.serving.engine.FleetEngine`:

``POST /v1/ingest``
    One day of utilization, single reading or batch.
``GET /v1/predict/{vehicle_id}``
    Forecast for one vehicle (``?deadline_ms=`` overrides the default
    per-request deadline).
``POST /v1/predict:batch``
    Forecasts for many vehicles in one request.
``GET /v1/health``
    The engine's :class:`~repro.serving.reliability.FleetHealth`
    report with the gateway's own counters attached.
``GET /v1/metrics``
    The consolidated :class:`~repro.obs.MetricsRegistry` snapshot:
    gateway request/error/queue/batch/latency counters plus the fleet
    health, drift, cache, tracing and profiling sections.
``GET /v1/trace/{request_id}``
    The recorded trace (spans + events) of one earlier request.
``GET /v1/lifecycle``
    The lifecycle controller's admin view: policy, counters,
    per-vehicle versions/pins/drift, recent decisions (503 when no
    :class:`~repro.lifecycle.LifecycleController` is attached).
``POST /v1/lifecycle/run``
    One lifecycle sweep: evaluate every due candidate now.
``POST /v1/lifecycle/{vehicle_id}/{promote|rollback|pin|unpin}``
    Operator actions.  ``promote`` forces one evaluation-gated
    challenger run; ``rollback`` reverts to a prior stored version
    (newest-prior default, optional ``{"version": n, "quarantine":
    true}`` body); ``pin`` requires ``{"version": n}``; all accept an
    optional ``"reason"``.

Three serving-layer mechanisms make it production-shaped:

* **Micro-batching** — concurrent predict requests arriving within
  ``batch_window_s`` coalesce into a single
  :meth:`~repro.serving.engine.FleetEngine.predict_many` call.  A
  single dispatcher drains the queue, so forecasts stay bit-identical
  to serial :meth:`~repro.serving.service.MaintenancePredictionService.
  predict` calls (the gateway test suite pins this with exact
  equality); batching only amortizes the per-request dispatch cost.
* **Admission control** — the request queue is bounded: when full, the
  gateway answers ``429`` with ``Retry-After`` instead of queueing
  unboundedly.  Every predict request carries a deadline; a request
  whose deadline passed while queued is answered ``504`` at dispatch
  time and never occupies a batch slot.
* **Graceful drain** — shutdown stops accepting work (``503``),
  flushes queued and in-flight batches, then waits for
  :meth:`FleetEngine.drain`.

All engine state mutations (ingest and predict batches) run on one
dedicated worker thread, so HTTP concurrency can never interleave with
the engine's single-threaded correctness contract.

**Sharded serving** — in front of a :class:`~repro.serving.sharding.
ShardedFleetEngine` the gateway runs one *lane* per shard: a private
micro-batch queue, dispatcher task and engine thread, so a slow shard
head-of-line-blocks only its own vehicles.  Predict requests route to
their vehicle's lane by the engine's consistent-hash router and are
validated against the parent's routing bookkeeping (no cross-process
round trip before admission); fleet-wide endpoints (``/v1/health`` —
also reachable as ``/v1/fleet/health`` — ``/v1/metrics`` and the
lifecycle admin surface) scatter-gather over every shard.  Batch and
queue metrics then carry a ``shard`` label and predict spans a
``shard`` attribute.  With a plain :class:`FleetEngine` there is
exactly one lane and behavior is unchanged.

Every request is assigned a request id (client-supplied via the
``X-Repro-Request-Id`` header, else generated) that is echoed on the
response and — when tracing is enabled — keys a structured trace
spanning the whole serving path, down to the strategy ladder and model
store.  Tracing only records; forecasts are bit-identical with it on
or off, and the load bench pins its overhead below 5 %.
"""

from __future__ import annotations

import asyncio
import contextvars
import itertools
import json
import random
import re
import uuid
from concurrent.futures import ThreadPoolExecutor
from contextlib import suppress
from dataclasses import dataclass, field, replace
from functools import partial
from urllib.parse import parse_qs, unquote, urlsplit

from ..obs import MetricsRegistry, Observability, tracing
from .engine import FleetEngine
from .service import Forecast

__all__ = [
    "GatewayConfig",
    "GatewayMetrics",
    "GatewayResponse",
    "FleetGateway",
]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Header flagging a degraded (ladder-fallback) forecast in the body.
DEGRADED_HEADER = "X-Repro-Degraded"

#: Header carrying the request id; echoed on every response, accepted
#: from the client to correlate traces across systems.
REQUEST_ID_HEADER = "X-Repro-Request-Id"

#: Accepted shape of a client-supplied request id.
_REQUEST_ID_RE = re.compile(r"^[A-Za-z0-9_.-]{1,64}$")


@dataclass(frozen=True)
class GatewayConfig:
    """Serving knobs of the gateway.

    Attributes
    ----------
    host / port:
        Bind address for :meth:`FleetGateway.serve` (port 0 picks a
        free one).
    batch_window_s:
        Micro-batch coalescing window.  ``0`` dispatches each predict
        request alone (the no-batching reference schedule).
    max_batch_size:
        Hard cap on requests per ``predict_many`` call.
    max_queue:
        Bound on queued predict requests; beyond it the gateway
        answers ``429``.
    retry_after_max_s:
        Upper bound (seconds) of the jittered ``Retry-After`` value on
        ``429`` responses — each rejection draws uniformly from
        ``[1, retry_after_max_s]`` so a burst of rejected clients does
        not retry in one synchronized thundering herd.
    default_deadline_s:
        Per-request deadline when the client sends none.
    auto_register:
        Register unknown vehicles on first ingest instead of ``404``.
    drain_timeout_s:
        How long :meth:`FleetGateway.shutdown` waits for queued and
        in-flight work before failing the remainder with ``503``.
    max_body_bytes:
        Request body cap (``413`` beyond it).
    tracing:
        Record structured traces (served by
        ``/v1/trace/{request_id}``).  Request ids are assigned and
        echoed either way; only span recording is gated.
    trace_sample_every:
        Head-sampling rate for *anonymous* requests: one in every N is
        traced.  A request that supplies its own well-formed
        ``X-Repro-Request-Id`` is **always** traced — the client that
        names a request is the client that will fetch its trace — so
        tests and debugging sessions get full fidelity while steady-
        state anonymous traffic pays the span machinery only 1-in-N
        times.  ``1`` traces everything.
    """

    host: str = "127.0.0.1"
    port: int = 8080
    batch_window_s: float = 0.005
    max_batch_size: int = 64
    max_queue: int = 256
    retry_after_max_s: int = 3
    default_deadline_s: float = 5.0
    auto_register: bool = True
    drain_timeout_s: float = 5.0
    max_body_bytes: int = 1_048_576
    tracing: bool = True
    trace_sample_every: int = 8

    def __post_init__(self) -> None:
        if self.batch_window_s < 0:
            raise ValueError(
                f"batch_window_s must be >= 0, got {self.batch_window_s}."
            )
        if self.max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}."
            )
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}.")
        if self.retry_after_max_s < 1:
            raise ValueError(
                f"retry_after_max_s must be >= 1, "
                f"got {self.retry_after_max_s}."
            )
        if self.default_deadline_s <= 0:
            raise ValueError(
                f"default_deadline_s must be > 0, got {self.default_deadline_s}."
            )
        if self.drain_timeout_s < 0:
            raise ValueError(
                f"drain_timeout_s must be >= 0, got {self.drain_timeout_s}."
            )
        if self.max_body_bytes < 1:
            raise ValueError(
                f"max_body_bytes must be >= 1, got {self.max_body_bytes}."
            )
        if self.trace_sample_every < 1:
            raise ValueError(
                f"trace_sample_every must be >= 1, "
                f"got {self.trace_sample_every}."
            )


class GatewayMetrics:
    """The gateway's operational counters, rewired onto a registry.

    Every counter, gauge and histogram lives in a shared
    :class:`~repro.obs.MetricsRegistry` under ``gateway.*`` names, so
    recording is thread-safe (the registry's lock guards each
    mutation) and :meth:`snapshot` is a consistent point-in-time view.
    The snapshot keeps the shape ``/v1/metrics`` has always served for
    the gateway section, and is what
    :class:`~repro.serving.reliability.FleetHealth` carries as its
    ``gateway`` field.
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry or MetricsRegistry()
        self.batch_sizes = self.registry.histogram("gateway.batch_size")
        self.batch_exec = self.registry.histogram("gateway.batch_exec_s")
        self._queue_high_water = self.registry.gauge(
            "gateway.queue_high_water"
        )
        self._queue_rejections = self.registry.counter(
            "gateway.queue_rejections"
        )
        self._deadline_expirations = self.registry.counter(
            "gateway.deadline_expirations"
        )

    def observe(self, endpoint: str, status: int, seconds: float) -> None:
        registry = self.registry
        with registry.lock:
            registry.counter("gateway.requests", endpoint=endpoint).inc()
            if status >= 400:
                registry.counter("gateway.errors", endpoint=endpoint).inc()
            registry.counter(
                "gateway.responses", endpoint=endpoint, status=str(status)
            ).inc()
            registry.histogram(
                "gateway.latency_s", endpoint=endpoint
            ).record(seconds)

    def observe_batch(
        self, size: int, seconds: float, *, shard: int | None = None
    ) -> None:
        self.batch_sizes.record(size)
        self.batch_exec.record(seconds)
        if shard is not None:
            label = str(shard)
            self.registry.histogram(
                "gateway.shard_batch_size", shard=label
            ).record(size)
            self.registry.histogram(
                "gateway.shard_batch_exec_s", shard=label
            ).record(seconds)

    def note_queue_depth(self, depth: int, *, shard: int | None = None) -> None:
        self._queue_high_water.update_max(depth)
        if shard is not None:
            self.registry.gauge(
                "gateway.shard_queue_high_water", shard=str(shard)
            ).update_max(depth)

    def note_queue_rejection(self, *, shard: int | None = None) -> None:
        self._queue_rejections.inc()
        if shard is not None:
            self.registry.counter(
                "gateway.shard_queue_rejections", shard=str(shard)
            ).inc()

    def note_deadline_expiration(self) -> None:
        self._deadline_expirations.inc()

    # Former plain-attribute counters, kept readable for tests/tools.

    @property
    def queue_high_water(self) -> int:
        return int(self._queue_high_water.value)

    @property
    def queue_rejections(self) -> int:
        return self._queue_rejections.value

    @property
    def deadline_expirations(self) -> int:
        return self._deadline_expirations.value

    def snapshot(self) -> dict:
        registry = self.registry
        with registry.lock:
            requests = {
                labels["endpoint"]: counter.value
                for labels, counter in registry.labeled("gateway.requests")
            }
            errors = {
                labels["endpoint"]: counter.value
                for labels, counter in registry.labeled("gateway.errors")
            }
            responses: dict[str, dict[str, int]] = {}
            for labels, counter in registry.labeled("gateway.responses"):
                responses.setdefault(labels["endpoint"], {})[
                    labels["status"]
                ] = counter.value
            latency = {
                labels["endpoint"]: histogram.summary()
                for labels, histogram in registry.labeled("gateway.latency_s")
            }
            return {
                "requests": dict(sorted(requests.items())),
                "errors": dict(sorted(errors.items())),
                "responses": {
                    endpoint: dict(sorted(codes.items()))
                    for endpoint, codes in sorted(responses.items())
                },
                "latency_s": dict(sorted(latency.items())),
                "batch": {
                    "sizes": self.batch_sizes.summary(),
                    "exec_s": self.batch_exec.summary(),
                },
                "queue_high_water": self.queue_high_water,
                "queue_rejections": self.queue_rejections,
                "deadline_expirations": self.deadline_expirations,
                **self._shard_section(),
            }

    def _shard_section(self) -> dict:
        """Per-shard lane counters; empty (key omitted) when unsharded."""
        registry = self.registry
        shards: dict[str, dict] = {}
        for labels, histogram in registry.labeled("gateway.shard_batch_size"):
            shards.setdefault(labels["shard"], {})["batch_sizes"] = (
                histogram.summary()
            )
        for labels, histogram in registry.labeled(
            "gateway.shard_batch_exec_s"
        ):
            shards.setdefault(labels["shard"], {})["batch_exec_s"] = (
                histogram.summary()
            )
        for labels, gauge in registry.labeled("gateway.shard_queue_high_water"):
            shards.setdefault(labels["shard"], {})["queue_high_water"] = int(
                gauge.value
            )
        for labels, counter in registry.labeled(
            "gateway.shard_queue_rejections"
        ):
            shards.setdefault(labels["shard"], {})["queue_rejections"] = (
                counter.value
            )
        if not shards:
            return {}
        return {"shards": dict(sorted(shards.items(), key=lambda i: int(i[0])))}


@dataclass
class GatewayResponse:
    """One JSON response: status, payload, extra headers."""

    status: int
    payload: dict
    headers: dict[str, str] = field(default_factory=dict)

    def body(self) -> bytes:
        return json.dumps(self.payload).encode("utf-8")

    def encode(self, *, keep_alive: bool = True) -> bytes:
        body = self.body()
        reason = _REASONS.get(self.status, "Unknown")
        headers = {
            "Content-Type": "application/json",
            "Content-Length": str(len(body)),
            "Connection": "keep-alive" if keep_alive else "close",
            **self.headers,
        }
        head = f"HTTP/1.1 {self.status} {reason}\r\n"
        head += "".join(f"{k}: {v}\r\n" for k, v in headers.items())
        return (head + "\r\n").encode("latin-1") + body


class _RequestError(Exception):
    """An HTTP error outcome raised inside a handler."""

    def __init__(self, status: int, message: str, headers: dict | None = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}

    def response(self) -> GatewayResponse:
        return GatewayResponse(
            self.status, {"error": self.message}, dict(self.headers)
        )


@dataclass
class _PendingPredict:
    """A queued predict request awaiting its micro-batch."""

    vehicle_id: str
    future: asyncio.Future
    deadline: float  # loop.time() value
    span: tracing.Span | None = None  # the enqueuing request's root span


@dataclass
class _Lane:
    """One shard's serving lane: queue + dispatcher + engine thread.

    A plain (unsharded) engine gets exactly one lane, so the historic
    single-queue/single-worker schedule is the one-lane special case.
    Each lane owns a private micro-batch queue and a one-thread pool,
    so one slow shard delays only the vehicles it owns.
    """

    shard: int
    queue: asyncio.Queue
    pool: ThreadPoolExecutor
    dispatcher: asyncio.Task | None = None
    inflight: list = field(default_factory=list)


def _endpoint_label(method: str, path: str) -> str:
    if path.startswith("/v1/predict/"):
        return "predict"
    if path == "/v1/predict:batch":
        return "predict:batch"
    if path == "/v1/ingest":
        return "ingest"
    if path in ("/v1/health", "/v1/fleet/health"):
        return "health"
    if path == "/v1/metrics":
        return "metrics"
    if path.startswith("/v1/trace/"):
        return "trace"
    if path == "/v1/lifecycle" or path.startswith("/v1/lifecycle/"):
        return "lifecycle"
    return "other"


class FleetGateway:
    """Asyncio JSON-over-HTTP gateway in front of a :class:`FleetEngine`.

    Use :meth:`handle_request` directly (no sockets needed — the test
    suite and embedding applications drive it this way), or
    :meth:`serve` to bind a real listening socket.  Either way call
    :meth:`start` first and :meth:`shutdown` when done.
    """

    def __init__(
        self,
        engine: FleetEngine,
        config: GatewayConfig | None = None,
        obs: Observability | None = None,
    ):
        self.engine = engine
        self.config = config or GatewayConfig()
        # One Observability instance spans gateway, engine and service:
        # reuse whatever the engine already carries, else attach ours.
        self.obs = obs or getattr(engine, "obs", None) or Observability()
        self.obs.tracer.enabled = self.config.tracing
        engine.attach_observability(self.obs)
        self.metrics = GatewayMetrics(self.obs.registry)
        self.obs.registry.register_collector(
            "gateway", self.metrics.snapshot, replace=True
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        # One lane per shard; a plain engine is the one-lane case.
        # ``n_shards``/``shard_for`` duck-type the sharded facade so the
        # gateway works with any engine exposing the routing surface.
        self._n_shards = int(getattr(engine, "n_shards", 1))
        self._shard_for = getattr(engine, "shard_for", lambda vehicle_id: 0)
        self._lanes: list[_Lane] = []
        self._draining = False
        self._started = False
        # Head-sampling tick for anonymous requests (GIL-atomic).
        self._trace_tick = itertools.count()
        # Seeded jitter stream for 429 Retry-After values: spreads
        # rejected clients' retries without breaking reproducibility.
        self._retry_rng = random.Random(0x52455052)
        self.address: tuple[str, int] | None = None

    def _retry_after(self) -> dict[str, str]:
        """A jittered ``Retry-After`` header for back-pressure replies."""
        return {
            "Retry-After": str(
                self._retry_rng.randint(1, self.config.retry_after_max_s)
            )
        }

    def _check_ready(self) -> None:
        """503 while the engine's durability layer is still recovering."""
        durability = getattr(self.engine, "durability", None)
        if durability is not None and not durability.ready:
            raise _RequestError(
                503,
                "service is recovering; journal replay in progress",
                {"Retry-After": "1"},
            )

    # -- lifecycle ---------------------------------------------------------

    async def start(self, *, dispatch: bool = True) -> None:
        """Create the queue and worker; optionally start dispatching.

        ``dispatch=False`` leaves the micro-batch dispatcher stopped
        (requests queue up but are not executed) — the admission /
        deadline tests rely on this; call :meth:`start_dispatcher` to
        begin draining.
        """
        if self._started:
            return
        self._loop = asyncio.get_running_loop()
        # ``max_queue`` bounds each lane: admission control is per
        # shard, so one hot shard back-pressures only its own vehicles.
        self._lanes = [
            _Lane(
                shard=shard,
                queue=asyncio.Queue(maxsize=self.config.max_queue),
                pool=ThreadPoolExecutor(
                    max_workers=1,
                    thread_name_prefix=f"gateway-engine-{shard}",
                ),
            )
            for shard in range(self._n_shards)
        ]
        self._draining = False
        self._started = True
        if dispatch:
            self.start_dispatcher()

    def start_dispatcher(self) -> None:
        if not self._started:
            raise RuntimeError("start() the gateway first.")
        for lane in self._lanes:
            if lane.dispatcher is None or lane.dispatcher.done():
                lane.dispatcher = self._loop.create_task(
                    self._dispatch_loop(lane)
                )

    async def serve(
        self, *, host: str | None = None, port: int | None = None
    ) -> tuple[str, int]:
        """Bind the listening socket; returns the bound (host, port)."""
        await self.start()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host if host is not None else self.config.host,
            self.config.port if port is None else port,
        )
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        return self.address

    async def run(self) -> None:
        """Serve until cancelled, then drain gracefully (CLI entry)."""
        await self.serve()
        await self.run_until_closed()

    async def run_until_closed(self) -> None:
        """Block on the already-bound socket until cancelled, then drain."""
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.shutdown()

    async def shutdown(self, *, drain: bool = True) -> None:
        """Stop accepting, optionally flush queued + in-flight work.

        After the drain timeout (or with ``drain=False``) any still
        unanswered predict request fails with ``503``.
        """
        if not self._started:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            with suppress(Exception):
                await self._server.wait_closed()
            self._server = None
        if drain:
            deadline = self._loop.time() + self.config.drain_timeout_s
            while (
                any(
                    not lane.queue.empty() or lane.inflight
                    for lane in self._lanes
                )
                and self._loop.time() < deadline
            ):
                await asyncio.sleep(0.002)
        for lane in self._lanes:
            if lane.dispatcher is not None:
                lane.dispatcher.cancel()
                with suppress(asyncio.CancelledError):
                    await lane.dispatcher
                lane.dispatcher = None
        leftovers: list[_PendingPredict] = []
        for lane in self._lanes:
            leftovers.extend(lane.inflight)
            while not lane.queue.empty():
                leftovers.append(lane.queue.get_nowait())
            lane.inflight = []
        for request in leftovers:
            if not request.future.done():
                request.future.set_exception(
                    _RequestError(503, "gateway shut down")
                )
        await self._loop.run_in_executor(
            self._lanes[0].pool, self.engine.drain
        )
        for lane in self._lanes:
            lane.pool.shutdown(wait=True)
        self._lanes = []
        self._started = False

    @property
    def draining(self) -> bool:
        return self._draining

    async def _engine_call(self, fn, *args):
        """Run an engine/service call off the event loop.

        Unsharded, everything runs on lane 0's single worker thread —
        serializing *every* state-touching call through one thread is
        what keeps HTTP concurrency equivalent to a serial schedule.
        Sharded, lane 0 hosts only the facade's scatter-gather calls
        (each worker process serializes its own RPCs), so admin reads
        never block a predict lane.  The caller's :mod:`contextvars`
        context (which carries the active trace span) crosses into the
        worker with the call.
        """
        ctx = contextvars.copy_context()
        return await self._loop.run_in_executor(
            self._lanes[0].pool, partial(ctx.run, fn, *args)
        )

    # -- engine-shape helpers (plain vs sharded) --------------------------

    def _has_vehicle(self, vehicle_id: str) -> bool:
        if self._n_shards > 1:
            return self.engine.has_vehicle(vehicle_id)
        return self.engine.service.has_vehicle(vehicle_id)

    def _observed_days(self, vehicle_id: str) -> int:
        if self._n_shards > 1:
            return self.engine.n_days(vehicle_id)
        return self.engine.service.n_days(vehicle_id)

    @property
    def _window(self) -> int:
        if self._n_shards > 1:
            return self.engine.window
        return self.engine.service.window

    # -- micro-batching dispatcher ----------------------------------------

    async def _dispatch_loop(self, lane: _Lane) -> None:
        while True:
            request = await lane.queue.get()
            # Track the batch from the instant it leaves the queue so a
            # concurrent drain waits for it (and a cancellation mid-
            # collection can still answer every popped request).
            lane.inflight = batch = [request]
            try:
                window = self.config.batch_window_s
                if window > 0:
                    horizon = self._loop.time() + window
                    while len(batch) < self.config.max_batch_size:
                        remaining = horizon - self._loop.time()
                        if remaining <= 0:
                            break
                        try:
                            batch.append(
                                await asyncio.wait_for(
                                    lane.queue.get(), remaining
                                )
                            )
                        except asyncio.TimeoutError:
                            break
                await self._execute_batch(lane, batch)
            except asyncio.CancelledError:
                for queued in batch:
                    if not queued.future.done():
                        queued.future.set_exception(
                            _RequestError(503, "gateway shut down mid-batch")
                        )
                raise
            finally:
                lane.inflight = []

    async def _execute_batch(
        self, lane: _Lane, batch: list[_PendingPredict]
    ) -> None:
        now = self._loop.time()
        live: list[_PendingPredict] = []
        for request in batch:
            if request.future.done():
                continue  # client went away
            if request.deadline <= now:
                # Expired while queued: answer 504 without ever
                # occupying a slot in the predict_many call.
                self.metrics.note_deadline_expiration()
                if request.span is not None:
                    request.span.event(
                        "deadline-expired", vehicle_id=request.vehicle_id
                    )
                request.future.set_exception(
                    _RequestError(504, "deadline exceeded while queued")
                )
                continue
            live.append(request)
        if not live:
            return
        # predict_many serves sorted(vehicle_ids); sorting the requests
        # the same way (stably) aligns results with their futures even
        # when one vehicle appears several times in a batch.
        live.sort(key=lambda r: r.vehicle_id)
        ids = [r.vehicle_id for r in live]
        started = self._loop.time()
        sharded = self._n_shards > 1
        if sharded:
            # Span objects never cross the process boundary; the lane
            # records one shard-labeled ``engine.predict`` child per
            # traced request from the batch timings afterwards.
            call = partial(
                self.engine.call_shard, lane.shard, "predict_many", ids
            )
        else:
            spans = [r.span for r in live]
            call = partial(self.engine.predict_many, ids, spans=spans)
        try:
            forecasts = await self._loop.run_in_executor(lane.pool, call)
        except asyncio.CancelledError:
            raise  # the dispatch loop answers the batch with 503
        except Exception as exc:
            for request in live:
                if not request.future.done():
                    request.future.set_exception(
                        _RequestError(
                            500, f"batch failed: {type(exc).__name__}: {exc}"
                        )
                    )
        else:
            finished = self._loop.time()
            self.metrics.observe_batch(
                len(live),
                finished - started,
                shard=lane.shard if sharded else None,
            )
            for request, forecast in zip(live, forecasts):
                if sharded and request.span is not None:
                    request.span.tracer.record_span(
                        "engine.predict",
                        request.span,
                        started,
                        finished,
                        vehicle_id=request.vehicle_id,
                        shard=lane.shard,
                    )
                if not request.future.done():
                    request.future.set_result(forecast)

    async def _enqueue_predict(
        self, vehicle_id: str, deadline_s: float
    ) -> Forecast:
        if self._draining:
            raise _RequestError(
                503, "gateway is draining", {"Retry-After": "1"}
            )
        self._check_ready()
        if not self._has_vehicle(vehicle_id):
            raise _RequestError(404, f"unknown vehicle {vehicle_id!r}")
        n_days = self._observed_days(vehicle_id)
        window = self._window
        if n_days <= window:
            raise _RequestError(
                422,
                f"vehicle {vehicle_id!r} has {n_days} observed days; "
                f"window={window} needs at least "
                f"{window + 1}.",
            )
        lane = self._lanes[self._shard_for(vehicle_id)]
        future = self._loop.create_future()
        request = _PendingPredict(
            vehicle_id=vehicle_id,
            future=future,
            deadline=self._loop.time() + deadline_s,
            span=tracing.current_span(),
        )
        shard_label = lane.shard if self._n_shards > 1 else None
        try:
            lane.queue.put_nowait(request)
        except asyncio.QueueFull:
            self.metrics.note_queue_rejection(shard=shard_label)
            tracing.add_event("queue-rejected", vehicle_id=vehicle_id)
            raise _RequestError(
                429, "request queue full", self._retry_after()
            ) from None
        depth = lane.queue.qsize()
        self.metrics.note_queue_depth(depth, shard=shard_label)
        # Queue depth at admission rides as a span attribute rather
        # than an event: an attribute write is a dict store, an event
        # is an allocation — this is the per-request hot path.
        if request.span is not None:
            request.span.set_attribute("queue_depth", depth)
            if shard_label is not None:
                request.span.set_attribute("shard", shard_label)
        return await future

    # -- routing -----------------------------------------------------------

    async def handle_request(
        self,
        method: str,
        target: str,
        body: bytes | None = None,
        headers: dict[str, str] | None = None,
    ) -> GatewayResponse:
        """Route one request; the socket layer and tests both call this.

        Every response — including 429/504/degraded outcomes — carries
        the request id (client-supplied ``X-Repro-Request-Id`` when
        well-formed, else generated) so callers can fetch the matching
        trace from ``/v1/trace/{request_id}``.
        """
        if not self._started:
            raise RuntimeError("start() the gateway before handling requests.")
        method = method.upper()
        parts = urlsplit(target)
        endpoint = _endpoint_label(method, parts.path)
        request_id, supplied = self._request_id(headers)
        root = None
        if self.config.tracing and (
            supplied
            or next(self._trace_tick) % self.config.trace_sample_every == 0
        ):
            root = self.obs.tracer.start_trace(
                request_id,
                f"{method} {parts.path}",
                endpoint=endpoint,
                method=method,
            )
        started = self._loop.time()
        with tracing.activate(root):
            try:
                response = await self._route(
                    method, parts.path, parse_qs(parts.query), body or b""
                )
            except _RequestError as exc:
                response = exc.response()
            except Exception as exc:  # a handler bug must not kill the server
                response = GatewayResponse(
                    500, {"error": f"{type(exc).__name__}: {exc}"}
                )
        self.metrics.observe(
            endpoint, response.status, self._loop.time() - started
        )
        response.headers.setdefault(REQUEST_ID_HEADER, request_id)
        if root is not None:
            root.set_attribute("status", response.status)
            root.finish("ok" if response.status < 400 else f"http-{response.status}")
        return response

    @staticmethod
    def _request_id(headers: dict[str, str] | None) -> tuple[str, bool]:
        """The request's id, plus whether the client supplied it.

        A well-formed client-supplied id forces tracing for that
        request (sampling only thins *anonymous* traffic).
        """
        supplied = (headers or {}).get(REQUEST_ID_HEADER.lower(), "")
        if supplied and _REQUEST_ID_RE.match(supplied):
            return supplied, True
        return uuid.uuid4().hex[:16], False

    async def _route(
        self, method: str, path: str, query: dict, body: bytes
    ) -> GatewayResponse:
        if path in ("/v1/health", "/v1/fleet/health"):
            self._require_method(method, "GET")
            return await self._handle_health()
        if path == "/v1/metrics":
            self._require_method(method, "GET")
            # Collectors read engine/service state, so take the
            # snapshot on the engine thread like any other state read.
            # Sharded, the registry holds only gateway-local sections;
            # the engine-owned ones are scatter-gathered per shard.
            snapshot = await self._engine_call(self._metrics_snapshot)
            return GatewayResponse(200, snapshot)
        if path.startswith("/v1/trace/"):
            self._require_method(method, "GET")
            return self._handle_trace(path)
        if path == "/v1/ingest":
            self._require_method(method, "POST")
            return await self._handle_ingest(body)
        if path == "/v1/lifecycle" or path.startswith("/v1/lifecycle/"):
            return await self._handle_lifecycle(method, path, body)
        if path == "/v1/predict:batch":
            self._require_method(method, "POST")
            return await self._handle_predict_batch(body)
        if path.startswith("/v1/predict/"):
            self._require_method(method, "GET")
            return await self._handle_predict(path, query)
        raise _RequestError(404, f"no route for {path}")

    @staticmethod
    def _require_method(method: str, expected: str) -> None:
        if method != expected:
            raise _RequestError(
                405, f"method {method} not allowed; use {expected}",
                {"Allow": expected},
            )

    @staticmethod
    def _parse_json(body: bytes) -> dict:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _RequestError(400, f"invalid JSON body: {exc}") from None
        if not isinstance(payload, dict):
            raise _RequestError(400, "JSON body must be an object")
        return payload

    def _deadline_s(self, raw: str | None) -> float:
        if raw is None:
            return self.config.default_deadline_s
        try:
            deadline_ms = float(raw)
        except ValueError:
            raise _RequestError(
                400, f"deadline_ms must be a number, got {raw!r}"
            ) from None
        if deadline_ms <= 0:
            raise _RequestError(400, "deadline_ms must be > 0")
        return deadline_ms / 1000.0

    # -- endpoint handlers -------------------------------------------------

    def _handle_trace(self, path: str) -> GatewayResponse:
        request_id = unquote(path[len("/v1/trace/"):])
        if not request_id or "/" in request_id:
            raise _RequestError(404, f"bad trace path {path!r}")
        trace = self.obs.tracer.export(request_id)
        if trace is None:
            raise _RequestError(
                404, f"no trace recorded for request {request_id!r}"
            )
        return GatewayResponse(200, trace)

    async def _handle_health(self) -> GatewayResponse:
        health, readiness = await self._engine_call(self._health_snapshot)
        health = replace(health, gateway=self.metrics.snapshot())
        payload = {
            "status": "draining" if self._draining else "ok",
            "readiness": readiness,
            **health.as_dict(),
        }
        if self._n_shards > 1:
            payload["shards"] = self._n_shards
        return GatewayResponse(200, payload)

    def _health_snapshot(self):
        # Sharded, both calls scatter-gather across every worker and
        # merge (shards own disjoint fleets, so the union is exact).
        return self.engine.health(), self.engine.readiness()

    def _metrics_snapshot(self) -> dict:
        snapshot = self.obs.registry.snapshot()
        if self._n_shards <= 1:
            return snapshot
        sections = self.engine.metrics_sections()
        merged: dict[str, dict] = {}
        for section in sections:
            for name in ("fleet", "drift", "cache"):
                part = section.get(name) or {}
                bucket = merged.setdefault(name, {})
                for key, value in part.items():
                    if isinstance(value, (int, float)):
                        bucket[key] = bucket.get(key, 0) + value
        snapshot.update(merged)
        snapshot["shard_sections"] = {
            str(index): section for index, section in enumerate(sections)
        }
        return snapshot

    async def _handle_predict(
        self, path: str, query: dict
    ) -> GatewayResponse:
        vehicle_id = unquote(path[len("/v1/predict/"):])
        if not vehicle_id or "/" in vehicle_id:
            raise _RequestError(404, f"bad vehicle path {path!r}")
        deadline_s = self._deadline_s(
            query.get("deadline_ms", [None])[0]
        )
        forecast = await self._enqueue_predict(vehicle_id, deadline_s)
        headers = {DEGRADED_HEADER: "true"} if forecast.degraded else {}
        return GatewayResponse(200, forecast.to_dict(), headers)

    async def _handle_predict_batch(self, body: bytes) -> GatewayResponse:
        payload = self._parse_json(body)
        vehicle_ids = payload.get("vehicle_ids")
        if not isinstance(vehicle_ids, list) or not all(
            isinstance(v, str) for v in vehicle_ids
        ):
            raise _RequestError(
                400, "body must carry 'vehicle_ids': [str, ...]"
            )
        if not vehicle_ids:
            raise _RequestError(400, "'vehicle_ids' must not be empty")
        deadline_raw = payload.get("deadline_ms")
        deadline_s = self._deadline_s(
            None if deadline_raw is None else str(deadline_raw)
        )
        outcomes = await asyncio.gather(
            *(
                self._enqueue_predict(vehicle_id, deadline_s)
                for vehicle_id in vehicle_ids
            ),
            return_exceptions=True,
        )
        forecasts: list[dict] = []
        errors = 0
        any_degraded = False
        for vehicle_id, outcome in zip(vehicle_ids, outcomes):
            if isinstance(outcome, Forecast):
                forecasts.append(outcome.to_dict())
                any_degraded = any_degraded or outcome.degraded
            elif isinstance(outcome, _RequestError):
                errors += 1
                forecasts.append(
                    {
                        "vehicle_id": vehicle_id,
                        "error": outcome.message,
                        "status": outcome.status,
                    }
                )
            else:
                raise outcome
        headers = {DEGRADED_HEADER: "true"} if any_degraded else {}
        return GatewayResponse(
            200, {"forecasts": forecasts, "errors": errors}, headers
        )

    async def _handle_lifecycle(
        self, method: str, path: str, body: bytes
    ) -> GatewayResponse:
        """Admin surface of the lifecycle controller.

        Every action runs on the engine thread like any other state
        mutation, so an operator rollback can never interleave with an
        in-flight predict batch.
        """
        controller = getattr(self.engine, "lifecycle", None)
        if controller is None:
            raise _RequestError(
                503, "no lifecycle controller attached to this engine"
            )
        if path == "/v1/lifecycle":
            self._require_method(method, "GET")
            return GatewayResponse(
                200, await self._engine_call(controller.status)
            )
        self._require_method(method, "POST")
        self._check_ready()
        if path == "/v1/lifecycle/run":
            entries = await self._engine_call(controller.run_once)
            return GatewayResponse(200, {"evaluated": entries})
        rest = unquote(path[len("/v1/lifecycle/"):])
        vehicle_id, _, action = rest.rpartition("/")
        if not vehicle_id or action not in (
            "promote", "rollback", "pin", "unpin"
        ):
            raise _RequestError(404, f"no lifecycle route for {path!r}")
        if not self._has_vehicle(vehicle_id):
            raise _RequestError(404, f"unknown vehicle {vehicle_id!r}")
        payload = self._parse_json(body) if body else {}
        version = payload.get("version")
        if version is not None and (
            isinstance(version, bool) or not isinstance(version, int)
        ):
            raise _RequestError(400, "'version' must be an integer")
        reason = payload.get("reason")
        if reason is not None and not isinstance(reason, str):
            raise _RequestError(400, "'reason' must be a string")
        try:
            if action == "promote":
                entry = await self._engine_call(
                    partial(
                        controller.evaluate_vehicle,
                        vehicle_id,
                        reason or "operator request",
                    )
                )
            elif action == "rollback":
                entry = await self._engine_call(
                    partial(
                        controller.rollback,
                        vehicle_id,
                        version,
                        quarantine_current=bool(
                            payload.get("quarantine", False)
                        ),
                        reason=reason,
                    )
                )
            elif action == "pin":
                if version is None:
                    raise _RequestError(400, "pin requires 'version'")
                entry = await self._engine_call(
                    partial(controller.pin, vehicle_id, version, reason=reason)
                )
            else:
                entry = await self._engine_call(
                    partial(controller.unpin, vehicle_id, reason=reason)
                )
        except KeyError as exc:  # unknown stored version
            raise _RequestError(404, str(exc)) from None
        except ValueError as exc:  # no store / no prior version / corrupt
            raise _RequestError(422, str(exc)) from None
        return GatewayResponse(200, entry)

    async def _handle_ingest(self, body: bytes) -> GatewayResponse:
        if self._draining:
            raise _RequestError(
                503, "gateway is draining", {"Retry-After": "1"}
            )
        self._check_ready()
        payload = self._parse_json(body)
        if "readings" in payload:
            raw_records = payload["readings"]
            if not isinstance(raw_records, list) or not raw_records:
                raise _RequestError(
                    400, "'readings' must be a non-empty list"
                )
        else:
            raw_records = [payload]
        records = [self._parse_reading(record) for record in raw_records]
        ingested, error = await self._engine_call(self._ingest_records, records)
        if error is not None:
            return GatewayResponse(
                422, {"error": error, "ingested": ingested}
            )
        return GatewayResponse(200, {"ingested": ingested})

    @staticmethod
    def _parse_reading(record) -> tuple[str, float, int | None]:
        if not isinstance(record, dict):
            raise _RequestError(400, "each reading must be an object")
        vehicle_id = record.get("vehicle_id")
        if not isinstance(vehicle_id, str) or not vehicle_id:
            raise _RequestError(
                400, "each reading needs a non-empty 'vehicle_id'"
            )
        seconds = record.get("seconds")
        if not isinstance(seconds, (int, float)) or isinstance(seconds, bool):
            raise _RequestError(
                400, f"reading for {vehicle_id!r} needs numeric 'seconds'"
            )
        day = record.get("day")
        if day is not None and not isinstance(day, int):
            raise _RequestError(
                400, f"reading for {vehicle_id!r}: 'day' must be an integer"
            )
        return vehicle_id, float(seconds), day

    def _ingest_records(
        self, records: list[tuple[str, float, int | None]]
    ) -> tuple[int, str | None]:
        """Runs on the engine thread; returns (ingested, error).

        The batch-application loop lives on the engine
        (:meth:`FleetEngine.ingest_records`) so the in-process lane and
        the sharded worker processes apply records identically; the
        sharded facade partitions the batch by owning shard first.
        """
        return self.engine.ingest_records(
            records, auto_register=self.config.auto_register
        )

    # -- HTTP socket layer -------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    parsed = await self._read_http_request(reader)
                except _RequestError as exc:
                    writer.write(exc.response().encode(keep_alive=False))
                    await writer.drain()
                    break
                if parsed is None:
                    break
                method, target, headers, body = parsed
                response = await self.handle_request(
                    method, target, body, headers
                )
                keep_alive = (
                    headers.get("connection", "").lower() != "close"
                )
                writer.write(response.encode(keep_alive=keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            pass
        finally:
            writer.close()
            with suppress(Exception):
                await writer.wait_closed()

    async def _read_http_request(self, reader):
        """Parse one HTTP/1.1 request; None on clean EOF."""
        try:
            line = await reader.readline()
        except (ValueError, asyncio.LimitOverrunError):
            raise _RequestError(400, "request line too long") from None
        if not line:
            return None
        fields = line.decode("latin-1").strip().split(" ")
        if len(fields) != 3:
            raise _RequestError(400, "malformed request line")
        method, target, _version = fields
        headers: dict[str, str] = {}
        while True:
            try:
                raw = await reader.readline()
            except (ValueError, asyncio.LimitOverrunError):
                raise _RequestError(400, "header line too long") from None
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length_raw = headers.get("content-length", "0") or "0"
        try:
            length = int(length_raw)
        except ValueError:
            raise _RequestError(
                400, f"bad Content-Length {length_raw!r}"
            ) from None
        if length < 0:
            raise _RequestError(400, f"bad Content-Length {length_raw!r}")
        if length > self.config.max_body_bytes:
            raise _RequestError(
                413,
                f"body of {length} bytes exceeds the "
                f"{self.config.max_body_bytes}-byte cap",
            )
        body = b""
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                return None
        return method, target, headers, body
