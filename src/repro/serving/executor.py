"""Deterministic fan-out executor for fleet-sized workloads.

A thin wrapper over :mod:`concurrent.futures` shared by the fleet
engine and the experiment drivers.  Three kinds:

* ``"serial"`` — plain in-process loop (the reference path);
* ``"thread"`` — :class:`~concurrent.futures.ThreadPoolExecutor`
  (default; model fits release little GIL but I/O and numpy-heavy
  stages overlap, and it needs no pickling);
* ``"process"`` — :class:`~concurrent.futures.ProcessPoolExecutor`
  (opt-in; true CPU parallelism, tasks and results must pickle).

Results always come back in submission order, so a parallel run is a
drop-in replacement for the serial loop — same outputs, same order.
"""

from __future__ import annotations

import contextvars
import os
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

__all__ = ["EXECUTOR_KINDS", "FleetExecutor", "default_max_workers"]

EXECUTOR_KINDS: tuple[str, ...] = ("serial", "thread", "process")


def default_max_workers() -> int:
    """A conservative default worker count for this host."""
    return min(32, os.cpu_count() or 1)


class FleetExecutor:
    """Ordered map over a pool of workers.

    Parameters
    ----------
    max_workers:
        Upper bound on concurrent workers; ``None`` uses
        :func:`default_max_workers`.  ``1`` degenerates to the serial
        loop regardless of ``kind``.
    kind:
        ``"serial"``, ``"thread"`` (default) or ``"process"``.
    """

    def __init__(self, max_workers: int | None = None, kind: str = "thread"):
        if kind not in EXECUTOR_KINDS:
            raise ValueError(
                f"Unknown executor kind {kind!r}; choose from {EXECUTOR_KINDS}."
            )
        if max_workers is not None and max_workers < 1:
            raise ValueError(
                f"max_workers must be >= 1, got {max_workers}."
            )
        self.max_workers = (
            default_max_workers() if max_workers is None else int(max_workers)
        )
        self.kind = kind

    def __repr__(self) -> str:
        return (
            f"FleetExecutor(kind={self.kind!r}, "
            f"max_workers={self.max_workers})"
        )

    def map_ordered(self, fn: Callable, items: Iterable) -> list:
        """Apply ``fn`` to every item; results in input order.

        With ``kind="process"`` both ``fn`` and the items must be
        picklable (use a module-level callable, not a closure).
        """
        items = list(items)
        workers = min(self.max_workers, len(items))
        if self.kind == "serial" or workers <= 1:
            return [fn(item) for item in items]
        if self.kind == "thread":
            # Carry the caller's contextvars (the active trace span)
            # into the pool.  One Context object cannot be entered by
            # two threads at once, so each item gets its own copy.
            contexts = [contextvars.copy_context() for _ in items]
            with ThreadPoolExecutor(max_workers=workers) as pool:
                return list(
                    pool.map(lambda ctx, item: ctx.run(fn, item), contexts, items)
                )
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, items))

    @classmethod
    def resolve(
        cls,
        executor: "FleetExecutor | None",
        fn: Callable,
        items: Sequence,
    ) -> list:
        """Run through ``executor`` when given, else the serial loop."""
        if executor is None:
            return [fn(item) for item in items]
        return executor.map_ordered(fn, items)
