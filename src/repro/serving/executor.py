"""Deterministic fan-out executor for fleet-sized workloads.

A thin wrapper over :mod:`concurrent.futures` shared by the fleet
engine and the experiment drivers.  Three kinds:

* ``"serial"`` — plain in-process loop (the reference path);
* ``"thread"`` — :class:`~concurrent.futures.ThreadPoolExecutor`
  (default; model fits release little GIL but I/O and numpy-heavy
  stages overlap, and it needs no pickling);
* ``"process"`` — :class:`~concurrent.futures.ProcessPoolExecutor`
  (opt-in; true CPU parallelism, tasks and results must pickle).

Results always come back in submission order, so a parallel run is a
drop-in replacement for the serial loop — same outputs, same order.

Each :class:`FleetExecutor` owns **one persistent pool**, created
lazily on the first parallel :meth:`~FleetExecutor.map_ordered` and
reused for every later call.  The previous implementation built and
tore down a fresh ``ThreadPoolExecutor`` per call, which at serving
rates meant thousands of thread spawn/join cycles per second for
single-digit-item batches.  Call :meth:`~FleetExecutor.close` (or use
the executor as a context manager) to release the workers; an
executor that is simply dropped releases them when it is garbage
collected, because pool workers hold only a weak reference to their
pool.
"""

from __future__ import annotations

import contextvars
import os
import threading
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

__all__ = ["EXECUTOR_KINDS", "FleetExecutor", "default_max_workers"]

EXECUTOR_KINDS: tuple[str, ...] = ("serial", "thread", "process")


def default_max_workers() -> int:
    """A conservative default worker count for this host."""
    return min(32, os.cpu_count() or 1)


class FleetExecutor:
    """Ordered map over a persistent pool of workers.

    Parameters
    ----------
    max_workers:
        Upper bound on concurrent workers; ``None`` uses
        :func:`default_max_workers`.  ``1`` degenerates to the serial
        loop regardless of ``kind``.
    kind:
        ``"serial"``, ``"thread"`` (default) or ``"process"``.

    The underlying pool is created on the first parallel call and kept
    for the executor's lifetime — repeated ``map_ordered`` calls reuse
    the same workers instead of respawning them.  ``close()`` shuts the
    pool down; a closed executor refuses further work.
    """

    def __init__(self, max_workers: int | None = None, kind: str = "thread"):
        if kind not in EXECUTOR_KINDS:
            raise ValueError(
                f"Unknown executor kind {kind!r}; choose from {EXECUTOR_KINDS}."
            )
        if max_workers is not None and max_workers < 1:
            raise ValueError(
                f"max_workers must be >= 1, got {max_workers}."
            )
        self.max_workers = (
            default_max_workers() if max_workers is None else int(max_workers)
        )
        self.kind = kind
        self._pool: ThreadPoolExecutor | ProcessPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self._closed = False

    def __repr__(self) -> str:
        return (
            f"FleetExecutor(kind={self.kind!r}, "
            f"max_workers={self.max_workers})"
        )

    @property
    def closed(self) -> bool:
        return self._closed

    def _ensure_pool(self):
        """The persistent pool, created on first use."""
        with self._pool_lock:
            if self._closed:
                raise RuntimeError("FleetExecutor is closed.")
            if self._pool is None:
                if self.kind == "thread":
                    self._pool = ThreadPoolExecutor(
                        max_workers=self.max_workers,
                        thread_name_prefix="fleet-worker",
                    )
                else:
                    self._pool = ProcessPoolExecutor(
                        max_workers=self.max_workers
                    )
            return self._pool

    def close(self) -> None:
        """Shut the persistent pool down; idempotent.

        Waits for in-flight tasks (an ordered map has consumed all its
        results by the time it returns, so in practice the pool is
        idle).  After ``close()`` any ``map_ordered`` that needs the
        pool raises ``RuntimeError``.
        """
        with self._pool_lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "FleetExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def map_ordered(self, fn: Callable, items: Iterable) -> list:
        """Apply ``fn`` to every item; results in input order.

        With ``kind="process"`` both ``fn`` and the items must be
        picklable (use a module-level callable, not a closure).
        """
        items = list(items)
        if (
            self.kind == "serial"
            or min(self.max_workers, len(items)) <= 1
        ):
            if self._closed:
                raise RuntimeError("FleetExecutor is closed.")
            return [fn(item) for item in items]
        pool = self._ensure_pool()
        if self.kind == "thread":
            # Carry the caller's contextvars (the active trace span)
            # into the pool.  One Context object cannot be entered by
            # two threads at once, so each item gets its own copy.
            contexts = [contextvars.copy_context() for _ in items]
            return list(
                pool.map(lambda ctx, item: ctx.run(fn, item), contexts, items)
            )
        return list(pool.map(fn, items))

    @classmethod
    def resolve(
        cls,
        executor: "FleetExecutor | None",
        fn: Callable,
        items: Sequence,
    ) -> list:
        """Run through ``executor`` when given, else the serial loop."""
        if executor is None:
            return [fn(item) for item in items]
        return executor.map_ordered(fn, items)
