"""Shared-nothing shard pool: partition the fleet across N engines.

Every serving layer so far — batch engine, gateway, durability,
lifecycle — funnels through a *single* :class:`~repro.serving.engine.
FleetEngine` with one dispatcher queue and one journal: the remaining
vertical-scale ceiling.  The paper's methodology makes horizontal
partitioning natural: OLD vehicles serve **per-vehicle** models, so a
vehicle's forecast depends only on that vehicle's own history — a
fleet split by vehicle hash is genuinely shared-nothing.

:class:`ShardedFleetEngine` runs N engines, one per **worker
process**, each owning an exclusive slice of the fleet:

* **routing** — :class:`ShardRouter` maps ``vehicle_id -> shard`` with
  a consistent-hash ring built from :mod:`hashlib` (BLAKE2), so the
  mapping is total, deterministic across interpreter restarts and
  ``PYTHONHASHSEED`` values, and stable for a fixed shard count;
  growing the ring moves only the keys claimed by the new shard.
* **shared-nothing state** — each worker holds its own service, cycle
  cache, drift monitor, model store partition, journal + checkpoint
  directory (``shard-00/ …``) and lifecycle controller.  Workers
  recover their journal partitions in parallel at startup (all
  processes replay concurrently; the parent waits for every ready
  handshake).
* **process isolation** — per-vehicle prediction is CPU-bound Python
  that barely releases the GIL, so thread-based shards cannot scale
  it.  Worker processes can: ``benchmarks/bench_shard.py`` gates
  multi-shard throughput against the single-shard path and pins the
  forecasts bit-identical.

The parent process keeps only routing metadata (which vehicles exist,
how many days each has observed) — authoritative values returned by
every mutating RPC — so the gateway can validate requests without a
cross-process round trip on the hot path.

Cold-start semantics under sharding: SEMI-NEW/NEW vehicles use donor
models built from *old* vehicles, and a shard only sees its own slice
of the fleet, so donor pools are shard-local.  Forecast bit-identity
with the unsharded path therefore holds for OLD vehicles (per-vehicle
models — the steady-state fleet); cold-start vehicles get forecasts
built from their shard's donors.
"""

from __future__ import annotations

import bisect
import hashlib
import multiprocessing
import threading
from collections.abc import Iterable, Mapping
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from pathlib import Path

from .engine import EngineConfig, FleetEngine
from .executor import default_max_workers
from .reliability import FleetHealth
from .service import Forecast

__all__ = [
    "ShardRouter",
    "ShardWorker",
    "ShardedFleetEngine",
    "build_shard_engine",
    "merge_fleet_health",
]


def _hash64(data: bytes) -> int:
    """Stable 64-bit hash (BLAKE2b) — independent of PYTHONHASHSEED."""
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8).digest(), "big"
    )


class ShardRouter:
    """Deterministic consistent-hash ring: ``vehicle_id -> shard``.

    Each shard contributes ``replicas`` points on a 64-bit ring; a
    vehicle lands on the shard owning the first point clockwise of its
    own hash.  Keyed entirely by :func:`hashlib.blake2b`, so the map is
    identical across processes, platforms and hash seeds.  Adding a
    shard reclaims only the keys whose successor point belongs to the
    new shard (~1/N of them) — every other assignment is untouched.
    """

    def __init__(self, n_shards: int, *, replicas: int = 64):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}.")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}.")
        self.n_shards = n_shards
        self.replicas = replicas
        ring = []
        for shard in range(n_shards):
            for replica in range(replicas):
                point = _hash64(f"shard-{shard}/{replica}".encode("utf-8"))
                ring.append((point, shard))
        ring.sort()
        self._points = [point for point, _ in ring]
        self._owners = [shard for _, shard in ring]

    def shard_for(self, vehicle_id: str) -> int:
        """The owning shard of ``vehicle_id``; total over all strings."""
        point = _hash64(vehicle_id.encode("utf-8"))
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):  # wrap past the last ring point
            index = 0
        return self._owners[index]

    def partition(self, vehicle_ids: Iterable[str]) -> dict[int, list[str]]:
        """Group ids by owning shard, preserving input order per shard."""
        groups: dict[int, list[str]] = {}
        for vehicle_id in vehicle_ids:
            groups.setdefault(self.shard_for(vehicle_id), []).append(
                vehicle_id
            )
        return groups


def merge_fleet_health(reports: list[FleetHealth]) -> FleetHealth:
    """Union of per-shard health reports (shards own disjoint fleets)."""
    vehicles: dict = {}
    persist_failures = 0
    dead_letter_overflow = 0
    for report in reports:
        vehicles.update(report.vehicles)
        persist_failures += report.persist_failures
        dead_letter_overflow += report.dead_letter_overflow
    return FleetHealth(
        vehicles=vehicles,
        persist_failures=persist_failures,
        dead_letter_overflow=dead_letter_overflow,
    )


def build_shard_engine(
    shard_index: int,
    *,
    config: EngineConfig | None = None,
    store_dir: str | None = None,
    resilient: bool = False,
    monitor: bool = True,
    service_kwargs: dict | None = None,
) -> FleetEngine:
    """Default per-shard engine factory (module-level, picklable).

    ``store_dir`` gets a ``shard-XX`` partition so artifact versions
    never collide across shards; ``resilient`` attaches the guard /
    breaker / retry stack; ``monitor`` attaches a per-shard
    :class:`~repro.serving.monitoring.DriftMonitor` so drift sweeps are
    shard-local.
    """
    kwargs = dict(service_kwargs or {})
    if monitor and "monitor" not in kwargs:
        from .monitoring import DriftMonitor

        kwargs["monitor"] = DriftMonitor()
    if resilient:
        from .reliability import CircuitBreaker, IngestionGuard, RetryPolicy

        kwargs.setdefault("guard", IngestionGuard())
        kwargs.setdefault("breaker", CircuitBreaker())
        kwargs.setdefault("retry", RetryPolicy())
    if store_dir is not None:
        from .persistence import ModelStore

        partition = Path(store_dir) / f"shard-{shard_index:02d}"
        partition.mkdir(parents=True, exist_ok=True)
        kwargs["store"] = ModelStore(partition)
    return FleetEngine(config=config, **kwargs)


# -- worker process ---------------------------------------------------------


def _shard_worker_main(conn, shard_index: int, factory, options: dict) -> None:
    """Command loop of one shard worker process.

    Builds the shard's engine, recovers its durability partition (if
    any), attaches a lifecycle controller (if asked), sends the ready
    handshake with its bootstrap metadata, then serves RPCs until
    ``__shutdown__`` or EOF.
    """
    engine = factory(shard_index)
    bootstrap: dict = {"shard": shard_index}
    manager = None
    if options.get("durable_dir"):
        from ..durability import RecoveryManager

        manager = RecoveryManager(options["durable_dir"], engine.service)
        report = manager.recover()
        engine.attach_durability(manager)
        bootstrap["recovery"] = report.as_dict()
    if options.get("lifecycle"):
        from ..lifecycle import LifecycleController

        LifecycleController(engine)  # registers itself on the engine
    service = engine.service
    bootstrap["window"] = service.window
    bootstrap["t_v"] = service.t_v
    bootstrap["n_days"] = {
        vehicle_id: service.n_days(vehicle_id)
        for vehicle_id in service.vehicle_ids
    }

    def _n_days(vehicle_ids) -> dict[str, int]:
        return {
            vehicle_id: service.n_days(vehicle_id)
            for vehicle_id in vehicle_ids
        }

    def do_register(vehicle_ids):
        for vehicle_id in sorted(vehicle_ids):
            service.register_vehicle(vehicle_id)
        return _n_days(vehicle_ids)

    def do_ingest_history(vehicle_id, usage):
        engine.ingest_history(vehicle_id, usage)
        return service.n_days(vehicle_id)

    def do_ingest_day(usage_by_vehicle, day=None):
        engine.ingest_day(usage_by_vehicle, day=day)
        return _n_days(usage_by_vehicle)

    def do_ingest_records(records, auto_register=True):
        ingested, error = engine.ingest_records(
            records, auto_register=auto_register
        )
        touched = {vehicle_id for vehicle_id, _s, _d in records}
        return ingested, error, _n_days(
            [v for v in touched if service.has_vehicle(v)]
        )

    def do_lifecycle(action, *args, **kwargs):
        controller = engine.lifecycle
        if controller is None:
            raise ValueError("no lifecycle controller attached to this shard")
        return getattr(controller, action)(*args, **kwargs)

    def do_checkpoint():
        return None if manager is None else manager.checkpoint()

    def do_durability_status():
        return None if manager is None else manager.status()

    handlers = {
        "register": do_register,
        "ingest_history": do_ingest_history,
        "ingest_day": do_ingest_day,
        "ingest_records": do_ingest_records,
        "predict_many": lambda ids: engine.predict_many(ids),
        "predict_all": lambda **kw: engine.predict_all(**kw),
        "refresh_models": engine.refresh_models,
        "health": engine.health,
        "readiness": engine.readiness,
        "metrics_section": engine.metrics_section,
        "cache_stats": lambda: engine.cache_stats,
        "drain": engine.drain,
        "lifecycle": do_lifecycle,
        "checkpoint": do_checkpoint,
        "durability_status": do_durability_status,
    }
    conn.send(("ready", bootstrap))
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                break
            method, args, kwargs = message
            if method == "__shutdown__":
                if manager is not None:
                    manager.close()
                engine.close()
                conn.send(("ok", None))
                break
            try:
                result = handlers[method](*args, **kwargs)
            except Exception as exc:
                try:
                    conn.send(("err", exc))
                except Exception:
                    conn.send(("err", f"{type(exc).__name__}: {exc}"))
            else:
                conn.send(("ok", result))
    finally:
        conn.close()


class ShardWorker:
    """Parent-side handle of one shard worker process.

    One request/response RPC at a time per worker (an internal lock
    serializes callers), mirroring the engine's single-threaded
    correctness contract inside the worker.
    """

    def __init__(
        self,
        shard_index: int,
        factory,
        *,
        options: dict | None = None,
        context=None,
    ):
        ctx = context or multiprocessing.get_context("fork")
        self.shard_index = shard_index
        self._conn, child_conn = ctx.Pipe()
        self._lock = threading.Lock()
        self.process = ctx.Process(
            target=_shard_worker_main,
            args=(child_conn, shard_index, factory, options or {}),
            daemon=True,
            name=f"repro-shard-{shard_index:02d}",
        )
        self.process.start()
        child_conn.close()
        self.bootstrap: dict | None = None  # filled by await_ready()

    def await_ready(self) -> dict:
        """Block for the worker's ready handshake; returns bootstrap."""
        if self.bootstrap is None:
            kind, payload = self._conn.recv()
            if kind != "ready":
                raise RuntimeError(
                    f"shard {self.shard_index} failed to start: {payload}"
                )
            self.bootstrap = payload
        return self.bootstrap

    def call(self, method: str, *args, **kwargs):
        """One blocking RPC round trip to the worker."""
        with self._lock:
            self._conn.send((method, args, kwargs))
            kind, payload = self._conn.recv()
        if kind == "err":
            if isinstance(payload, BaseException):
                raise payload
            raise RuntimeError(payload)
        return payload

    def close(self, *, timeout: float = 30.0) -> None:
        """Graceful shutdown (checkpoints durability); then terminate."""
        if self.process.is_alive():
            try:
                with self._lock:
                    self._conn.send(("__shutdown__", (), {}))
                    self._conn.recv()
            except (BrokenPipeError, EOFError, OSError):
                pass
        self.process.join(timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout)
        self._conn.close()


class ShardedFleetEngine:
    """N shared-nothing :class:`FleetEngine` shards behind one facade.

    Parameters
    ----------
    n_shards:
        Number of worker processes (>= 1).
    engine_factory:
        ``factory(shard_index) -> FleetEngine`` run *inside* each
        worker.  Defaults to :func:`build_shard_engine` over
        ``service_kwargs``.  Worker processes are forked, so the
        factory may close over in-memory state (a preloaded fleet)
        without pickling it.
    router:
        Routing override; defaults to ``ShardRouter(n_shards)``.
    lifecycle:
        Attach a per-shard lifecycle controller in every worker and
        expose the scatter-gather :attr:`lifecycle` admin facade.
    durable_dir:
        Base state directory; each worker recovers and journals its own
        ``shard-XX`` partition.  Recovery runs in parallel: all workers
        replay concurrently before the first RPC is accepted.
    service_kwargs:
        Forwarded to the default factory (``t_v=…``, ``window=…``,
        ``algorithm=…``); invalid with an explicit ``engine_factory``.

    Worker pools are capped fleet-wide: unless ``config`` overrides it,
    each shard engine gets ``default_max_workers() // n_shards``
    workers (at least one) so N shards never oversubscribe the host.
    """

    def __init__(
        self,
        n_shards: int,
        engine_factory=None,
        *,
        router: ShardRouter | None = None,
        config: EngineConfig | None = None,
        lifecycle: bool = False,
        durable_dir=None,
        store_dir=None,
        resilient: bool = False,
        monitor: bool = True,
        **service_kwargs,
    ):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}.")
        if engine_factory is not None and service_kwargs:
            raise ValueError(
                "Pass service_kwargs only when the pool builds the "
                "engines itself."
            )
        self.n_shards = n_shards
        self.router = router or ShardRouter(n_shards)
        if self.router.n_shards != n_shards:
            raise ValueError(
                f"router covers {self.router.n_shards} shards, "
                f"pool has {n_shards}."
            )
        if engine_factory is None:
            if config is None:
                config = EngineConfig(
                    max_workers=max(1, default_max_workers() // n_shards)
                )
            engine_factory = partial(
                build_shard_engine,
                config=config,
                store_dir=None if store_dir is None else str(store_dir),
                resilient=resilient,
                monitor=monitor,
                service_kwargs=service_kwargs,
            )
        self._base_durable_dir = (
            None if durable_dir is None else Path(durable_dir)
        )
        self.workers: list[ShardWorker] = []
        for index in range(n_shards):
            options: dict = {"lifecycle": lifecycle}
            if self._base_durable_dir is not None:
                options["durable_dir"] = str(
                    self._base_durable_dir / f"shard-{index:02d}"
                )
            self.workers.append(
                ShardWorker(index, engine_factory, options=options)
            )
        # All workers are live before any handshake is consumed, so
        # per-shard journal replay happens concurrently.
        self.bootstraps = [worker.await_ready() for worker in self.workers]
        self.window = self.bootstraps[0].get("window")
        self.t_v = self.bootstraps[0].get("t_v")
        self._n_days: dict[str, int] = {}
        for bootstrap in self.bootstraps:
            self._n_days.update(bootstrap.get("n_days", {}))
        self._scatter_pool = ThreadPoolExecutor(
            max_workers=n_shards, thread_name_prefix="shard-rpc"
        )
        self.obs = None
        self.lifecycle = ShardedLifecycle(self) if lifecycle else None
        self.durability = (
            ShardedDurability(self)
            if self._base_durable_dir is not None
            else None
        )
        self._closed = False

    # -- plumbing ----------------------------------------------------------

    def shard_for(self, vehicle_id: str) -> int:
        return self.router.shard_for(vehicle_id)

    def call_shard(self, shard_index: int, method: str, *args, **kwargs):
        return self.workers[shard_index].call(method, *args, **kwargs)

    def scatter(self, method: str, *args, **kwargs) -> list:
        """Run one RPC on every shard concurrently; results by shard."""
        return list(
            self._scatter_pool.map(
                lambda worker: worker.call(method, *args, **kwargs),
                self.workers,
            )
        )

    def attach_observability(self, obs) -> None:
        """Remember the gateway's observability handle.

        Shard state lives in other processes, so no registry collectors
        are installed here — the gateway scatter-gathers each shard's
        :meth:`FleetEngine.metrics_section` at snapshot time instead.
        """
        self.obs = obs

    # -- fleet state -------------------------------------------------------

    @property
    def vehicle_ids(self) -> list[str]:
        return sorted(self._n_days)

    def has_vehicle(self, vehicle_id: str) -> bool:
        return vehicle_id in self._n_days

    def n_days(self, vehicle_id: str) -> int:
        return self._n_days[vehicle_id]

    def register_fleet(self, vehicle_ids: Iterable[str]) -> None:
        groups = self.router.partition(vehicle_ids)
        for shard_index, futures in self._scatter_groups(
            groups, "register"
        ):
            self._n_days.update(futures)

    def _scatter_groups(self, groups: dict[int, list], method: str, **kwargs):
        """Run ``method(group)`` on each owning shard concurrently."""
        items = sorted(groups.items())
        results = list(
            self._scatter_pool.map(
                lambda item: self.workers[item[0]].call(
                    method, item[1], **kwargs
                ),
                items,
            )
        )
        return [(shard, result) for (shard, _), result in zip(items, results)]

    def ingest_history(self, vehicle_id: str, usage) -> None:
        shard = self.shard_for(vehicle_id)
        if vehicle_id not in self._n_days:
            self._n_days.update(
                self.workers[shard].call("register", [vehicle_id])
            )
        self._n_days[vehicle_id] = self.workers[shard].call(
            "ingest_history", vehicle_id, usage
        )

    def ingest_day(
        self, usage_by_vehicle: Mapping[str, float], *, day: int | None = None
    ) -> None:
        groups = self.router.partition(sorted(usage_by_vehicle))
        shard_batches = {
            shard: {v: float(usage_by_vehicle[v]) for v in ids}
            for shard, ids in groups.items()
        }
        for _shard, n_days in self._scatter_groups(
            {s: b for s, b in shard_batches.items()}, "ingest_day", day=day
        ):
            self._n_days.update(n_days)

    def ingest_records(
        self,
        records: list[tuple[str, float, int | None]],
        *,
        auto_register: bool = True,
    ) -> tuple[int, str | None]:
        """Scatter gateway-shaped records to their owning shards.

        Records keep their relative order within a shard; the combined
        error (if any) is the first failing shard's, by shard index.
        """
        groups: dict[int, list] = {}
        for record in records:
            groups.setdefault(self.shard_for(record[0]), []).append(record)
        ingested = 0
        error = None
        for _shard, (count, shard_error, n_days) in self._scatter_groups(
            groups, "ingest_records", auto_register=auto_register
        ):
            ingested += count
            self._n_days.update(n_days)
            if shard_error is not None and error is None:
                error = shard_error
        return ingested, error

    # -- prediction --------------------------------------------------------

    def predict_many(self, vehicle_ids: Iterable[str]) -> list[Forecast]:
        """Scatter a batch to its shards; results in sorted-id order."""
        ids = list(vehicle_ids)
        groups = self.router.partition(ids)
        forecasts: list[Forecast] = []
        for _shard, result in self._scatter_groups(groups, "predict_many"):
            forecasts.extend(result)
        forecasts.sort(key=lambda forecast: forecast.vehicle_id)
        return forecasts

    def predict_all(self, *, skip_unready: bool = True) -> list[Forecast]:
        forecasts = [
            forecast
            for shard_result in self.scatter(
                "predict_all", skip_unready=skip_unready
            )
            for forecast in shard_result
        ]
        forecasts.sort(key=lambda forecast: forecast.vehicle_id)
        return forecasts

    def refresh_models(self) -> int:
        return sum(self.scatter("refresh_models"))

    # -- observability / health -------------------------------------------

    def health(self) -> FleetHealth:
        return merge_fleet_health(self.scatter("health"))

    def readiness(self) -> dict:
        per_shard = self.scatter("readiness")
        merged = {
            "vehicles": sum(r["vehicles"] for r in per_shard),
            "ready": sum(r["ready"] for r in per_shard),
            "inflight": sum(r["inflight"] for r in per_shard),
            "cache": self._merge_counter_dicts(
                [r["cache"] for r in per_shard]
            ),
            "shards": {
                str(index): report for index, report in enumerate(per_shard)
            },
        }
        return merged

    @property
    def cache_stats(self) -> dict[str, int] | None:
        return self._merge_counter_dicts(self.scatter("cache_stats"))

    @staticmethod
    def _merge_counter_dicts(dicts: list) -> dict | None:
        present = [d for d in dicts if d]
        if not present:
            return None
        merged: dict = {}
        for entry in present:
            for key, value in entry.items():
                merged[key] = merged.get(key, 0) + value
        return merged

    def metrics_sections(self) -> list[dict]:
        """Per-shard engine metric sections, gathered concurrently."""
        return self.scatter("metrics_section")

    # -- lifecycle ---------------------------------------------------------

    def drain(self, timeout: float | None = None) -> bool:
        return all(self.scatter("drain", timeout))

    def close(self) -> None:
        """Shut every worker down (checkpointing durable shards)."""
        if self._closed:
            return
        self._closed = True
        list(
            self._scatter_pool.map(
                lambda worker: worker.close(), self.workers
            )
        )
        self._scatter_pool.shutdown(wait=True)

    def __enter__(self) -> "ShardedFleetEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ShardedLifecycle:
    """Scatter-gather admin facade over the per-shard controllers.

    Implements the :class:`~repro.lifecycle.LifecycleController` admin
    surface the gateway expects: per-vehicle actions route to the
    owning shard; ``status``/``run_once``/``counters`` fan out to every
    shard and merge.
    """

    def __init__(self, pool: ShardedFleetEngine):
        self.pool = pool

    def _route(self, vehicle_id: str, action: str, *args, **kwargs):
        shard = self.pool.shard_for(vehicle_id)
        return self.pool.call_shard(
            shard, "lifecycle", action, vehicle_id, *args, **kwargs
        )

    def evaluate_vehicle(self, vehicle_id: str, reason: str = "manual"):
        return self._route(vehicle_id, "evaluate_vehicle", reason)

    def rollback(self, vehicle_id: str, version=None, **kwargs):
        return self._route(vehicle_id, "rollback", version, **kwargs)

    def pin(self, vehicle_id: str, version: int, **kwargs):
        return self._route(vehicle_id, "pin", version, **kwargs)

    def unpin(self, vehicle_id: str, **kwargs):
        return self._route(vehicle_id, "unpin", **kwargs)

    def run_once(self) -> list[dict]:
        entries = [
            entry
            for shard_entries in self.pool.scatter("lifecycle", "run_once")
            for entry in shard_entries
        ]
        entries.sort(key=lambda entry: entry.get("vehicle_id", ""))
        return entries

    def counters(self) -> dict:
        merged = ShardedFleetEngine._merge_counter_dicts(
            self.pool.scatter("lifecycle", "counters")
        )
        return merged or {}

    def status(self) -> dict:
        per_shard = self.pool.scatter("lifecycle", "status")
        vehicles: dict = {}
        history: list = []
        log: list = []
        for report in per_shard:
            vehicles.update(report.get("vehicles", {}))
            history.extend(report.get("history", []))
            log.extend(report.get("log", []))
        return {
            "policy": per_shard[0].get("policy", {}),
            "counters": self.counters(),
            "vehicles": vehicles,
            "history": history[-32:],
            "log": log[-32:],
            "shards": {
                str(index): {
                    "vehicles": len(report.get("vehicles", {})),
                    "counters": report.get("counters", {}),
                }
                for index, report in enumerate(per_shard)
            },
        }


class ShardedDurability:
    """Aggregate durability view over the shard partitions.

    Workers finish journal replay before their ready handshake, so a
    constructed pool is always ``ready`` — the flag exists because the
    gateway gates requests on ``engine.durability.ready``.
    """

    ready = True

    def __init__(self, pool: ShardedFleetEngine):
        self.pool = pool

    def status(self) -> dict:
        per_shard = self.pool.scatter("durability_status")
        return {
            "ready": True,
            "shards": {
                str(index): status
                for index, status in enumerate(per_shard)
            },
        }

    def checkpoint(self) -> list:
        return self.pool.scatter("checkpoint")
