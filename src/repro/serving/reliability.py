"""Resilience layer for the deployed prediction service.

Real CAN-bus telematics are dirty — dropped days, duplicated uploads,
out-of-range counters, flaky storage (the Scania heavy-truck study in
PAPERS.md makes exactly this point).  This module provides the building
blocks that keep the serving layer up under that reality:

* :class:`IngestionGuard` — classifies each incoming reading into one of
  five anomaly classes (non-finite, negative, over the 86 400 s/day
  ceiling, duplicate-day re-upload, stale/out-of-order report) and
  applies a configurable policy per class: reject (drop + count), clamp
  into the physical range, impute from the recent average, or quarantine
  to an inspectable dead-letter record.  Per-vehicle counters make every
  decision auditable.
* :class:`CircuitBreaker` — deterministic, count-based breaker around
  each (vehicle, strategy) training path so repeated failures step the
  service down the Section-4 ladder instead of hammering a broken rung.
* :class:`RetryPolicy` — bounded retry with seeded, jittered backoff for
  transient persistence I/O errors.
* :class:`FleetHealth` / :class:`VehicleHealth` — the aggregated
  quarantine / fallback / breaker report surfaced by the engine and CLI.

Everything here is deterministic given its seed: no wall-clock state,
so chaos runs replay exactly (see :mod:`repro.serving.faults`).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from enum import Enum

import numpy as np

__all__ = [
    "AnomalyKind",
    "AnomalyPolicy",
    "GuardPolicies",
    "ReadingDecision",
    "DeadLetterRecord",
    "IngestionGuard",
    "BreakerOpenError",
    "CircuitBreaker",
    "RetryPolicy",
    "VehicleHealth",
    "FleetHealth",
]

DAY_SECONDS = 86_400.0


class AnomalyKind(str, Enum):
    """The anomaly classes the ingestion guard recognizes."""

    NON_FINITE = "non-finite"
    NEGATIVE = "negative"
    TOO_LARGE = "too-large"
    DUPLICATE_DAY = "duplicate-day"
    OUT_OF_ORDER = "out-of-order"

    def __str__(self) -> str:  # counters render as plain labels
        return self.value


class AnomalyPolicy(str, Enum):
    """What to do with a reading flagged by the guard.

    * ``REJECT`` — drop the reading, count it, keep no payload;
    * ``CLAMP`` — clip into ``[0, 86 400]`` and accept (range anomalies
      only);
    * ``IMPUTE`` — replace with the mean of the most recent accepted
      readings and accept (value anomalies only);
    * ``QUARANTINE`` — drop the reading but keep a full
      :class:`DeadLetterRecord` for inspection.
    """

    REJECT = "reject"
    CLAMP = "clamp"
    IMPUTE = "impute"
    QUARANTINE = "quarantine"

    def __str__(self) -> str:
        return self.value


#: Policies that drop the reading instead of transforming it.
_DROP_POLICIES = (AnomalyPolicy.REJECT, AnomalyPolicy.QUARANTINE)
#: Ordering anomalies describe the *report*, not the value — the only
#: sane handling is to drop (reject or quarantine) the report.
_ORDERING_KINDS = (AnomalyKind.DUPLICATE_DAY, AnomalyKind.OUT_OF_ORDER)


@dataclass(frozen=True)
class GuardPolicies:
    """Per-anomaly-class policy table for :class:`IngestionGuard`."""

    non_finite: AnomalyPolicy = AnomalyPolicy.QUARANTINE
    negative: AnomalyPolicy = AnomalyPolicy.CLAMP
    too_large: AnomalyPolicy = AnomalyPolicy.CLAMP
    duplicate_day: AnomalyPolicy = AnomalyPolicy.REJECT
    out_of_order: AnomalyPolicy = AnomalyPolicy.QUARANTINE

    def __post_init__(self) -> None:
        if self.non_finite is AnomalyPolicy.CLAMP:
            raise ValueError("A non-finite reading has no value to clamp.")
        for name in ("duplicate_day", "out_of_order"):
            if getattr(self, name) not in _DROP_POLICIES:
                raise ValueError(
                    f"{name} readings describe the report, not the value; "
                    "policy must be 'reject' or 'quarantine'."
                )

    def for_kind(self, kind: AnomalyKind) -> AnomalyPolicy:
        return {
            AnomalyKind.NON_FINITE: self.non_finite,
            AnomalyKind.NEGATIVE: self.negative,
            AnomalyKind.TOO_LARGE: self.too_large,
            AnomalyKind.DUPLICATE_DAY: self.duplicate_day,
            AnomalyKind.OUT_OF_ORDER: self.out_of_order,
        }[kind]


@dataclass(frozen=True)
class ReadingDecision:
    """Outcome of screening one reading.

    ``value`` is the (possibly transformed) value to append, or ``None``
    when the reading was dropped.  ``anomaly``/``policy`` are ``None``
    for clean readings.
    """

    value: float | None
    anomaly: AnomalyKind | None = None
    policy: AnomalyPolicy | None = None

    @property
    def accepted(self) -> bool:
        return self.value is not None


@dataclass(frozen=True)
class DeadLetterRecord:
    """A quarantined reading, kept for inspection."""

    vehicle_id: str
    day: int | None
    value: float
    anomaly: AnomalyKind

    def __str__(self) -> str:
        day = "?" if self.day is None else self.day
        return (
            f"[dead-letter] {self.vehicle_id} day {day}: "
            f"{self.value!r} ({self.anomaly})"
        )


class IngestionGuard:
    """Screens incoming readings against the anomaly policy table.

    Parameters
    ----------
    policies:
        Per-anomaly-class policy table (:class:`GuardPolicies`).
    impute_window:
        How many of the most recent accepted readings the ``IMPUTE``
        policy averages over (0 usage history imputes 0.0).
    max_dead_letters:
        Cap on retained :class:`DeadLetterRecord` payloads.  Past the
        cap new quarantined readings drop their payload (the anomaly
        counters keep counting) and :meth:`overflow_count` tallies how
        many — an unbounded buffer on a quarantine-happy feed would
        otherwise eat the process.
    """

    def __init__(
        self,
        policies: GuardPolicies | None = None,
        *,
        impute_window: int = 7,
        max_dead_letters: int = 10_000,
    ):
        if impute_window < 1:
            raise ValueError(f"impute_window must be >= 1, got {impute_window}.")
        if max_dead_letters < 0:
            raise ValueError(
                f"max_dead_letters must be >= 0, got {max_dead_letters}."
            )
        self.policies = policies or GuardPolicies()
        self.impute_window = impute_window
        self.max_dead_letters = max_dead_letters
        self._anomalies: dict[str, Counter] = {}
        self._applied: dict[str, Counter] = {}
        self._accepted: Counter = Counter()
        self._last_day: dict[str, int] = {}
        self._dead_letters: list[DeadLetterRecord] = []
        self._overflow = 0  # quarantined payloads dropped at the cap

    # -- classification ----------------------------------------------------

    def classify(
        self, vehicle_id: str, value: float, day: int | None
    ) -> AnomalyKind | None:
        """Anomaly class of one reading, or ``None`` when clean.

        ``day`` is the report's day index; ordering anomalies can only
        be detected when the feed provides it.
        """
        if not math.isfinite(value):
            return AnomalyKind.NON_FINITE
        if day is not None:
            last = self._last_day.get(vehicle_id)
            if last is not None:
                if day == last:
                    return AnomalyKind.DUPLICATE_DAY
                if day < last:
                    return AnomalyKind.OUT_OF_ORDER
        if value < 0:
            return AnomalyKind.NEGATIVE
        if value > DAY_SECONDS:
            return AnomalyKind.TOO_LARGE
        return None

    # -- screening ---------------------------------------------------------

    def _admit_clean(
        self, vehicle_id: str, value: float, day: int | None
    ) -> bool:
        """Accept-and-count a clean reading; ``False`` means anomalous
        (caller must run the full policy path).  Allocation-free so the
        guard's clean path costs no more than the raw range check it
        replaces."""
        if not 0.0 <= value <= DAY_SECONDS:
            return False
        if day is None:
            self._accepted[vehicle_id] += 1
            return True
        last = self._last_day.get(vehicle_id)
        if last is None or day > last:
            self._last_day[vehicle_id] = day
            self._accepted[vehicle_id] += 1
            return True
        return False

    def admit(
        self,
        vehicle_id: str,
        value: float,
        *,
        day: int | None = None,
        recent=(),
    ) -> float | None:
        """Hot-path :meth:`screen`: the value to append, or ``None``.

        Identical accounting to :meth:`screen`, but clean readings skip
        the :class:`ReadingDecision` allocation (the serving loop calls
        this once per reading per vehicle).
        """
        value = float(value)
        if self._admit_clean(vehicle_id, value, day):
            return value
        return self.screen(vehicle_id, value, day=day, recent=recent).value

    def screen(
        self,
        vehicle_id: str,
        value: float,
        *,
        day: int | None = None,
        recent=(),
    ) -> ReadingDecision:
        """Screen (and account for) one reading.

        ``recent`` is the vehicle's accepted usage history, used by the
        ``IMPUTE`` policy.  Updates per-vehicle counters and the
        dead-letter list; returns the :class:`ReadingDecision`.
        """
        value = float(value)
        # Fast path: in-range (hence finite) value with a monotone day
        # index — the overwhelmingly common case.  NaN fails the range
        # test and falls through to classification.
        if self._admit_clean(vehicle_id, value, day):
            return ReadingDecision(value=value)
        kind = self.classify(vehicle_id, value, day)
        if day is not None and kind not in _ORDERING_KINDS:
            # Ordering anomalies leave the high-water mark untouched.
            last = self._last_day.get(vehicle_id)
            self._last_day[vehicle_id] = day if last is None else max(last, day)
        if kind is None:
            self._accepted[vehicle_id] += 1
            return ReadingDecision(value=value)

        policy = self.policies.for_kind(kind)
        self._anomalies.setdefault(vehicle_id, Counter())[kind.value] += 1
        self._applied.setdefault(vehicle_id, Counter())[policy.value] += 1
        if policy is AnomalyPolicy.CLAMP:
            return ReadingDecision(
                value=min(max(value, 0.0), DAY_SECONDS),
                anomaly=kind,
                policy=policy,
            )
        if policy is AnomalyPolicy.IMPUTE:
            recent = np.asarray(recent, dtype=np.float64)
            tail = recent[-self.impute_window:]
            imputed = float(tail.mean()) if tail.size else 0.0
            return ReadingDecision(value=imputed, anomaly=kind, policy=policy)
        if policy is AnomalyPolicy.QUARANTINE:
            if len(self._dead_letters) < self.max_dead_letters:
                self._dead_letters.append(
                    DeadLetterRecord(
                        vehicle_id=vehicle_id, day=day, value=value, anomaly=kind
                    )
                )
            else:
                self._overflow += 1
        return ReadingDecision(value=None, anomaly=kind, policy=policy)

    # -- inspection --------------------------------------------------------

    def anomaly_counts(self, vehicle_id: str | None = None) -> dict[str, int]:
        """Counts per anomaly class, for one vehicle or fleet-wide."""
        if vehicle_id is not None:
            return dict(self._anomalies.get(vehicle_id, Counter()))
        total: Counter = Counter()
        for counts in self._anomalies.values():
            total.update(counts)
        return dict(total)

    def policy_counts(self, vehicle_id: str | None = None) -> dict[str, int]:
        """Counts per applied policy, for one vehicle or fleet-wide."""
        if vehicle_id is not None:
            return dict(self._applied.get(vehicle_id, Counter()))
        total: Counter = Counter()
        for counts in self._applied.values():
            total.update(counts)
        return dict(total)

    def accepted_count(self, vehicle_id: str) -> int:
        return self._accepted[vehicle_id]

    def dead_letters(
        self, vehicle_id: str | None = None
    ) -> list[DeadLetterRecord]:
        if vehicle_id is None:
            return list(self._dead_letters)
        return [r for r in self._dead_letters if r.vehicle_id == vehicle_id]

    def overflow_count(self) -> int:
        """Quarantined payloads dropped because the buffer was full."""
        return self._overflow

    @property
    def vehicle_ids(self) -> list[str]:
        return sorted(set(self._anomalies) | set(self._accepted))

    # -- checkpoint state --------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-ready snapshot (config + every counter + dead letters)."""
        return {
            "config": {
                "policies": {
                    "non_finite": self.policies.non_finite.value,
                    "negative": self.policies.negative.value,
                    "too_large": self.policies.too_large.value,
                    "duplicate_day": self.policies.duplicate_day.value,
                    "out_of_order": self.policies.out_of_order.value,
                },
                "impute_window": self.impute_window,
                "max_dead_letters": self.max_dead_letters,
            },
            "anomalies": {
                vid: dict(counts)
                for vid, counts in sorted(self._anomalies.items())
            },
            "applied": {
                vid: dict(counts)
                for vid, counts in sorted(self._applied.items())
            },
            "accepted": dict(sorted(self._accepted.items())),
            "last_day": dict(sorted(self._last_day.items())),
            "dead_letters": [
                {
                    "v": record.vehicle_id,
                    "d": record.day,
                    "x": record.value,
                    "a": record.anomaly.value,
                }
                for record in self._dead_letters
            ],
            "overflow": self._overflow,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (counters only — the
        config stays whatever this instance was built with)."""
        self._anomalies = {
            vid: Counter({k: int(n) for k, n in counts.items()})
            for vid, counts in state.get("anomalies", {}).items()
        }
        self._applied = {
            vid: Counter({k: int(n) for k, n in counts.items()})
            for vid, counts in state.get("applied", {}).items()
        }
        self._accepted = Counter(
            {vid: int(n) for vid, n in state.get("accepted", {}).items()}
        )
        self._last_day = {
            vid: int(day) for vid, day in state.get("last_day", {}).items()
        }
        self._dead_letters = [
            DeadLetterRecord(
                vehicle_id=record["v"],
                day=record["d"],
                value=float(record["x"]),
                anomaly=AnomalyKind(record["a"]),
            )
            for record in state.get("dead_letters", [])
        ]
        self._overflow = int(state.get("overflow", 0))

    @classmethod
    def from_state(cls, state: dict) -> "IngestionGuard":
        """Build a guard matching a snapshot's config, then restore it."""
        config = state.get("config", {})
        table = config.get("policies")
        policies = (
            GuardPolicies(
                **{name: AnomalyPolicy(value) for name, value in table.items()}
            )
            if table
            else None
        )
        guard = cls(
            policies,
            impute_window=int(config.get("impute_window", 7)),
            max_dead_letters=int(config.get("max_dead_letters", 10_000)),
        )
        guard.load_state_dict(state)
        return guard


class BreakerOpenError(RuntimeError):
    """Raised by :meth:`CircuitBreaker.call` when the circuit is open."""


@dataclass
class _BreakerState:
    consecutive_failures: int = 0
    skips_remaining: int = 0
    failures: int = 0
    skips: int = 0

    @property
    def open(self) -> bool:
        return self.skips_remaining > 0


class CircuitBreaker:
    """Deterministic count-based circuit breaker.

    After ``failure_threshold`` *consecutive* failures a key opens: the
    next ``cooldown`` calls are skipped without attempting, then one
    half-open trial is allowed.  Success closes the circuit.  Counting
    calls instead of wall-clock time keeps chaos runs reproducible.
    """

    def __init__(self, failure_threshold: int = 3, cooldown: int = 5):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}."
            )
        if cooldown < 1:
            raise ValueError(f"cooldown must be >= 1, got {cooldown}.")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._states: dict[str, _BreakerState] = {}

    def _state(self, key: str) -> _BreakerState:
        return self._states.setdefault(key, _BreakerState())

    def allow(self, key: str) -> bool:
        """Whether an attempt may proceed; consumes one skip when open."""
        state = self._state(key)
        if state.skips_remaining > 0:
            state.skips_remaining -= 1
            state.skips += 1
            return False
        return True

    def record_success(self, key: str) -> None:
        state = self._state(key)
        state.consecutive_failures = 0
        state.skips_remaining = 0

    def record_failure(self, key: str) -> None:
        state = self._state(key)
        state.failures += 1
        state.consecutive_failures += 1
        if state.consecutive_failures >= self.failure_threshold:
            state.skips_remaining = self.cooldown
            state.consecutive_failures = 0

    def is_open(self, key: str) -> bool:
        return self._state(key).open

    def failure_count(self, key: str | None = None) -> int:
        if key is not None:
            return self._state(key).failures
        return sum(s.failures for s in self._states.values())

    def skip_count(self, key: str | None = None) -> int:
        if key is not None:
            return self._state(key).skips
        return sum(s.skips for s in self._states.values())

    def snapshot(self) -> dict[str, dict[str, int | bool]]:
        """Per-key ``{failures, skips, open}`` view (sorted keys)."""
        return {
            key: {
                "failures": state.failures,
                "skips": state.skips,
                "open": state.open,
            }
            for key, state in sorted(self._states.items())
        }

    # -- checkpoint state --------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-ready snapshot of the config and every key's counters."""
        return {
            "config": {
                "failure_threshold": self.failure_threshold,
                "cooldown": self.cooldown,
            },
            "states": {
                key: {
                    "consecutive_failures": state.consecutive_failures,
                    "skips_remaining": state.skips_remaining,
                    "failures": state.failures,
                    "skips": state.skips,
                }
                for key, state in sorted(self._states.items())
            },
        }

    def load_state_dict(self, state: dict) -> None:
        self._states = {
            key: _BreakerState(
                consecutive_failures=int(fields["consecutive_failures"]),
                skips_remaining=int(fields["skips_remaining"]),
                failures=int(fields["failures"]),
                skips=int(fields["skips"]),
            )
            for key, fields in state.get("states", {}).items()
        }

    @classmethod
    def from_state(cls, state: dict) -> "CircuitBreaker":
        config = state.get("config", {})
        breaker = cls(
            failure_threshold=int(config.get("failure_threshold", 3)),
            cooldown=int(config.get("cooldown", 5)),
        )
        breaker.load_state_dict(state)
        return breaker


class RetryPolicy:
    """Bounded retry with seeded jittered exponential backoff.

    Parameters
    ----------
    attempts:
        Total attempts (1 = no retry).
    base_delay / max_delay:
        Backoff bounds in seconds; attempt ``k`` sleeps
        ``min(base_delay * 2**k, max_delay)`` scaled by a jitter factor
        drawn uniformly from ``[0.5, 1.0)``.
    seed:
        Seeds the jitter stream (deterministic schedules for tests).
    sleep:
        Injectable sleep function (tests pass a no-op).
    """

    def __init__(
        self,
        attempts: int = 3,
        *,
        base_delay: float = 0.05,
        max_delay: float = 1.0,
        seed: int = 0,
        sleep=None,
    ):
        if attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {attempts}.")
        if base_delay < 0 or max_delay < 0:
            raise ValueError("Delays must be non-negative.")
        self.attempts = attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self._rng = np.random.default_rng(seed)
        if sleep is None:
            import time

            sleep = time.sleep
        self._sleep = sleep
        self.calls = 0
        self.retries = 0
        self.slept: list[float] = []

    def call(self, fn, *, retry_on: tuple = (OSError,)):
        """Run ``fn`` with retries on ``retry_on``; re-raise when exhausted."""
        self.calls += 1
        for attempt in range(self.attempts):
            try:
                return fn()
            except retry_on:
                if attempt == self.attempts - 1:
                    raise
                self.retries += 1
                delay = min(self.base_delay * 2**attempt, self.max_delay)
                delay *= 0.5 + 0.5 * float(self._rng.random())
                self.slept.append(delay)
                self._sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover


# -- health reporting ------------------------------------------------------


@dataclass(frozen=True)
class VehicleHealth:
    """Resilience counters for one vehicle."""

    vehicle_id: str
    accepted: int = 0
    anomalies: dict = field(default_factory=dict)  # anomaly class -> count
    policies: dict = field(default_factory=dict)  # applied policy -> count
    quarantined: int = 0  # dead-letter records held
    fallbacks: dict = field(default_factory=dict)  # served strategy -> count
    breaker: dict = field(default_factory=dict)  # strategy -> state dict

    @property
    def dropped(self) -> int:
        return self.policies.get("reject", 0) + self.policies.get(
            "quarantine", 0
        )

    @property
    def degraded_serves(self) -> int:
        return sum(self.fallbacks.values())

    def as_dict(self) -> dict:
        """JSON-ready view of the per-vehicle counters."""
        return {
            "vehicle_id": self.vehicle_id,
            "accepted": self.accepted,
            "anomalies": dict(self.anomalies),
            "policies": dict(self.policies),
            "quarantined": self.quarantined,
            "fallbacks": dict(self.fallbacks),
            "breaker": {k: dict(v) for k, v in self.breaker.items()},
        }


@dataclass(frozen=True)
class FleetHealth:
    """Aggregated resilience report for the whole fleet.

    ``gateway`` carries the HTTP gateway's own counters (request /
    error counts, queue and batch statistics) when the report is
    served through :class:`~repro.serving.gateway.FleetGateway`;
    it stays ``None`` for in-process engines.
    """

    vehicles: dict  # vehicle_id -> VehicleHealth
    persist_failures: int = 0
    dead_letter_overflow: int = 0  # quarantine payloads dropped at the cap
    gateway: dict | None = None

    def total_anomalies(self) -> dict[str, int]:
        total: Counter = Counter()
        for health in self.vehicles.values():
            total.update(health.anomalies)
        return dict(total)

    def total_fallbacks(self) -> int:
        return sum(h.degraded_serves for h in self.vehicles.values())

    def total_quarantined(self) -> int:
        return sum(h.quarantined for h in self.vehicles.values())

    def breaker_failures(self) -> int:
        return sum(
            state["failures"]
            for health in self.vehicles.values()
            for state in health.breaker.values()
        )

    def summary_counters(self) -> dict:
        """Compact counter view — the ``fleet`` section of the
        consolidated :class:`~repro.obs.MetricsRegistry` snapshot."""
        anomalies = self.total_anomalies()
        return {
            "vehicles": len(self.vehicles),
            "anomalies": dict(sorted(anomalies.items())),
            "anomalies_total": sum(anomalies.values()),
            "quarantined": self.total_quarantined(),
            "dead_letter_overflow": self.dead_letter_overflow,
            "degraded_serves": self.total_fallbacks(),
            "breaker_failures": self.breaker_failures(),
            "persist_failures": self.persist_failures,
        }

    def as_dict(self) -> dict:
        """JSON-ready view of the whole report (gateway included)."""
        return {
            "vehicles": {
                vid: health.as_dict()
                for vid, health in sorted(self.vehicles.items())
            },
            "persist_failures": self.persist_failures,
            "dead_letter_overflow": self.dead_letter_overflow,
            "gateway": self.gateway,
        }

    def render(self) -> str:
        """Human-readable fleet health table."""
        lines = ["Fleet health", ""]
        anomalies = self.total_anomalies()
        lines.append(
            f"readings flagged : {sum(anomalies.values())} "
            f"({', '.join(f'{k}={v}' for k, v in sorted(anomalies.items())) or 'none'})"
        )
        lines.append(f"quarantined      : {self.total_quarantined()}")
        lines.append(f"degraded serves  : {self.total_fallbacks()}")
        lines.append(f"breaker failures : {self.breaker_failures()}")
        lines.append(f"persist failures : {self.persist_failures}")
        if self.gateway is not None:
            requests = self.gateway.get("requests", {})
            errors = self.gateway.get("errors", {})
            lines.append(
                f"gateway requests : {sum(requests.values())} "
                f"({sum(errors.values())} errored, "
                f"queue high-water {self.gateway.get('queue_high_water', 0)})"
            )
        flagged = [
            h
            for h in self.vehicles.values()
            if h.anomalies
            or h.fallbacks
            or any(
                s.get("failures") or s.get("open")
                for s in h.breaker.values()
            )
        ]
        if flagged:
            lines.append("")
            lines.append("per-vehicle:")
            for health in sorted(flagged, key=lambda h: h.vehicle_id):
                parts = []
                if health.anomalies:
                    parts.append(
                        "anomalies "
                        + ",".join(
                            f"{k}={v}"
                            for k, v in sorted(health.anomalies.items())
                        )
                    )
                if health.fallbacks:
                    parts.append(
                        "fallbacks "
                        + ",".join(
                            f"{k}={v}"
                            for k, v in sorted(health.fallbacks.items())
                        )
                    )
                open_keys = [
                    strategy
                    for strategy, state in sorted(health.breaker.items())
                    if state.get("open")
                ]
                if open_keys:
                    parts.append("breaker-open " + ",".join(open_keys))
                lines.append(f"  {health.vehicle_id}: {'; '.join(parts)}")
        return "\n".join(lines)
