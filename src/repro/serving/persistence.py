"""Model persistence: versioned artifacts on disk.

The deployed system retrains per-vehicle models as data accrues; this
module stores fitted predictors as versioned artifacts (pickle payload +
JSON metadata sidecar) so a prediction service can be restarted without
retraining, and so every forecast is attributable to a model version.
"""

from __future__ import annotations

import datetime as dt
import json
import pickle
import re
from dataclasses import dataclass
from pathlib import Path

__all__ = ["ModelArtifact", "ModelStore"]

_SCHEMA_VERSION = 1
_KEY_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")


@dataclass(frozen=True)
class ModelArtifact:
    """A loaded model plus its stored metadata."""

    key: str
    version: int
    predictor: object
    metadata: dict

    @property
    def algorithm(self) -> str | None:
        return self.metadata.get("algorithm")


class ModelStore:
    """Directory-backed, versioned model registry.

    Layout: ``<root>/<key>/v0001.pkl`` + ``v0001.json``.  Versions are
    monotonically increasing; :meth:`save` always writes a new version
    (models are immutable once written).

    Parameters
    ----------
    root:
        Storage directory (created on first save).
    """

    def __init__(self, root):
        self.root = Path(root)

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _check_key(key: str) -> str:
        if not _KEY_RE.match(key):
            raise ValueError(
                f"Invalid model key {key!r}: use letters, digits, '_', "
                "'-', '.' and start alphanumerically."
            )
        return key

    def _key_dir(self, key: str) -> Path:
        return self.root / self._check_key(key)

    def _version_paths(self, key: str, version: int) -> tuple[Path, Path]:
        stem = self._key_dir(key) / f"v{version:04d}"
        return stem.with_suffix(".pkl"), stem.with_suffix(".json")

    # -- public API -----------------------------------------------------------

    def versions(self, key: str) -> list[int]:
        """Stored version numbers for a key, ascending."""
        directory = self._key_dir(key)
        if not directory.is_dir():
            return []
        found = []
        for path in directory.glob("v*.pkl"):
            try:
                found.append(int(path.stem[1:]))
            except ValueError:
                continue
        return sorted(found)

    def keys(self) -> list[str]:
        if not self.root.is_dir():
            return []
        return sorted(
            p.name for p in self.root.iterdir() if p.is_dir()
        )

    def save(self, key: str, predictor, metadata: dict | None = None) -> int:
        """Persist a fitted predictor under ``key``; returns the version."""
        existing = self.versions(key)
        version = (existing[-1] + 1) if existing else 1
        pkl_path, json_path = self._version_paths(key, version)
        pkl_path.parent.mkdir(parents=True, exist_ok=True)

        record = {
            "schema_version": _SCHEMA_VERSION,
            "key": key,
            "version": version,
            "created_at": dt.datetime.now(dt.timezone.utc).isoformat(),
            "predictor_type": type(predictor).__name__,
        }
        record.update(metadata or {})

        with pkl_path.open("wb") as handle:
            pickle.dump(predictor, handle)
        with json_path.open("w") as handle:
            json.dump(record, handle, indent=2)
        return version

    def load(self, key: str, version: int | None = None) -> ModelArtifact:
        """Load a stored model; latest version by default."""
        available = self.versions(key)
        if not available:
            raise KeyError(f"No stored models under key {key!r}.")
        if version is None:
            version = available[-1]
        if version not in available:
            raise KeyError(
                f"Version {version} of {key!r} not found; have {available}."
            )
        pkl_path, json_path = self._version_paths(key, version)
        with json_path.open() as handle:
            metadata = json.load(handle)
        if metadata.get("schema_version") != _SCHEMA_VERSION:
            raise ValueError(
                f"Artifact {key!r} v{version} has schema "
                f"{metadata.get('schema_version')}; expected {_SCHEMA_VERSION}."
            )
        with pkl_path.open("rb") as handle:
            predictor = pickle.load(handle)
        return ModelArtifact(
            key=key, version=version, predictor=predictor, metadata=metadata
        )

    def delete(self, key: str, version: int) -> None:
        """Remove one stored version (both payload and sidecar)."""
        pkl_path, json_path = self._version_paths(key, version)
        if not pkl_path.exists():
            raise KeyError(f"{key!r} v{version} does not exist.")
        pkl_path.unlink()
        json_path.unlink(missing_ok=True)
