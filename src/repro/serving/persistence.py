"""Model persistence: versioned artifacts on disk.

The deployed system retrains per-vehicle models as data accrues; this
module stores fitted predictors as versioned artifacts (pickle payload +
JSON metadata sidecar) so a prediction service can be restarted without
retraining, and so every forecast is attributable to a model version.

Hardening (flaky storage is a fact of fleet deployments):

* payloads are written atomically (temp file + rename) and carry a
  SHA-256 checksum in the metadata sidecar, verified on load;
* a truncated/corrupt pickle, malformed metadata JSON or checksum
  mismatch raises the typed :exc:`ArtifactCorruptError` instead of a
  raw ``UnpicklingError``/``JSONDecodeError``;
* loading the latest version falls back to the newest *readable* one,
  moving corrupt artifacts into a ``quarantine/`` subdirectory for
  inspection;
* an optional :class:`~repro.serving.reliability.RetryPolicy` retries
  transient I/O errors with jittered backoff.
"""

from __future__ import annotations

import datetime as dt
import hashlib
import json
import os
import pickle
import re
from collections.abc import Iterable
from dataclasses import dataclass
from pathlib import Path

from ..obs import tracing

__all__ = [
    "ArtifactCorruptError",
    "ModelArtifact",
    "ModelStore",
    "atomic_write_bytes",
]


def atomic_write_bytes(path, data: bytes, *, fsync: bool = True) -> None:
    """Write ``data`` to ``path`` atomically (temp file + rename).

    A crash mid-write never leaves a truncated file at ``path`` — the
    temp file lives in the same directory so the rename cannot cross
    filesystems.  With ``fsync`` (the default) the payload is flushed
    to stable storage before the rename and the directory entry is
    fsynced after it, the posture checkpoint files need; the model
    store passes ``fsync=False`` to keep its historical
    atomic-but-buffered behaviour.
    """
    path = Path(path)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(data)
        if fsync:
            fh.flush()
            os.fsync(fh.fileno())
    os.replace(tmp, path)
    if fsync:
        fd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

_SCHEMA_VERSION = 1
_KEY_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")
_QUARANTINE_DIR = "quarantine"


class ArtifactCorruptError(ValueError):
    """A stored model artifact could not be read back.

    Raised for truncated/corrupt pickle payloads, malformed metadata
    JSON, missing sidecars and checksum mismatches.
    """

    def __init__(self, key: str, version: int | None, reason: str):
        self.key = key
        self.version = version
        self.reason = reason
        where = key if version is None else f"{key} v{version}"
        super().__init__(f"Corrupt artifact {where}: {reason}")


@dataclass(frozen=True)
class ModelArtifact:
    """A loaded model plus its stored metadata."""

    key: str
    version: int
    predictor: object
    metadata: dict

    @property
    def algorithm(self) -> str | None:
        return self.metadata.get("algorithm")


class ModelStore:
    """Directory-backed, versioned model registry.

    Layout: ``<root>/<key>/v0001.pkl`` + ``v0001.json``.  Versions are
    monotonically increasing; :meth:`save` always writes a new version
    (models are immutable once written).

    Parameters
    ----------
    root:
        Storage directory (created on first save).
    retry:
        Optional :class:`~repro.serving.reliability.RetryPolicy`;
        transient ``OSError`` during save/load I/O is retried with
        jittered backoff.
    """

    def __init__(self, root, retry=None):
        self.root = Path(root)
        self.retry = retry

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _check_key(key: str) -> str:
        if not _KEY_RE.match(key):
            raise ValueError(
                f"Invalid model key {key!r}: use letters, digits, '_', "
                "'-', '.' and start alphanumerically."
            )
        return key

    def _key_dir(self, key: str) -> Path:
        return self.root / self._check_key(key)

    def _version_paths(self, key: str, version: int) -> tuple[Path, Path]:
        stem = self._key_dir(key) / f"v{version:04d}"
        return stem.with_suffix(".pkl"), stem.with_suffix(".json")

    def _io(self, fn):
        """Run one I/O operation through the retry policy, if any."""
        if self.retry is None:
            return fn()
        return self.retry.call(fn)

    # -- public API -----------------------------------------------------------

    def versions(self, key: str) -> list[int]:
        """Stored version numbers for a key, ascending."""
        directory = self._key_dir(key)
        if not directory.is_dir():
            return []
        found = []
        for path in directory.glob("v*.pkl"):
            try:
                found.append(int(path.stem[1:]))
            except ValueError:
                continue
        return sorted(found)

    def keys(self) -> list[str]:
        if not self.root.is_dir():
            return []
        return sorted(
            p.name for p in self.root.iterdir() if p.is_dir()
        )

    def latest_version(self, key: str) -> int | None:
        """Newest stored version number for a key, ``None`` when empty."""
        versions = self.versions(key)
        return versions[-1] if versions else None

    def save(self, key: str, predictor, metadata: dict | None = None) -> int:
        """Persist a fitted predictor under ``key``; returns the version.

        The payload is written to a temp file and renamed into place so
        a crash mid-write never leaves a truncated ``.pkl`` behind, and
        its SHA-256 goes into the metadata sidecar for load-time
        verification.
        """
        existing = self.versions(key)
        version = (existing[-1] + 1) if existing else 1
        pkl_path, json_path = self._version_paths(key, version)

        payload = pickle.dumps(predictor)
        record = {
            "schema_version": _SCHEMA_VERSION,
            "key": key,
            "version": version,
            "created_at": dt.datetime.now(dt.timezone.utc).isoformat(),
            "predictor_type": type(predictor).__name__,
            "sha256": hashlib.sha256(payload).hexdigest(),
        }
        record.update(metadata or {})

        def _write() -> None:
            pkl_path.parent.mkdir(parents=True, exist_ok=True)
            for path, data in (
                (pkl_path, payload),
                (json_path, json.dumps(record, indent=2).encode()),
            ):
                atomic_write_bytes(path, data, fsync=False)

        with tracing.span(
            "store.save", key=key, version=version, bytes=len(payload)
        ):
            self._io(_write)
        return version

    def _load_version(self, key: str, version: int) -> ModelArtifact:
        """Load one version, mapping every corruption mode to the typed
        :exc:`ArtifactCorruptError`."""
        pkl_path, json_path = self._version_paths(key, version)

        def _read() -> tuple[bytes, bytes]:
            return pkl_path.read_bytes(), json_path.read_bytes()

        try:
            with tracing.span("store.read", key=key, version=version):
                payload, sidecar = self._io(_read)
        except FileNotFoundError as exc:
            raise ArtifactCorruptError(
                key, version, f"missing file: {exc.filename}"
            ) from exc
        try:
            metadata = json.loads(sidecar)
        except json.JSONDecodeError as exc:
            raise ArtifactCorruptError(
                key, version, f"malformed metadata JSON ({exc})"
            ) from exc
        if not isinstance(metadata, dict):
            raise ArtifactCorruptError(
                key, version, "metadata JSON is not an object"
            )
        if metadata.get("schema_version") != _SCHEMA_VERSION:
            raise ArtifactCorruptError(
                key,
                version,
                f"schema {metadata.get('schema_version')!r}; "
                f"expected {_SCHEMA_VERSION}",
            )
        expected = metadata.get("sha256")
        if expected is not None:
            digest = hashlib.sha256(payload).hexdigest()
            if digest != expected:
                raise ArtifactCorruptError(
                    key,
                    version,
                    f"checksum mismatch (stored {expected[:12]}…, "
                    f"payload {digest[:12]}…)",
                )
        try:
            predictor = pickle.loads(payload)
        except Exception as exc:  # UnpicklingError, EOFError, Attribute...
            raise ArtifactCorruptError(
                key, version, f"unreadable pickle ({type(exc).__name__}: {exc})"
            ) from exc
        return ModelArtifact(
            key=key, version=version, predictor=predictor, metadata=metadata
        )

    def _quarantine(self, key: str, version: int) -> None:
        """Move a corrupt version's files into ``<key>/quarantine/``."""
        directory = self._key_dir(key) / _QUARANTINE_DIR
        directory.mkdir(parents=True, exist_ok=True)
        for path in self._version_paths(key, version):
            if path.exists():
                os.replace(path, directory / path.name)

    def quarantined(self, key: str) -> list[int]:
        """Version numbers previously quarantined for a key, ascending."""
        directory = self._key_dir(key) / _QUARANTINE_DIR
        if not directory.is_dir():
            return []
        found = []
        for path in directory.glob("v*.pkl"):
            try:
                found.append(int(path.stem[1:]))
            except ValueError:
                continue
        return sorted(found)

    def load(
        self,
        key: str,
        version: int | None = None,
        *,
        fallback: bool = True,
        quarantine: bool = True,
    ) -> ModelArtifact:
        """Load a stored model; latest version by default.

        When no ``version`` is pinned and the newest artifact is corrupt,
        the load falls back to the newest *readable* version (corrupt
        ones are moved to the key's ``quarantine/`` directory unless
        ``quarantine=False``).  A pinned ``version``, or ``fallback=
        False``, raises :exc:`ArtifactCorruptError` directly.
        """
        available = self.versions(key)
        if not available:
            raise KeyError(f"No stored models under key {key!r}.")
        if version is not None:
            if version not in available:
                raise KeyError(
                    f"Version {version} of {key!r} not found; have {available}."
                )
            return self._load_version(key, version)

        last_error: ArtifactCorruptError | None = None
        for candidate in reversed(available):
            try:
                return self._load_version(key, candidate)
            except ArtifactCorruptError as exc:
                last_error = exc
                if quarantine:
                    self._quarantine(key, candidate)
                if not fallback:
                    raise
        raise ArtifactCorruptError(
            key,
            None,
            f"no readable version among {available} "
            f"(last: {last_error.reason})",
        )

    def delete(self, key: str, version: int) -> None:
        """Remove one stored version (both payload and sidecar)."""
        pkl_path, json_path = self._version_paths(key, version)
        if not pkl_path.exists():
            raise KeyError(f"{key!r} v{version} does not exist.")
        pkl_path.unlink()
        json_path.unlink(missing_ok=True)

    def quarantine(self, key: str, version: int) -> None:
        """Move one stored version into the key's ``quarantine/`` dir.

        The load path quarantines versions it *proves* corrupt; this is
        the operator-facing variant — a rollback can park a suspect
        (but still readable) promoted version for offline inspection
        instead of deleting it.
        """
        pkl_path, _ = self._version_paths(key, version)
        if not pkl_path.exists():
            raise KeyError(f"{key!r} v{version} does not exist.")
        self._quarantine(key, version)

    def prune(
        self, key: str, keep_last: int = 5, *, keep: Iterable[int] = ()
    ) -> list[int]:
        """Retention policy: drop old versions beyond the newest ``keep_last``.

        Versions listed in ``keep`` (the actively serving and pinned
        versions) are never deleted, whatever their age — a rollback
        target must survive any retention sweep.  Oldest unprotected
        versions go first; returns the deleted version numbers.
        """
        if keep_last < 1:
            raise ValueError(f"keep_last must be >= 1, got {keep_last}.")
        protected = {int(v) for v in keep if v is not None}
        versions = self.versions(key)
        retained = set(versions[-keep_last:]) | protected
        removed = [v for v in versions if v not in retained]
        for version in removed:
            self.delete(key, version)
        return removed
