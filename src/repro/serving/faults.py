"""Deterministic fault-injection harness for chaos testing the service.

Reliability code is only trustworthy if its failure paths are exercised,
and failure paths are only testable if the failures replay exactly.
This module injects seeded faults at the seams the resilience layer
guards:

* :class:`FaultInjector` — the seeded scheduler.  Each injection *site*
  (a string like ``"store.save"`` or ``"train"``) gets its own
  deterministic random stream derived from ``(seed, crc32(site))``, so
  whether the N-th call at a site fires depends only on the seed and N —
  not on interleaving with other sites.  Every decision is counted
  (``injector.injected``), which lets chaos tests assert that
  :class:`~repro.serving.reliability.FleetHealth` counters match the
  injected fault counts *exactly*.
* :class:`FaultyStore` — wraps a :class:`~repro.serving.persistence.
  ModelStore` to raise transient ``OSError`` on save/load and to corrupt
  saved payload bytes (checksum verification catches these on load).
* :func:`faulty_predictor_factory` — wraps the algorithm registry so
  ``fit``/``predict`` raise :exc:`InjectedFault` on schedule (plug into
  ``MaintenancePredictionService(predictor_factory=...)``).
* :class:`FaultyExecutor` — wraps task execution with injected delays
  (scheduling chaos) and optional exceptions.
* :func:`corrupt_readings` — turns a clean usage array into a dirty
  telemetry feed (non-finite, negative, over-ceiling, duplicated and
  out-of-order reports), with the injector recording exactly what was
  corrupted.

All sites default to rate 0.0 — an injector with no rates is a no-op,
which is how the clean-path equivalence suite runs the full harness.
"""

from __future__ import annotations

import time
import zlib
from collections import Counter
from collections.abc import Iterator, Mapping

import numpy as np

from .executor import FleetExecutor

__all__ = [
    "InjectedFault",
    "FaultInjector",
    "FaultyStore",
    "FaultyExecutor",
    "faulty_predictor_factory",
    "corrupt_readings",
    "READING_SITES",
]


class InjectedFault(RuntimeError):
    """An artificial failure raised by the fault-injection harness."""


#: Sites used by :func:`corrupt_readings`, mapping to the guard's
#: anomaly classes.
READING_SITES: tuple[str, ...] = (
    "reading.non_finite",
    "reading.negative",
    "reading.too_large",
    "reading.duplicate",
    "reading.out_of_order",
)


class FaultInjector:
    """Seeded, per-site deterministic fault scheduler.

    Parameters
    ----------
    seed:
        Master seed; combined with a stable per-site hash so each site
        has an independent, reproducible stream.
    rates:
        ``{site: probability}``; unlisted sites never fire.
    """

    def __init__(self, seed: int = 0, rates: Mapping[str, float] | None = None):
        self.seed = int(seed)
        self.rates = dict(rates or {})
        for site, rate in self.rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"Rate for {site!r} must be in [0, 1], got {rate}.")
        self.calls: Counter = Counter()
        self.injected: Counter = Counter()
        self._rngs: dict[str, np.random.Generator] = {}

    def _rng(self, site: str) -> np.random.Generator:
        rng = self._rngs.get(site)
        if rng is None:
            rng = np.random.default_rng(
                (self.seed, zlib.crc32(site.encode("utf-8")))
            )
            self._rngs[site] = rng
        return rng

    def fires(self, site: str) -> bool:
        """Whether this call at ``site`` injects a fault (and count it)."""
        self.calls[site] += 1
        rate = self.rates.get(site, 0.0)
        if rate > 0.0 and float(self._rng(site).random()) < rate:
            self.injected[site] += 1
            return True
        return False

    def maybe_raise(self, site: str, exc_type=InjectedFault) -> None:
        if self.fires(site):
            raise exc_type(f"injected fault at {site!r} (seed {self.seed})")

    def summary(self) -> dict[str, dict[str, int]]:
        """``{site: {calls, injected}}`` for every site seen."""
        return {
            site: {
                "calls": self.calls[site],
                "injected": self.injected[site],
            }
            for site in sorted(self.calls)
        }


class FaultyStore:
    """A :class:`ModelStore` wrapper with injected storage failures.

    Sites:

    * ``store.save`` — raise ``OSError`` before the underlying save
      (transient from the caller's perspective: a retry re-rolls);
    * ``store.corrupt`` — after a successful save, flip bytes in the
      stored payload (detected by the checksum on load);
    * ``store.load`` — raise ``OSError`` before the underlying load.
    """

    def __init__(self, store, injector: FaultInjector):
        self.store = store
        self.injector = injector

    def save(self, key: str, predictor, metadata: dict | None = None) -> int:
        self.injector.maybe_raise("store.save", OSError)
        version = self.store.save(key, predictor, metadata)
        if self.injector.fires("store.corrupt"):
            pkl_path, _ = self.store._version_paths(key, version)
            payload = bytearray(pkl_path.read_bytes())
            # Truncate and flip the first byte: reliably unreadable and
            # checksum-divergent even for tiny payloads.
            payload = payload[: max(1, len(payload) // 2)]
            payload[0] ^= 0xFF
            pkl_path.write_bytes(bytes(payload))
        return version

    def load(self, key: str, version: int | None = None, **kwargs):
        self.injector.maybe_raise("store.load", OSError)
        return self.store.load(key, version, **kwargs)

    def __getattr__(self, name):
        return getattr(self.store, name)


def faulty_predictor_factory(injector: FaultInjector, base=None):
    """A ``predictor_factory`` whose models fail on the injector's
    schedule — ``fit`` at site ``"train"``, ``predict`` at ``"predict"``.
    """
    if base is None:
        from ..core.registry import make_predictor as base

    def factory(algorithm: str):
        return _FaultyPredictor(base(algorithm), injector)

    return factory


class _FaultyPredictor:
    """Delegating predictor wrapper with injected fit/predict faults."""

    def __init__(self, predictor, injector: FaultInjector):
        self._predictor = predictor
        self._injector = injector

    def fit(self, *args, **kwargs):
        self._injector.maybe_raise("train")
        self._predictor.fit(*args, **kwargs)
        return self

    def predict(self, *args, **kwargs):
        self._injector.maybe_raise("predict")
        return self._predictor.predict(*args, **kwargs)

    def __getattr__(self, name):
        return getattr(self._predictor, name)


class FaultyExecutor(FleetExecutor):
    """A :class:`FleetExecutor` injecting scheduling chaos per task.

    Sites: ``executor.delay`` sleeps ``delay`` seconds before the task
    (perturbs parallel completion order without changing results);
    ``executor.raise`` raises :exc:`InjectedFault` instead of running
    the task.
    """

    def __init__(
        self,
        injector: FaultInjector,
        *,
        delay: float = 0.001,
        max_workers: int | None = None,
        kind: str = "thread",
    ):
        super().__init__(max_workers=max_workers, kind=kind)
        self.injector = injector
        self.delay = delay

    def map_ordered(self, fn, items) -> list:
        def wrapped(item):
            if self.injector.fires("executor.delay"):
                time.sleep(self.delay)
            self.injector.maybe_raise("executor.raise")
            return fn(item)

        return super().map_ordered(wrapped, items)


def corrupt_readings(
    injector: FaultInjector, usage
) -> Iterator[tuple[int, float]]:
    """Yield ``(day, value)`` reports from a clean usage array, with
    seeded corruption at the ``reading.*`` sites.

    Value corruptions replace the reading in place; ``duplicate``
    re-sends the current day after it, and ``out_of_order`` re-sends a
    three-days-old report.  ``injector.injected`` counts each corruption
    kind, matching the guard's anomaly counters one-to-one.
    """
    usage = np.asarray(usage, dtype=np.float64)
    for day, value in enumerate(usage):
        value = float(value)
        if injector.fires("reading.non_finite"):
            yield day, float("nan")
        elif injector.fires("reading.negative"):
            yield day, -abs(value) - 1.0
        elif injector.fires("reading.too_large"):
            yield day, 86_400.0 + abs(value) + 1.0
        else:
            yield day, value
        if injector.fires("reading.duplicate"):
            yield day, value
        if day >= 3 and injector.fires("reading.out_of_order"):
            yield day - 3, float(usage[day - 3])
