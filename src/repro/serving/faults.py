"""Deterministic fault-injection harness for chaos testing the service.

Reliability code is only trustworthy if its failure paths are exercised,
and failure paths are only testable if the failures replay exactly.
This module injects seeded faults at the seams the resilience layer
guards:

* :class:`FaultInjector` — the seeded scheduler.  Each injection *site*
  (a string like ``"store.save"`` or ``"train"``) gets its own
  deterministic random stream derived from ``(seed, crc32(site))``, so
  whether the N-th call at a site fires depends only on the seed and N —
  not on interleaving with other sites.  Every decision is counted
  (``injector.injected``), which lets chaos tests assert that
  :class:`~repro.serving.reliability.FleetHealth` counters match the
  injected fault counts *exactly*.
* :class:`FaultyStore` — wraps a :class:`~repro.serving.persistence.
  ModelStore` to raise transient ``OSError`` on save/load and to corrupt
  saved payload bytes (checksum verification catches these on load).
* :func:`faulty_predictor_factory` — wraps the algorithm registry so
  ``fit``/``predict`` raise :exc:`InjectedFault` on schedule (plug into
  ``MaintenancePredictionService(predictor_factory=...)``).
* :class:`FaultyExecutor` — wraps task execution with injected delays
  (scheduling chaos) and optional exceptions.
* :func:`corrupt_readings` — turns a clean usage array into a dirty
  telemetry feed (non-finite, negative, over-ceiling, duplicated and
  out-of-order reports), with the injector recording exactly what was
  corrupted.
* :class:`FaultyJournal` — wraps a :class:`~repro.durability.journal.
  WriteAheadJournal` with torn-write and partial-fsync injection; the
  standalone :func:`tear_journal_tail` and :func:`plant_stale_lock`
  damage a *closed* state directory the way a crash would.

All sites default to rate 0.0 — an injector with no rates is a no-op,
which is how the clean-path equivalence suite runs the full harness.
"""

from __future__ import annotations

import time
import zlib
from collections import Counter
from collections.abc import Iterator, Mapping

import numpy as np

from .executor import FleetExecutor

__all__ = [
    "InjectedFault",
    "FaultInjector",
    "FaultyStore",
    "FaultyExecutor",
    "FaultyJournal",
    "faulty_predictor_factory",
    "corrupt_readings",
    "plant_stale_lock",
    "tear_journal_tail",
    "READING_SITES",
]


class InjectedFault(RuntimeError):
    """An artificial failure raised by the fault-injection harness."""


#: Sites used by :func:`corrupt_readings`, mapping to the guard's
#: anomaly classes.
READING_SITES: tuple[str, ...] = (
    "reading.non_finite",
    "reading.negative",
    "reading.too_large",
    "reading.duplicate",
    "reading.out_of_order",
)


class FaultInjector:
    """Seeded, per-site deterministic fault scheduler.

    Parameters
    ----------
    seed:
        Master seed; combined with a stable per-site hash so each site
        has an independent, reproducible stream.
    rates:
        ``{site: probability}``; unlisted sites never fire.
    """

    def __init__(self, seed: int = 0, rates: Mapping[str, float] | None = None):
        self.seed = int(seed)
        self.rates = dict(rates or {})
        for site, rate in self.rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"Rate for {site!r} must be in [0, 1], got {rate}.")
        self.calls: Counter = Counter()
        self.injected: Counter = Counter()
        self._rngs: dict[str, np.random.Generator] = {}

    def _rng(self, site: str) -> np.random.Generator:
        rng = self._rngs.get(site)
        if rng is None:
            rng = np.random.default_rng(
                (self.seed, zlib.crc32(site.encode("utf-8")))
            )
            self._rngs[site] = rng
        return rng

    def fires(self, site: str) -> bool:
        """Whether this call at ``site`` injects a fault (and count it)."""
        self.calls[site] += 1
        rate = self.rates.get(site, 0.0)
        if rate > 0.0 and float(self._rng(site).random()) < rate:
            self.injected[site] += 1
            return True
        return False

    def maybe_raise(self, site: str, exc_type=InjectedFault) -> None:
        if self.fires(site):
            raise exc_type(f"injected fault at {site!r} (seed {self.seed})")

    def summary(self) -> dict[str, dict[str, int]]:
        """``{site: {calls, injected}}`` for every site seen."""
        return {
            site: {
                "calls": self.calls[site],
                "injected": self.injected[site],
            }
            for site in sorted(self.calls)
        }


class FaultyStore:
    """A :class:`ModelStore` wrapper with injected storage failures.

    Sites:

    * ``store.save`` — raise ``OSError`` before the underlying save
      (transient from the caller's perspective: a retry re-rolls);
    * ``store.corrupt`` — after a successful save, flip bytes in the
      stored payload (detected by the checksum on load);
    * ``store.load`` — raise ``OSError`` before the underlying load.
    """

    def __init__(self, store, injector: FaultInjector):
        self.store = store
        self.injector = injector

    def save(self, key: str, predictor, metadata: dict | None = None) -> int:
        self.injector.maybe_raise("store.save", OSError)
        version = self.store.save(key, predictor, metadata)
        if self.injector.fires("store.corrupt"):
            pkl_path, _ = self.store._version_paths(key, version)
            payload = bytearray(pkl_path.read_bytes())
            # Truncate and flip the first byte: reliably unreadable and
            # checksum-divergent even for tiny payloads.
            payload = payload[: max(1, len(payload) // 2)]
            payload[0] ^= 0xFF
            pkl_path.write_bytes(bytes(payload))
        return version

    def load(self, key: str, version: int | None = None, **kwargs):
        self.injector.maybe_raise("store.load", OSError)
        return self.store.load(key, version, **kwargs)

    def __getattr__(self, name):
        return getattr(self.store, name)


def faulty_predictor_factory(injector: FaultInjector, base=None):
    """A ``predictor_factory`` whose models fail on the injector's
    schedule — ``fit`` at site ``"train"``, ``predict`` at ``"predict"``.
    """
    if base is None:
        from ..core.registry import make_predictor as base

    def factory(algorithm: str):
        return _FaultyPredictor(base(algorithm), injector)

    return factory


class _FaultyPredictor:
    """Delegating predictor wrapper with injected fit/predict faults."""

    def __init__(self, predictor, injector: FaultInjector):
        self._predictor = predictor
        self._injector = injector

    def fit(self, *args, **kwargs):
        self._injector.maybe_raise("train")
        self._predictor.fit(*args, **kwargs)
        return self

    def predict(self, *args, **kwargs):
        self._injector.maybe_raise("predict")
        return self._predictor.predict(*args, **kwargs)

    def __getattr__(self, name):
        return getattr(self._predictor, name)


class FaultyExecutor(FleetExecutor):
    """A :class:`FleetExecutor` injecting scheduling chaos per task.

    Sites: ``executor.delay`` sleeps ``delay`` seconds before the task
    (perturbs parallel completion order without changing results);
    ``executor.raise`` raises :exc:`InjectedFault` instead of running
    the task.
    """

    def __init__(
        self,
        injector: FaultInjector,
        *,
        delay: float = 0.001,
        max_workers: int | None = None,
        kind: str = "thread",
    ):
        super().__init__(max_workers=max_workers, kind=kind)
        self.injector = injector
        self.delay = delay

    def map_ordered(self, fn, items) -> list:
        def wrapped(item):
            if self.injector.fires("executor.delay"):
                time.sleep(self.delay)
            self.injector.maybe_raise("executor.raise")
            return fn(item)

        return super().map_ordered(wrapped, items)


class FaultyJournal:
    """A :class:`~repro.durability.journal.WriteAheadJournal` wrapper
    with injected durability failures.

    Sites:

    * ``journal.append`` — raise ``OSError`` before the append (the
      write never reaches the log);
    * ``journal.torn`` — write only the first half of the framed line
      and raise :exc:`InjectedFault`: exactly the damage a crash mid-
      ``write(2)`` leaves, which reopening must truncate away;
    * ``journal.fsync`` — :meth:`sync` silently skips the fsync (a
      lying disk): ``durable_seq`` stays behind, the acknowledged-write
      guarantee must still hold for what *was* fsynced.
    """

    def __init__(self, journal, injector: FaultInjector):
        self.journal = journal
        self.injector = injector

    def append(self, kind: str, **payload) -> int:
        self.injector.maybe_raise("journal.append", OSError)
        if self.injector.fires("journal.torn"):
            from ..durability.journal import encode_record

            journal = self.journal
            line = encode_record(journal.last_seq + 1, kind, payload)
            # Mirror the real append's rotation, then stop mid-line
            # (private access, like FaultyStore reaching into paths).
            if (
                journal._file is None
                or journal._file_size >= journal.segment_max_bytes
            ):
                journal._rotate(journal.last_seq + 1)
            # Drain buffered whole records first so the torn fragment
            # lands after them, as a crash mid-write(2) would leave it.
            journal.flush()
            journal._file.write(line[: max(1, len(line) // 2)])
            journal._file.flush()
            raise InjectedFault(
                f"injected torn write at seq {journal.last_seq + 1} "
                f"(seed {self.injector.seed})"
            )
        return self.journal.append(kind, **payload)

    def sync(self) -> int:
        if self.injector.fires("journal.fsync"):
            self.journal.flush()  # committed, not durable
            return self.journal.durable_seq
        return self.journal.sync()

    def __getattr__(self, name):
        return getattr(self.journal, name)


def tear_journal_tail(root) -> int:
    """Append a half-written record to the newest journal segment.

    Exactly the artifact a crash mid-``write(2)`` leaves: the next
    record's bytes partially on disk, unterminated, CRC never written.
    Committed records are untouched (a fsynced record cannot be torn by
    a crash), so the acknowledged-write guarantee must survive this —
    reopening truncates only the torn tail.  Returns the number of torn
    bytes planted (0 when the journal directory has no segments).
    """
    from pathlib import Path

    from ..durability.journal import decode_record, encode_record

    segments = sorted(Path(root).glob("seg-*.jrnl"))
    if not segments:
        return 0
    tail = segments[-1]
    last_seq = 0
    for line in tail.read_bytes().splitlines(keepends=True):
        if line.endswith(b"\n"):
            try:
                last_seq = decode_record(line).seq
            except ValueError:
                break
    line = encode_record(last_seq + 1, "ingest", {"v": "torn", "s": 1.0})
    with open(tail, "ab") as fh:
        fh.write(line[: max(1, len(line) // 2)])
        fh.flush()
    return max(1, len(line) // 2)


def plant_stale_lock(state_dir, pid: int | None = None) -> int:
    """Write a lock file naming a dead process into ``state_dir``.

    Simulates the fence a SIGKILLed service leaves behind; recovery
    must detect the pid is gone and steal the lock.  When ``pid`` is
    ``None`` a real just-exited child's pid is used (guaranteed dead,
    never accidentally alive).  Returns the planted pid.
    """
    import subprocess
    import sys
    from pathlib import Path

    from ..durability.recovery import LOCK_FILENAME

    if pid is None:
        probe = subprocess.run(
            [sys.executable, "-c", "import os; print(os.getpid())"],
            capture_output=True,
            text=True,
            check=True,
        )
        pid = int(probe.stdout.strip())
    path = Path(state_dir) / LOCK_FILENAME
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(str(pid), "ascii")
    return pid


def corrupt_readings(
    injector: FaultInjector, usage
) -> Iterator[tuple[int, float]]:
    """Yield ``(day, value)`` reports from a clean usage array, with
    seeded corruption at the ``reading.*`` sites.

    Value corruptions replace the reading in place; ``duplicate``
    re-sends the current day after it, and ``out_of_order`` re-sends a
    three-days-old report.  ``injector.injected`` counts each corruption
    kind, matching the guard's anomaly counters one-to-one.
    """
    usage = np.asarray(usage, dtype=np.float64)
    for day, value in enumerate(usage):
        value = float(value)
        if injector.fires("reading.non_finite"):
            yield day, float("nan")
        elif injector.fires("reading.negative"):
            yield day, -abs(value) - 1.0
        elif injector.fires("reading.too_large"):
            yield day, 86_400.0 + abs(value) + 1.0
        else:
            yield day, value
        if injector.fires("reading.duplicate"):
            yield day, value
        if day >= 3 and injector.fires("reading.out_of_order"):
            yield day - 3, float(usage[day - 3])
