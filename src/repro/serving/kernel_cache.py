"""Scope-keyed cache of compiled inference kernels for the serving layer.

The service's Section-4 routing serves a handful of *shared* model
identities — each old vehicle's champion, the fleet-wide ``Model_Uni``,
one ``Model_Sim`` per similarity donor.  Flattening an ensemble into its
:mod:`repro.learn.compiled` kernel costs a few milliseconds, so the
batched predict path caches one compiled artifact per serving scope and
revalidates it on every lookup against both the live model object
(identity) and the scope's version token (store version, unified donor
set, similarity key).  Either changing — lifecycle promotion, rollback,
checkpoint restore, retrain, donor change — makes the next lookup a
miss that recompiles against the new model; explicit
:meth:`CompiledModelCache.invalidate` hooks cover the lifecycle paths
that swap models without changing version numbers.

All counters mutate under one lock (the cycle cache's stats race taught
that lesson); :meth:`stats` is the consolidated-metrics ``kernel``
section: compile count/time, hit rate, and a rows-per-batch histogram
in power-of-two buckets.
"""

from __future__ import annotations

import threading
import time

from ..learn.compiled import try_compile

__all__ = ["CompiledModelCache"]


class CompiledModelCache:
    """Compiled-kernel cache keyed by serving scope."""

    def __init__(self):
        self._lock = threading.Lock()
        # scope -> (model id(), version token, compiled kernel | None).
        # ``None`` kernels are cached too: an uncompilable model should
        # not re-attempt compilation on every batch.
        self._entries: dict[str, tuple[int, object, object | None]] = {}
        self._hits = 0
        self._misses = 0
        self._invalidations = 0
        self._compile_count = 0
        self._compile_seconds = 0.0
        self._batches = 0
        self._batched_rows = 0
        self._max_rows = 0
        self._row_buckets: dict[str, int] = {}

    def get(self, scope: str, model, version):
        """The compiled kernel for ``model`` serving under ``scope``.

        ``version`` is the scope's freshness token (any equality-
        comparable value).  Returns ``None`` when the model cannot be
        compiled — callers fall back to the model's own ``predict``.
        """
        token = id(model)
        with self._lock:
            entry = self._entries.get(scope)
            if (
                entry is not None
                and entry[0] == token
                and entry[1] == version
            ):
                self._hits += 1
                return entry[2]
        started = time.perf_counter()
        compiled = try_compile(model)
        elapsed = time.perf_counter() - started
        with self._lock:
            self._misses += 1
            self._compile_count += 1
            self._compile_seconds += elapsed
            self._entries[scope] = (token, version, compiled)
        return compiled

    def invalidate(self, scope: str | None = None) -> int:
        """Drop one scope's compiled kernel (or all of them)."""
        with self._lock:
            if scope is None:
                dropped = len(self._entries)
                self._entries.clear()
            else:
                dropped = 1 if self._entries.pop(scope, None) is not None else 0
            self._invalidations += dropped
            return dropped

    def record_batch(self, rows: int) -> None:
        """Account one kernel call covering ``rows`` stacked vehicles."""
        bucket = 1
        while bucket < rows:
            bucket *= 2
        label = f"<={bucket}"
        with self._lock:
            self._batches += 1
            self._batched_rows += rows
            if rows > self._max_rows:
                self._max_rows = rows
            self._row_buckets[label] = self._row_buckets.get(label, 0) + 1

    def stats(self) -> dict:
        """JSON-ready snapshot for the ``kernel`` metrics section."""
        with self._lock:
            lookups = self._hits + self._misses
            return {
                "hits": self._hits,
                "misses": self._misses,
                "hit_rate": self._hits / lookups if lookups else 0.0,
                "invalidations": self._invalidations,
                "compile_count": self._compile_count,
                "compile_seconds": self._compile_seconds,
                "entries": len(self._entries),
                "batches": self._batches,
                "batched_rows": self._batched_rows,
                "mean_rows_per_batch": (
                    self._batched_rows / self._batches if self._batches else 0.0
                ),
                "max_rows_per_batch": self._max_rows,
                "batch_rows": dict(
                    sorted(
                        self._row_buckets.items(),
                        key=lambda kv: int(kv[0][2:]),
                    )
                ),
            }
