"""Batch fleet engine: parallel training + batch prediction.

:class:`MaintenancePredictionService` handles one vehicle at a time and
re-derives every cycle series from scratch; this module scales the same
methodology to fleet-sized traffic without changing a single predicted
``D̂_v(t)``:

* **incremental cycle-state caching** — the engine's service runs with a
  :class:`~repro.serving.cycle_cache.CycleStateCache`, so a day of
  ingest updates ``C``/``L``/``D`` in O(1) instead of O(history);
* **parallel per-vehicle training** — stale old-vehicle models are
  retrained through a :class:`~repro.serving.executor.FleetExecutor`
  (threads by default, process pool opt-in) and installed in
  deterministic vehicle order;
* **batch prediction** — :meth:`FleetEngine.predict_all` fans
  per-vehicle forecasts out over threads and returns them sorted by
  vehicle id.

Serial-equivalence contract: every forecast is bit-identical to what
the plain serial service would produce on the same history, because
training data, model seeds and routing are unchanged — only the
schedule differs.  ``tests/serving/test_fleet_engine.py`` enforces
this with exact equality.
"""

from __future__ import annotations

import operator
import threading
import time
from collections.abc import Iterable, Mapping
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from ..core.categorize import VehicleCategory
from ..core.registry import make_predictor
from ..core.series import VehicleSeries
from ..dataprep.transformation import build_relational_dataset
from ..obs import NULL_STAGE, Observability, tracing
from .cycle_cache import CycleStateCache
from .executor import FleetExecutor
from .reliability import FleetHealth
from .service import Forecast, MaintenancePredictionService

__all__ = ["EngineConfig", "FleetEngine"]


@dataclass(frozen=True)
class EngineConfig:
    """Concurrency and caching knobs of the fleet engine.

    Attributes
    ----------
    max_workers:
        Worker bound for training and prediction fan-out; ``None``
        sizes to the host, ``1`` forces the serial schedule.
    executor:
        ``"thread"`` (default) or ``"process"`` for the *training*
        fan-out.  Prediction always fans out over threads because it
        mutates live per-vehicle service state.
    use_cycle_cache:
        Attach an incremental :class:`CycleStateCache` to the service.
    auto_refresh:
        Refresh stale old-vehicle models before every batch prediction
        (the historical contract).  ``False`` leaves model freshness to
        explicit :meth:`FleetEngine.refresh_models` calls or the
        lifecycle controller's evaluation-gated promotions — batch
        prediction then serves whatever champions are installed.
    batched_predict:
        Route batch prediction through the service's grouped compiled-
        kernel path (:meth:`~repro.serving.service.
        MaintenancePredictionService.predict_batch`): vehicles sharing
        a model are stacked into one fused kernel call instead of one
        tiny predict per vehicle.  Forecasts stay bit-identical to the
        per-vehicle fan-out.  Resilient services (circuit breaker) and
        injected prediction executors always use the per-vehicle path.
    """

    max_workers: int | None = None
    executor: str = "thread"
    use_cycle_cache: bool = True
    auto_refresh: bool = True
    batched_predict: bool = True

    def __post_init__(self) -> None:
        if self.executor not in ("serial", "thread", "process"):
            raise ValueError(
                f"Unknown executor {self.executor!r}; choose "
                "'serial', 'thread' or 'process'."
            )


@dataclass(frozen=True)
class _TrainingTask:
    """Picklable per-vehicle training job (process-pool safe).

    ``factory`` overrides :func:`make_predictor` (the fault-injection
    harness hooks in here); it must itself pickle for process pools, so
    it stays ``None`` unless the service carries a custom factory.
    """

    vehicle_id: str
    usage: np.ndarray
    t_v: float
    window: int
    algorithm: str
    n_cycles: int
    factory: object | None = None

    def __call__(self):
        series = VehicleSeries(
            vehicle_id=self.vehicle_id, usage=self.usage, t_v=self.t_v
        )
        dataset = build_relational_dataset(series.bundle, self.window)
        if dataset.n_records == 0:
            raise ValueError(
                f"Vehicle {self.vehicle_id!r} has no labeled records yet."
            )
        predictor = (self.factory or make_predictor)(self.algorithm)
        predictor.fit(dataset, usage=series.usage)
        return predictor


def _run_training_task(task: _TrainingTask):
    return task()


def _run_training_task_safe(task: _TrainingTask):
    """Never-raising task runner: (predictor, None) or (None, exc)."""
    try:
        return task(), None
    except Exception as exc:
        return None, exc


class FleetEngine:
    """Fleet-scale front end over :class:`MaintenancePredictionService`.

    Parameters
    ----------
    service:
        An existing service to drive; when ``None`` a fresh one is
        built from ``service_kwargs`` (``t_v`` is then required).
    config:
        :class:`EngineConfig`; defaults to threads sized to the host
        with the cycle cache enabled.
    training_executor / prediction_executor:
        Optional :class:`FleetExecutor` overrides (the fault-injection
        harness substitutes a :class:`~repro.serving.faults.
        FaultyExecutor` here); defaults are built from ``config``.
    """

    def __init__(
        self,
        service: MaintenancePredictionService | None = None,
        *,
        config: EngineConfig | None = None,
        training_executor: FleetExecutor | None = None,
        prediction_executor: FleetExecutor | None = None,
        **service_kwargs,
    ):
        self.config = config or EngineConfig()
        if service is None:
            service_kwargs.setdefault(
                "cycle_cache", self.config.use_cycle_cache
            )
            service = MaintenancePredictionService(**service_kwargs)
        elif service_kwargs:
            raise ValueError(
                "Pass service_kwargs only when the engine builds the "
                "service itself."
            )
        elif self.config.use_cycle_cache and service.cycle_cache is None:
            service.cycle_cache = CycleStateCache()
        self.service = service
        self._training_executor_override = training_executor
        self._prediction_executor_override = prediction_executor
        # Lazily-built persistent executors: FleetExecutor keeps one
        # pool per instance now, so the engine must keep one instance
        # per role instead of constructing a throwaway per call.
        self._training_executor_cache: FleetExecutor | None = None
        self._prediction_executor_cache: FleetExecutor | None = None
        self._inflight = 0
        self._inflight_cond = threading.Condition()
        self.obs: Observability | None = None
        # Optional RecoveryManager (duck-typed); attach_durability()
        # wires it in after recovery so ingest batches can trigger
        # periodic checkpoints and readiness() can surface its status.
        self.durability = None
        # (sorted fleet ids, C-level getter) for full-fleet day
        # batches; keyed by fleet size, which is sound because
        # vehicles are never deregistered.
        self._fleet_ids_cache = None
        # Optional LifecycleController (duck-typed); attach_lifecycle()
        # wires it in so the gateway's admin endpoints and readiness()
        # can reach it.
        self.lifecycle = None

    def attach_observability(self, obs: Observability) -> None:
        """Share one :class:`~repro.obs.Observability` across the stack.

        The service underneath gets the same instance (stage profiling,
        ladder span events), and the engine contributes the ``fleet``,
        ``drift`` and ``cache`` sections of the consolidated metrics
        snapshot via registry collectors.  Idempotent; the gateway calls
        this on construction, in-process users may call it directly.
        """
        self.obs = obs
        self.service.obs = obs
        obs.registry.register_collector(
            "fleet",
            lambda: self.service.health().summary_counters(),
            replace=True,
        )
        obs.registry.register_collector(
            "drift",
            lambda: (
                {}
                if self.service.monitor is None
                else self.service.monitor.counters()
            ),
            replace=True,
        )
        obs.registry.register_collector(
            "cache", lambda: self.cache_stats or {}, replace=True
        )
        obs.registry.register_collector(
            "kernel", lambda: self.service.kernel_cache.stats(), replace=True
        )
        if self.durability is not None:
            obs.registry.register_collector(
                "durability", self.durability.status, replace=True
            )
        if self.lifecycle is not None:
            obs.registry.register_collector(
                "lifecycle", self.lifecycle.counters, replace=True
            )

    def attach_durability(self, manager) -> None:
        """Wire a recovered :class:`~repro.durability.recovery.
        RecoveryManager` into the engine.

        Bulk day-batches then journal one record per batch,
        :meth:`ingest_day` triggers periodic checkpoints, and
        :meth:`readiness` (hence the gateway's ``/v1/ready``) reports
        the durability status.  Call after ``manager.recover()``.
        """
        self.durability = manager
        if self.obs is not None:
            self.obs.registry.register_collector(
                "durability", manager.status, replace=True
            )

    def attach_lifecycle(self, controller) -> None:
        """Wire a :class:`~repro.lifecycle.LifecycleController` in.

        The gateway's ``/v1/lifecycle`` admin endpoints and
        :meth:`readiness` reach the controller through this handle, and
        its sweep/promotion counters join the consolidated metrics
        snapshot as the ``lifecycle`` section.
        """
        self.lifecycle = controller
        if self.obs is not None:
            self.obs.registry.register_collector(
                "lifecycle", controller.counters, replace=True
            )

    @contextmanager
    def _track_inflight(self):
        """Count a batch operation for :meth:`drain`."""
        with self._inflight_cond:
            self._inflight += 1
        try:
            yield
        finally:
            with self._inflight_cond:
                self._inflight -= 1
                self._inflight_cond.notify_all()

    # -- executors ---------------------------------------------------------

    def _training_executor(self) -> FleetExecutor:
        if self._training_executor_override is not None:
            return self._training_executor_override
        if self._training_executor_cache is None:
            self._training_executor_cache = FleetExecutor(
                max_workers=self.config.max_workers, kind=self.config.executor
            )
        return self._training_executor_cache

    def _prediction_executor(self) -> FleetExecutor:
        if self._prediction_executor_override is not None:
            return self._prediction_executor_override
        if self._prediction_executor_cache is None:
            # Prediction mutates live per-vehicle state (pending
            # forecasts, model caches), so it must stay in-process.
            kind = "serial" if self.config.executor == "serial" else "thread"
            self._prediction_executor_cache = FleetExecutor(
                max_workers=self.config.max_workers, kind=kind
            )
        return self._prediction_executor_cache

    def close(self) -> None:
        """Release the engine's persistent worker pools; idempotent.

        Override executors are owned by whoever passed them in and are
        left alone.  The engine itself stays usable for serial work,
        but a closed pool is never resurrected.
        """
        for cache in (
            self._training_executor_cache,
            self._prediction_executor_cache,
        ):
            if cache is not None:
                cache.close()

    # -- ingestion ---------------------------------------------------------

    @property
    def cache_stats(self) -> dict[str, int] | None:
        cache = self.service.cycle_cache
        return None if cache is None else cache.stats.as_dict()

    def register_fleet(self, vehicle_ids: Iterable[str]) -> None:
        """Register many vehicles at once (order-independent)."""
        for vehicle_id in sorted(vehicle_ids):
            self.service.register_vehicle(vehicle_id)

    def ingest_day(
        self, usage_by_vehicle: Mapping[str, float], *, day: int | None = None
    ) -> None:
        """Ingest one day of utilization for part or all of the fleet.

        Vehicles are processed in sorted id order so monitor resolution
        and cache updates are deterministic.  When the service carries
        an ingestion guard, one vehicle's dirty reading can no longer
        kill the whole fleet batch — it is screened per policy and the
        rest of the batch proceeds.

        With a journal attached, the whole batch lands as one bulk
        ``day`` record (base64 float64 values in sorted-id order) and
        the per-vehicle ingests run with journaling suspended — one
        framed line instead of N, keeping journal overhead off the
        per-reading hot path.  A batch covering exactly the registered
        fleet omits the id list entirely: replay is deterministic
        re-execution, so by the time the record is applied the same
        ``register`` records have rebuilt the same fleet and the
        sorted registry *is* the column order.  JSON-encoding N ids
        per day was the dominant journal cost; dropping it keeps the
        amortized overhead under the <10% ingest budget.
        """
        service = self.service
        journal = service.journal
        if journal is not None and service._journal_depth == 0:
            extra = {} if day is None else {"d": day}
            # Full-fleet detection by length alone is sound: vehicles
            # are never deregistered, so an equal-length batch that is
            # not the fleet must contain an unregistered id — and the
            # itemgetter raises KeyError for it here, before anything
            # is journaled or applied (the unguarded per-vehicle path
            # would raise the same KeyError partway through instead).
            if len(usage_by_vehicle) == len(service._vehicles):
                cache = self._fleet_ids_cache
                if cache is None or len(cache[0]) != len(
                    service._vehicles
                ):
                    ids = sorted(service._vehicles)
                    getter = (
                        operator.itemgetter(*ids)
                        if len(ids) > 1
                        else (lambda batch, _k=ids[0]: (batch[_k],))
                        if ids
                        else (lambda batch: ())
                    )
                    cache = self._fleet_ids_cache = (ids, getter)
                ids, getter = cache
                values = np.fromiter(
                    getter(usage_by_vehicle),
                    dtype=np.float64,
                    count=len(ids),
                )
                service._journal_append("day", u=values, **extra)
            else:
                ids = sorted(usage_by_vehicle)
                values = np.fromiter(
                    (usage_by_vehicle[v] for v in ids),
                    dtype=np.float64,
                    count=len(ids),
                )
                service._journal_append("day", vs=ids, u=values, **extra)
            # Suspend journaling by stashing the journal itself (the
            # per-reading ingest check then short-circuits exactly as
            # in journal-off mode) and iterate tolist(), not the
            # array (which boxes a fresh np.float64 per element): at
            # fleet width either would cost more than the append.
            service.journal = None
            try:
                for vehicle_id, seconds in zip(ids, values.tolist()):
                    service.ingest(vehicle_id, seconds, day=day)
            finally:
                service.journal = journal
            if self.durability is not None:
                self.durability.maybe_checkpoint()
            return
        for vehicle_id in sorted(usage_by_vehicle):
            service.ingest(
                vehicle_id, float(usage_by_vehicle[vehicle_id]), day=day
            )

    def ingest_history(self, vehicle_id: str, usage) -> None:
        self.service.ingest_series(vehicle_id, usage)

    def ingest_records(
        self,
        records: list[tuple[str, float, int | None]],
        *,
        auto_register: bool = True,
    ) -> tuple[int, str | None]:
        """Apply gateway-shaped ``(vehicle_id, seconds, day)`` records.

        Records are applied in the given order; the first failure stops
        the batch and is returned as ``(ingested_so_far, error)`` —
        whatever was applied before it stays applied (and journaled).
        This is the single ingest entry point shared by the in-process
        gateway lane and the sharded worker processes.
        """
        service = self.service
        ingested = 0
        error = None
        for vehicle_id, seconds, day in records:
            if not service.has_vehicle(vehicle_id):
                if not auto_register:
                    error = f"unknown vehicle {vehicle_id!r}"
                    break
                service.register_vehicle(vehicle_id)
            try:
                service.ingest(vehicle_id, seconds, day=day)
            except ValueError as exc:
                error = str(exc)
                break
            ingested += 1
        # Durability hook even on partial batches: whatever was applied
        # is already journaled, and sync_on_ack makes the 200/422 reply
        # imply those records are on stable storage.
        if self.durability is not None:
            self.durability.on_ingest_batch()
        return ingested, error

    # -- health ------------------------------------------------------------

    def health(self) -> FleetHealth:
        """The service's aggregated resilience report."""
        return self.service.health()

    def invalidate(self, vehicle_id: str | None = None) -> None:
        """Invalidate cached cycle state after a history rewrite."""
        if self.service.cycle_cache is not None:
            self.service.cycle_cache.invalidate(vehicle_id)

    # -- training ----------------------------------------------------------

    def _stale_old_vehicles(self) -> list[tuple[str, int]]:
        service = self.service
        stale = []
        for vehicle_id in service.vehicle_ids:
            if service.category(vehicle_id) is not VehicleCategory.OLD:
                continue
            state = service._vehicles[vehicle_id]
            if state.pinned_version is not None:
                continue  # pinned vehicles serve their pin, never retrain
            n_cycles = len(service.series(vehicle_id).completed_cycles)
            if state.model is None or (
                service.retrain_on_cycle
                and state.model_trained_cycles != n_cycles
            ):
                stale.append((vehicle_id, n_cycles))
        return stale

    def refresh_models(self) -> int:
        """Retrain every stale old-vehicle model, fanned out in parallel.

        Each task trains on exactly the dataset the serial
        ``_ensure_vehicle_model`` would use, so the installed models are
        identical; installation (and persistence) happens in the parent
        in sorted vehicle order.  Returns the number retrained.

        When the service is resilient (has a circuit breaker), one
        vehicle's training failure no longer aborts the whole batch: the
        failure is recorded on that vehicle's ``per-vehicle`` breaker
        key, its model stays stale, and prediction steps down the
        ladder.  Without a breaker the first failure raises (the
        historical contract).
        """
        with self._track_inflight():
            return self._refresh_models()

    def _refresh_models(self) -> int:
        service = self.service
        stale = self._stale_old_vehicles()
        if service.breaker is not None:
            # Don't hammer a tripped training path: leave those models
            # stale until prediction's allow() half-opens the circuit.
            stale = [
                (vehicle_id, n_cycles)
                for vehicle_id, n_cycles in stale
                if not service.breaker.is_open(f"{vehicle_id}:per-vehicle")
            ]
        if not stale:
            return 0
        from ..core.registry import make_predictor as _default_factory

        factory = (
            None
            if service._make_predictor is _default_factory
            else service._make_predictor
        )
        tasks = [
            _TrainingTask(
                vehicle_id=vehicle_id,
                usage=np.asarray(
                    service._vehicles[vehicle_id].usage, dtype=np.float64
                ),
                t_v=service.t_v,
                window=service.window,
                algorithm=service.algorithm,
                n_cycles=n_cycles,
                factory=factory,
            )
            for vehicle_id, n_cycles in stale
        ]
        resilient = service.breaker is not None
        runner = _run_training_task_safe if resilient else _run_training_task
        obs = self.obs
        with (
            obs.stage("train", scope="fleet-refresh", tasks=len(tasks))
            if obs is not None
            else NULL_STAGE
        ):
            results = self._training_executor().map_ordered(runner, tasks)
        installed = 0
        for task, result in zip(tasks, results):
            if resilient:
                predictor, error = result
                if error is not None:
                    service.breaker.record_failure(
                        f"{task.vehicle_id}:per-vehicle"
                    )
                    continue
                service.breaker.record_success(f"{task.vehicle_id}:per-vehicle")
            else:
                predictor = result
            state = service._vehicles[task.vehicle_id]
            state.model = predictor
            state.model_trained_cycles = task.n_cycles
            installed += 1
            state.model_version = service._persist(
                f"{task.vehicle_id}.per-vehicle",
                predictor,
                strategy="per-vehicle",
                trained_cycles=task.n_cycles,
            )
        return installed

    # -- prediction --------------------------------------------------------

    def _use_batched(self) -> bool:
        """Whether batch prediction may take the grouped kernel path.

        Injected prediction executors (the fault harness) keep the
        per-vehicle fan-out so their failure schedules still apply;
        resilient services are gated inside ``predict_batch`` itself
        but skipping here avoids even entering it.
        """
        return (
            self.config.batched_predict
            and self.service.breaker is None
            and self._prediction_executor_override is None
        )

    def _ready_ids(self) -> list[str]:
        service = self.service
        return [
            vehicle_id
            for vehicle_id in service.vehicle_ids
            if service.series(vehicle_id).n_days > service.window
        ]

    def predict_all(self, *, skip_unready: bool = True) -> list[Forecast]:
        """Forecast the whole fleet from the latest ingested day.

        Refreshes stale old-vehicle models (parallel), pre-warms the
        shared unified model, then fans per-vehicle prediction out over
        threads.  Forecasts come back sorted by vehicle id; vehicles
        with fewer than ``window + 1`` observed days are skipped when
        ``skip_unready`` (else the underlying ``ValueError`` surfaces).
        """
        with self._track_inflight():
            service = self.service
            if self.config.auto_refresh:
                self._refresh_models()
            ids = self._ready_ids() if skip_unready else service.vehicle_ids
            if service.breaker is None and any(
                service.category(vehicle_id) is VehicleCategory.NEW
                for vehicle_id in ids
            ):
                # Train Model_Uni once before the fan-out; the per-call
                # donor-set check then hits this cache read-only.  NEW
                # vehicles are never donors, so exclude-self is a no-op.
                # Resilient services skip the pre-warm so every unified
                # attempt (and failure) is accounted on a vehicle's breaker.
                service._ensure_unified_model()
            if self._use_batched():
                return service.predict_batch(ids)
            return self._prediction_executor().map_ordered(service.predict, ids)

    def predict_many(
        self,
        vehicle_ids: Iterable[str],
        *,
        spans: list | None = None,
    ) -> list[Forecast]:
        """Batch-forecast a subset, in sorted vehicle order.

        ``spans`` aligns one trace span (or ``None``) per id *in the
        given order*: a micro-batch serves several requests with
        different traces, so the gateway passes each request's root
        span explicitly and each vehicle's ``service.predict`` call is
        recorded as an ``engine.predict`` child of its own root.
        Sorting is stable, so spans stay attached to their ids.
        Tracing only records — forecasts are bit-identical with spans
        on or off.

        Worker threads never touch the span objects on the plain hot
        path: they capture raw ``perf_counter`` pairs and the
        dispatching thread materialises the child spans afterwards
        (cross-thread traffic on shared spans costs ~10x the span
        machinery itself under load).  Services with a circuit breaker
        instead activate the span *inside* the worker so the Section-4
        ladder's breaker/fallback events land on the trace.
        """
        with self._track_inflight():
            if self.config.auto_refresh:
                self._refresh_models()
            ids = list(vehicle_ids)
            if spans is None or not any(s is not None for s in spans):
                if self._use_batched():
                    return self.service.predict_batch(sorted(ids))
                return self._prediction_executor().map_ordered(
                    self.service.predict, sorted(ids)
                )
            if len(spans) != len(ids):
                raise ValueError(
                    f"spans must align with vehicle_ids: "
                    f"{len(spans)} != {len(ids)}."
                )
            order = sorted(range(len(ids)), key=ids.__getitem__)
            jobs = [(ids[i], spans[i]) for i in order]
            if self.service.breaker is not None:
                return self._prediction_executor().map_ordered(
                    self._predict_traced, jobs
                )
            if self._use_batched():
                # One grouped kernel pass for the whole micro-batch;
                # each request still gets its own engine.predict child
                # span (spanning the shared batch window) so traces
                # keep their per-vehicle attribution.
                t0 = time.perf_counter()
                forecasts = self.service.predict_batch(
                    [vehicle_id for vehicle_id, _ in jobs]
                )
                t1 = time.perf_counter()
                for vehicle_id, span in jobs:
                    if span is not None:
                        span.tracer.record_span(
                            "engine.predict",
                            span,
                            t0,
                            t1,
                            vehicle_id=vehicle_id,
                            batched=True,
                        )
                return forecasts
            predict = self.service.predict
            timings: list[tuple[float, float] | None] = [None] * len(jobs)

            def timed(index: int) -> Forecast:
                t0 = time.perf_counter()
                forecast = predict(jobs[index][0])
                timings[index] = (t0, time.perf_counter())
                return forecast

            forecasts = self._prediction_executor().map_ordered(
                timed, range(len(jobs))
            )
            for (vehicle_id, span), timing in zip(jobs, timings):
                if span is not None and timing is not None:
                    span.tracer.record_span(
                        "engine.predict",
                        span,
                        timing[0],
                        timing[1],
                        vehicle_id=vehicle_id,
                    )
            return forecasts

    def _predict_traced(self, job: tuple) -> Forecast:
        # Resilient path only: the active child span lets the strategy
        # ladder attach breaker-open / rung-failed / fallback events.
        vehicle_id, span = job
        with tracing.child_span(span, "engine.predict", vehicle_id=vehicle_id):
            return self.service.predict(vehicle_id)

    # -- lifecycle ---------------------------------------------------------

    def readiness(self) -> dict:
        """Liveness/readiness snapshot for the serving layer.

        ``ready`` counts vehicles with enough observed days
        (``> window``) to serve a forecast right now; ``cache`` is the
        cycle-cache hit/miss breakdown (``None`` without a cache).
        """
        service = self.service
        ready = sum(
            1
            for vehicle_id in service.vehicle_ids
            if service.n_days(vehicle_id) > service.window
        )
        return {
            "vehicles": len(service.vehicle_ids),
            "ready": ready,
            "inflight": self._inflight,
            "cache": self.cache_stats,
            "durability": (
                None if self.durability is None else self.durability.status()
            ),
            "lifecycle": (
                None if self.lifecycle is None else self.lifecycle.counters()
            ),
        }

    def metrics_section(self) -> dict:
        """The engine-owned sections of a metrics snapshot.

        Exactly what the registry collectors registered by
        :meth:`attach_observability` would produce — but callable
        directly, so a sharded deployment can gather each shard's
        sections on that shard's own thread/process instead of reading
        another shard's state cross-thread at snapshot time.
        """
        service = self.service
        section = {
            "fleet": service.health().summary_counters(),
            "drift": (
                {} if service.monitor is None else service.monitor.counters()
            ),
            "cache": self.cache_stats or {},
            "kernel": service.kernel_cache.stats(),
        }
        if self.durability is not None:
            section["durability"] = self.durability.status()
        if self.lifecycle is not None:
            section["lifecycle"] = self.lifecycle.counters()
        return section

    def drain(self, timeout: float | None = None) -> bool:
        """Block until no batch operation is in flight.

        The gateway calls this during graceful shutdown after it has
        stopped feeding the engine; direct users can call it before
        snapshotting or persisting state.  Returns ``False`` when the
        timeout expires with work still running.
        """
        with self._inflight_cond:
            return self._inflight_cond.wait_for(
                lambda: self._inflight == 0, timeout
            )
