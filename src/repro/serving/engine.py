"""Batch fleet engine: parallel training + batch prediction.

:class:`MaintenancePredictionService` handles one vehicle at a time and
re-derives every cycle series from scratch; this module scales the same
methodology to fleet-sized traffic without changing a single predicted
``D̂_v(t)``:

* **incremental cycle-state caching** — the engine's service runs with a
  :class:`~repro.serving.cycle_cache.CycleStateCache`, so a day of
  ingest updates ``C``/``L``/``D`` in O(1) instead of O(history);
* **parallel per-vehicle training** — stale old-vehicle models are
  retrained through a :class:`~repro.serving.executor.FleetExecutor`
  (threads by default, process pool opt-in) and installed in
  deterministic vehicle order;
* **batch prediction** — :meth:`FleetEngine.predict_all` fans
  per-vehicle forecasts out over threads and returns them sorted by
  vehicle id.

Serial-equivalence contract: every forecast is bit-identical to what
the plain serial service would produce on the same history, because
training data, model seeds and routing are unchanged — only the
schedule differs.  ``tests/serving/test_fleet_engine.py`` enforces
this with exact equality.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

import numpy as np

from ..core.categorize import VehicleCategory
from ..core.registry import make_predictor
from ..core.series import VehicleSeries
from ..dataprep.transformation import build_relational_dataset
from .cycle_cache import CycleStateCache
from .executor import FleetExecutor
from .service import Forecast, MaintenancePredictionService

__all__ = ["EngineConfig", "FleetEngine"]


@dataclass(frozen=True)
class EngineConfig:
    """Concurrency and caching knobs of the fleet engine.

    Attributes
    ----------
    max_workers:
        Worker bound for training and prediction fan-out; ``None``
        sizes to the host, ``1`` forces the serial schedule.
    executor:
        ``"thread"`` (default) or ``"process"`` for the *training*
        fan-out.  Prediction always fans out over threads because it
        mutates live per-vehicle service state.
    use_cycle_cache:
        Attach an incremental :class:`CycleStateCache` to the service.
    """

    max_workers: int | None = None
    executor: str = "thread"
    use_cycle_cache: bool = True

    def __post_init__(self) -> None:
        if self.executor not in ("serial", "thread", "process"):
            raise ValueError(
                f"Unknown executor {self.executor!r}; choose "
                "'serial', 'thread' or 'process'."
            )


@dataclass(frozen=True)
class _TrainingTask:
    """Picklable per-vehicle training job (process-pool safe)."""

    vehicle_id: str
    usage: np.ndarray
    t_v: float
    window: int
    algorithm: str
    n_cycles: int

    def __call__(self):
        series = VehicleSeries(
            vehicle_id=self.vehicle_id, usage=self.usage, t_v=self.t_v
        )
        dataset = build_relational_dataset(series.bundle, self.window)
        if dataset.n_records == 0:
            raise ValueError(
                f"Vehicle {self.vehicle_id!r} has no labeled records yet."
            )
        predictor = make_predictor(self.algorithm)
        predictor.fit(dataset, usage=series.usage)
        return predictor


def _run_training_task(task: _TrainingTask):
    return task()


class FleetEngine:
    """Fleet-scale front end over :class:`MaintenancePredictionService`.

    Parameters
    ----------
    service:
        An existing service to drive; when ``None`` a fresh one is
        built from ``service_kwargs`` (``t_v`` is then required).
    config:
        :class:`EngineConfig`; defaults to threads sized to the host
        with the cycle cache enabled.
    """

    def __init__(
        self,
        service: MaintenancePredictionService | None = None,
        *,
        config: EngineConfig | None = None,
        **service_kwargs,
    ):
        self.config = config or EngineConfig()
        if service is None:
            service_kwargs.setdefault(
                "cycle_cache", self.config.use_cycle_cache
            )
            service = MaintenancePredictionService(**service_kwargs)
        elif service_kwargs:
            raise ValueError(
                "Pass service_kwargs only when the engine builds the "
                "service itself."
            )
        elif self.config.use_cycle_cache and service.cycle_cache is None:
            service.cycle_cache = CycleStateCache()
        self.service = service

    # -- executors ---------------------------------------------------------

    def _training_executor(self) -> FleetExecutor:
        return FleetExecutor(
            max_workers=self.config.max_workers, kind=self.config.executor
        )

    def _prediction_executor(self) -> FleetExecutor:
        # Prediction mutates live per-vehicle state (pending forecasts,
        # model caches), so it must stay in-process.
        kind = "serial" if self.config.executor == "serial" else "thread"
        return FleetExecutor(max_workers=self.config.max_workers, kind=kind)

    # -- ingestion ---------------------------------------------------------

    @property
    def cache_stats(self) -> dict[str, int] | None:
        cache = self.service.cycle_cache
        return None if cache is None else cache.stats.as_dict()

    def register_fleet(self, vehicle_ids: Iterable[str]) -> None:
        """Register many vehicles at once (order-independent)."""
        for vehicle_id in sorted(vehicle_ids):
            self.service.register_vehicle(vehicle_id)

    def ingest_day(self, usage_by_vehicle: Mapping[str, float]) -> None:
        """Ingest one day of utilization for part or all of the fleet.

        Vehicles are processed in sorted id order so monitor resolution
        and cache updates are deterministic.
        """
        for vehicle_id in sorted(usage_by_vehicle):
            self.service.ingest(
                vehicle_id, float(usage_by_vehicle[vehicle_id])
            )

    def ingest_history(self, vehicle_id: str, usage) -> None:
        self.service.ingest_series(vehicle_id, usage)

    def invalidate(self, vehicle_id: str | None = None) -> None:
        """Invalidate cached cycle state after a history rewrite."""
        if self.service.cycle_cache is not None:
            self.service.cycle_cache.invalidate(vehicle_id)

    # -- training ----------------------------------------------------------

    def _stale_old_vehicles(self) -> list[tuple[str, int]]:
        service = self.service
        stale = []
        for vehicle_id in service.vehicle_ids:
            if service.category(vehicle_id) is not VehicleCategory.OLD:
                continue
            state = service._vehicles[vehicle_id]
            n_cycles = len(service.series(vehicle_id).completed_cycles)
            if state.model is None or state.model_trained_cycles != n_cycles:
                stale.append((vehicle_id, n_cycles))
        return stale

    def refresh_models(self) -> int:
        """Retrain every stale old-vehicle model, fanned out in parallel.

        Each task trains on exactly the dataset the serial
        ``_ensure_vehicle_model`` would use, so the installed models are
        identical; installation (and persistence) happens in the parent
        in sorted vehicle order.  Returns the number retrained.
        """
        service = self.service
        stale = self._stale_old_vehicles()
        if not stale:
            return 0
        tasks = [
            _TrainingTask(
                vehicle_id=vehicle_id,
                usage=np.asarray(
                    service._vehicles[vehicle_id].usage, dtype=np.float64
                ),
                t_v=service.t_v,
                window=service.window,
                algorithm=service.algorithm,
                n_cycles=n_cycles,
            )
            for vehicle_id, n_cycles in stale
        ]
        predictors = self._training_executor().map_ordered(
            _run_training_task, tasks
        )
        for task, predictor in zip(tasks, predictors):
            state = service._vehicles[task.vehicle_id]
            state.model = predictor
            state.model_trained_cycles = task.n_cycles
            service._persist(
                f"{task.vehicle_id}.per-vehicle",
                predictor,
                strategy="per-vehicle",
                trained_cycles=task.n_cycles,
            )
        return len(stale)

    # -- prediction --------------------------------------------------------

    def _ready_ids(self) -> list[str]:
        service = self.service
        return [
            vehicle_id
            for vehicle_id in service.vehicle_ids
            if service.series(vehicle_id).n_days > service.window
        ]

    def predict_all(self, *, skip_unready: bool = True) -> list[Forecast]:
        """Forecast the whole fleet from the latest ingested day.

        Refreshes stale old-vehicle models (parallel), pre-warms the
        shared unified model, then fans per-vehicle prediction out over
        threads.  Forecasts come back sorted by vehicle id; vehicles
        with fewer than ``window + 1`` observed days are skipped when
        ``skip_unready`` (else the underlying ``ValueError`` surfaces).
        """
        service = self.service
        self.refresh_models()
        ids = self._ready_ids() if skip_unready else service.vehicle_ids
        if any(
            service.category(vehicle_id) is VehicleCategory.NEW
            for vehicle_id in ids
        ):
            # Train Model_Uni once before the fan-out; the per-call
            # donor-set check then hits this cache read-only.  NEW
            # vehicles are never donors, so exclude-self is a no-op.
            service._ensure_unified_model()
        return self._prediction_executor().map_ordered(service.predict, ids)

    def predict_many(self, vehicle_ids: Iterable[str]) -> list[Forecast]:
        """Batch-forecast a subset, in sorted vehicle order."""
        self.refresh_models()
        return self._prediction_executor().map_ordered(
            self.service.predict, sorted(vehicle_ids)
        )
