"""Per-vehicle incremental cycle-state cache.

The serial service re-derives every vehicle's ``C``/``L``/``D`` series
from scratch on each :meth:`~repro.serving.service.MaintenancePredictionService.series`
call — O(history) per lookup, O(history^2) over a vehicle's life.  This
cache keeps one :class:`~repro.core.cycles.IncrementalSeriesState` per
vehicle, keyed by ``(vehicle_id, usage_length, t_v)``: a lookup with a
longer history appends only the new tail (O(tail)), while a shorter
history, a changed budget, or a rewritten last day invalidates the entry
and rebuilds it from scratch.

Entries are locked individually so parallel per-vehicle prediction can
refresh different vehicles — or race on a shared donor vehicle —
without corrupting state.  The shared :class:`CacheStats` counters are
guarded by their own dedicated lock: per-entry locks serialize access
to one vehicle's *state*, but two threads holding two different entry
locks still mutate the same counters, and unsynchronized ``+=`` on
them loses increments under contention.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from ..core.cycles import IncrementalSeriesState, SeriesBundle

__all__ = ["CacheStats", "CycleStateCache"]


@dataclass
class CacheStats:
    """Counters describing how the cache is performing.

    All mutation goes through :meth:`record`, which serializes on an
    internal lock — entry-level locks do not protect these fields, so
    concurrent lookups on *different* vehicles would otherwise race on
    the shared integers and drop increments.  :meth:`as_dict` takes the
    same lock, so a snapshot is a consistent point-in-time view.
    """

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    appended_days: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record(
        self,
        *,
        hits: int = 0,
        misses: int = 0,
        invalidations: int = 0,
        appended_days: int = 0,
    ) -> None:
        """Atomically add to the counters (one lock hop per lookup)."""
        with self._lock:
            self.hits += hits
            self.misses += misses
            self.invalidations += invalidations
            self.appended_days += appended_days

    def as_dict(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "appended_days": self.appended_days,
            }


@dataclass
class _Entry:
    state: IncrementalSeriesState | None = None
    lock: threading.Lock = field(default_factory=threading.Lock)


class CycleStateCache:
    """Vehicle-keyed cache of incremental derive-series state."""

    def __init__(self):
        self._entries: dict[str, _Entry] = {}
        self._registry_lock = threading.Lock()
        self._stats = CacheStats()

    def _entry(self, vehicle_id: str) -> _Entry:
        with self._registry_lock:
            entry = self._entries.get(vehicle_id)
            if entry is None:
                entry = self._entries[vehicle_id] = _Entry()
            return entry

    @property
    def stats(self) -> CacheStats:
        return self._stats

    def invalidate(self, vehicle_id: str | None = None) -> None:
        """Drop one vehicle's cached state (or all of them).

        Call this after rewriting a vehicle's history in place; plain
        appends and truncations are detected automatically.
        """
        with self._registry_lock:
            if vehicle_id is None:
                self._entries.clear()
            else:
                self._entries.pop(vehicle_id, None)

    def bundle(
        self, vehicle_id: str, usage, t_v: float, start: int = 0
    ) -> SeriesBundle:
        """Derived series for a vehicle's current history.

        Incrementally extends the cached state when ``usage`` grew by
        appends; rebuilds when the key ``(usage_length, t_v)`` moved
        backwards, the accumulation start changed, or the most recent
        shared day no longer matches (a history rewrite).
        """
        usage = np.asarray(usage, dtype=np.float64)
        entry = self._entry(vehicle_id)
        with entry.lock:
            state = entry.state
            reusable = (
                state is not None
                and state.t_v == float(t_v)
                and state.start == start
                and state.n_days <= usage.size
                and (
                    state.n_days == 0
                    or state.usage[-1] == usage[state.n_days - 1]
                )
            )
            if not reusable:
                self._stats.record(
                    misses=1,
                    invalidations=1 if state is not None else 0,
                    appended_days=usage.size,
                )
                state = IncrementalSeriesState.from_usage(
                    usage, t_v, start=start
                )
                entry.state = state
            else:
                tail = usage.size - state.n_days
                if tail:
                    state.extend(usage[state.n_days :])
                self._stats.record(hits=1, appended_days=tail)
            return state.bundle()
