"""Deployment layer: persistence, online service, drift monitoring.

The paper closes with the system "currently under deployment, enabling
further tests and tunings"; this package is that deployment surface —
a stateful prediction service routing each vehicle through the Section-4
methodology matrix, versioned model storage, resolved-residual drift
monitoring, and a resilience layer (ingestion guard, strategy-ladder
degraded serving, hardened persistence, deterministic fault injection)
that keeps the service up on dirty telematics and flaky storage.
"""

from .cycle_cache import CacheStats, CycleStateCache
from .engine import EngineConfig, FleetEngine
from .executor import FleetExecutor, default_max_workers
from .faults import (
    FaultInjector,
    FaultyExecutor,
    FaultyJournal,
    FaultyStore,
    InjectedFault,
    corrupt_readings,
    faulty_predictor_factory,
    plant_stale_lock,
    tear_journal_tail,
)
from .gateway import (
    FleetGateway,
    GatewayConfig,
    GatewayMetrics,
    GatewayResponse,
)
from .monitoring import DriftAlert, DriftMonitor, population_stability_index
from .persistence import ArtifactCorruptError, ModelArtifact, ModelStore
from .reliability import (
    AnomalyKind,
    AnomalyPolicy,
    CircuitBreaker,
    DeadLetterRecord,
    FleetHealth,
    GuardPolicies,
    IngestionGuard,
    RetryPolicy,
    VehicleHealth,
)
from .service import Forecast, MaintenancePredictionService
from .sharding import (
    ShardRouter,
    ShardWorker,
    ShardedFleetEngine,
    build_shard_engine,
    merge_fleet_health,
)

__all__ = [
    "ShardRouter",
    "ShardWorker",
    "ShardedFleetEngine",
    "build_shard_engine",
    "merge_fleet_health",
    "CacheStats",
    "CycleStateCache",
    "EngineConfig",
    "FleetEngine",
    "FleetExecutor",
    "FleetGateway",
    "GatewayConfig",
    "GatewayMetrics",
    "GatewayResponse",
    "default_max_workers",
    "DriftAlert",
    "DriftMonitor",
    "population_stability_index",
    "ArtifactCorruptError",
    "ModelArtifact",
    "ModelStore",
    "AnomalyKind",
    "AnomalyPolicy",
    "CircuitBreaker",
    "DeadLetterRecord",
    "FleetHealth",
    "GuardPolicies",
    "IngestionGuard",
    "RetryPolicy",
    "VehicleHealth",
    "FaultInjector",
    "FaultyExecutor",
    "FaultyJournal",
    "FaultyStore",
    "InjectedFault",
    "corrupt_readings",
    "faulty_predictor_factory",
    "plant_stale_lock",
    "tear_journal_tail",
    "Forecast",
    "MaintenancePredictionService",
]
