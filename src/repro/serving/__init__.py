"""Deployment layer: persistence, online service, drift monitoring.

The paper closes with the system "currently under deployment, enabling
further tests and tunings"; this package is that deployment surface —
a stateful prediction service routing each vehicle through the Section-4
methodology matrix, versioned model storage, and resolved-residual drift
monitoring.
"""

from .cycle_cache import CacheStats, CycleStateCache
from .engine import EngineConfig, FleetEngine
from .executor import FleetExecutor, default_max_workers
from .monitoring import DriftAlert, DriftMonitor, population_stability_index
from .persistence import ModelArtifact, ModelStore
from .service import Forecast, MaintenancePredictionService

__all__ = [
    "CacheStats",
    "CycleStateCache",
    "EngineConfig",
    "FleetEngine",
    "FleetExecutor",
    "default_max_workers",
    "DriftAlert",
    "DriftMonitor",
    "population_stability_index",
    "ModelArtifact",
    "ModelStore",
    "Forecast",
    "MaintenancePredictionService",
]
