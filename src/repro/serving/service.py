"""Online next-maintenance prediction service.

The deployment the paper describes ("the data owner ... has decided to
put the present application under deployment"): a long-running service
that ingests daily utilization per vehicle, keeps each vehicle's model
fresh, routes every prediction request through the methodology matrix of
Section 4 —

* **old** vehicle -> its per-vehicle model (retrained whenever a new
  maintenance cycle completes);
* **semi-new** -> ``Model_Sim`` trained on the most similar old vehicle
  (falling back to the baseline when the fleet has no old vehicles yet);
* **new** -> ``Model_Uni`` trained on the old vehicles' first cycles —

and resolves past forecasts into the drift monitor once cycles complete
and the ground truth becomes known.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from ..core.categorize import VehicleCategory, categorize_usage
from ..core.coldstart import first_cycle_dataset
from ..core.predictors import BaselinePredictor
from ..core.registry import make_predictor
from ..core.series import VehicleSeries
from ..dataprep.transformation import (
    RelationalDataset,
    build_relational_dataset,
)
from ..similarity.measures import most_similar
from .cycle_cache import CycleStateCache
from .monitoring import DriftMonitor
from .persistence import ModelStore

__all__ = ["Forecast", "MaintenancePredictionService"]


@dataclass(frozen=True)
class Forecast:
    """A served prediction."""

    vehicle_id: str
    category: VehicleCategory
    strategy: str  # "per-vehicle", "similarity", "unified", "baseline"
    days_to_maintenance: float
    usage_left: float
    as_of_day: int
    donor_id: str | None = None


@dataclass
class _VehicleState:
    usage: list = field(default_factory=list)
    model: object | None = None
    model_trained_cycles: int = -1
    pending: list = field(default_factory=list)  # (day, predicted)
    resolved_through_cycle: int = 0


class MaintenancePredictionService:
    """Stateful fleet prediction service.

    Parameters
    ----------
    t_v:
        Usage budget per maintenance cycle (shared fleet-wide, as in
        the paper).
    window:
        Feature lag window for every model.
    algorithm:
        Registry key for the regression models (default the paper's
        best, RF).
    store:
        Optional :class:`ModelStore`; fitted models are persisted there
        with vehicle/strategy metadata.
    monitor:
        Optional :class:`DriftMonitor` fed with resolved residuals.
    similarity_measure:
        Donor-selection measure for semi-new vehicles.
    cycle_cache:
        ``True`` (or a shared :class:`CycleStateCache`) switches
        :meth:`series` to the incremental cycle-state path: appending a
        day updates ``C``/``L``/``D`` in O(1) instead of re-deriving the
        full history.  Derived series are bit-identical to the default
        from-scratch path (the equivalence suite pins this).
    """

    def __init__(
        self,
        t_v: float,
        window: int = 6,
        algorithm: str = "RF",
        store: ModelStore | None = None,
        monitor: DriftMonitor | None = None,
        similarity_measure="average_usage",
        cycle_cache: CycleStateCache | bool | None = None,
    ):
        if t_v <= 0:
            raise ValueError(f"t_v must be positive, got {t_v}.")
        if window < 0:
            raise ValueError(f"window must be >= 0, got {window}.")
        self.t_v = float(t_v)
        self.window = window
        self.algorithm = algorithm
        self.store = store
        self.monitor = monitor
        self.similarity_measure = similarity_measure
        if cycle_cache is True:
            cycle_cache = CycleStateCache()
        elif cycle_cache is False:
            cycle_cache = None
        self.cycle_cache: CycleStateCache | None = cycle_cache
        self._vehicles: dict[str, _VehicleState] = {}
        self._unified_model = None
        self._unified_trained_on: frozenset[str] = frozenset()
        self._persist_lock = threading.Lock()

    # -- ingestion -----------------------------------------------------------

    def register_vehicle(self, vehicle_id: str) -> None:
        if vehicle_id in self._vehicles:
            raise ValueError(f"Vehicle {vehicle_id!r} already registered.")
        self._vehicles[vehicle_id] = _VehicleState()

    @property
    def vehicle_ids(self) -> list[str]:
        return sorted(self._vehicles)

    def _state(self, vehicle_id: str) -> _VehicleState:
        try:
            return self._vehicles[vehicle_id]
        except KeyError:
            raise KeyError(
                f"Unknown vehicle {vehicle_id!r}; register it first."
            ) from None

    def ingest(self, vehicle_id: str, daily_seconds: float) -> None:
        """Append one day of utilization for a vehicle."""
        if not np.isfinite(daily_seconds) or not 0 <= daily_seconds <= 86_400:
            raise ValueError(
                f"daily_seconds must be in [0, 86400], got {daily_seconds}."
            )
        state = self._state(vehicle_id)
        state.usage.append(float(daily_seconds))
        self._resolve_forecasts(vehicle_id)

    def ingest_series(self, vehicle_id: str, usage) -> None:
        for seconds in np.asarray(usage, dtype=np.float64):
            self.ingest(vehicle_id, float(seconds))

    # -- vehicle views ---------------------------------------------------------

    def series(self, vehicle_id: str) -> VehicleSeries:
        state = self._state(vehicle_id)
        if self.cycle_cache is not None:
            bundle = self.cycle_cache.bundle(
                vehicle_id, state.usage, self.t_v
            )
            return VehicleSeries(
                vehicle_id=vehicle_id,
                usage=bundle.usage,
                t_v=self.t_v,
                _bundle=bundle,
            )
        return VehicleSeries(
            vehicle_id=vehicle_id,
            usage=np.asarray(state.usage, dtype=np.float64),
            t_v=self.t_v,
        )

    def category(self, vehicle_id: str) -> VehicleCategory:
        state = self._state(vehicle_id)
        return categorize_usage(np.asarray(state.usage), self.t_v)

    def _old_vehicles(self, exclude: str | None = None) -> list[VehicleSeries]:
        out = []
        for vehicle_id in self._vehicles:
            if vehicle_id == exclude:
                continue
            if self.category(vehicle_id) is VehicleCategory.OLD:
                out.append(self.series(vehicle_id))
        return out

    # -- model management --------------------------------------------------------

    def _persist(self, key: str, predictor, **metadata) -> None:
        if self.store is not None:
            with self._persist_lock:
                self.store.save(
                    key,
                    predictor,
                    {
                        "algorithm": self.algorithm,
                        "window": self.window,
                        **metadata,
                    },
                )

    def _ensure_vehicle_model(self, vehicle_id: str):
        """Per-vehicle model, retrained when a new cycle has completed."""
        state = self._state(vehicle_id)
        series = self.series(vehicle_id)
        n_cycles = len(series.completed_cycles)
        if state.model is not None and state.model_trained_cycles == n_cycles:
            return state.model
        dataset = build_relational_dataset(series.bundle, self.window)
        if dataset.n_records == 0:
            raise ValueError(
                f"Vehicle {vehicle_id!r} has no labeled records yet."
            )
        predictor = make_predictor(self.algorithm)
        predictor.fit(dataset, usage=series.usage)
        state.model = predictor
        state.model_trained_cycles = n_cycles
        self._persist(
            f"{vehicle_id}.per-vehicle",
            predictor,
            strategy="per-vehicle",
            trained_cycles=n_cycles,
        )
        return predictor

    def _ensure_unified_model(self, exclude: str | None = None):
        """``Model_Uni`` over the current old vehicles' first cycles."""
        donors = self._old_vehicles(exclude=exclude)
        donors = [s for s in donors if s.first_cycle().completed]
        if not donors:
            return None
        donor_ids = frozenset(s.vehicle_id for s in donors)
        if self._unified_model is not None and donor_ids == self._unified_trained_on:
            return self._unified_model
        merged = RelationalDataset.concatenate(
            [first_cycle_dataset(s, self.window) for s in donors]
        )
        predictor = make_predictor(self.algorithm)
        predictor.fit(merged)
        self._unified_model = predictor
        self._unified_trained_on = donor_ids
        self._persist(
            "fleet.unified",
            predictor,
            strategy="unified",
            donors=sorted(donor_ids),
        )
        return predictor

    def _similarity_model(self, vehicle_id: str):
        """``Model_Sim`` for one semi-new vehicle; None without donors."""
        donors = [
            s
            for s in self._old_vehicles(exclude=vehicle_id)
            if s.first_cycle().completed
        ]
        if not donors:
            return None, None
        target = np.asarray(self._state(vehicle_id).usage)
        candidates = {s.vehicle_id: s.usage for s in donors}
        donor_id, _ = most_similar(
            target, candidates, measure=self.similarity_measure
        )
        donor = next(s for s in donors if s.vehicle_id == donor_id)
        predictor = make_predictor(self.algorithm)
        predictor.fit(
            first_cycle_dataset(donor, self.window),
            usage=donor.usage[: donor.first_cycle().end + 1],
        )
        self._persist(
            f"{vehicle_id}.similarity",
            predictor,
            strategy="similarity",
            donor=donor_id,
        )
        return predictor, donor_id

    def _baseline_model(self, vehicle_id: str):
        state = self._state(vehicle_id)
        predictor = BaselinePredictor()
        dummy = RelationalDataset(
            X=np.zeros((0, self.window + 1)),
            y=np.zeros(0),
            t_index=np.zeros(0, dtype=np.intp),
            window=self.window,
        )
        predictor.fit(dummy, usage=np.asarray(state.usage))
        return predictor

    # -- prediction -----------------------------------------------------------

    def _feature_row(self, series: VehicleSeries) -> tuple[np.ndarray, float, int]:
        today = series.n_days - 1
        if today < self.window:
            raise ValueError(
                f"Vehicle {series.vehicle_id!r} has {series.n_days} days; "
                f"window={self.window} needs at least {self.window + 1}."
            )
        usage_left = series.usage_left[today]
        row = np.empty((1, self.window + 1))
        row[0, 0] = usage_left
        for lag in range(1, self.window + 1):
            row[0, lag] = series.usage[today - lag]
        return row, float(usage_left), today

    def predict(self, vehicle_id: str) -> Forecast:
        """Forecast days to next maintenance from the latest ingested day."""
        series = self.series(vehicle_id)
        if series.n_days == 0:
            raise ValueError(f"Vehicle {vehicle_id!r} has no data yet.")
        category = self.category(vehicle_id)
        row, usage_left, today = self._feature_row(series)

        donor_id = None
        if category is VehicleCategory.OLD:
            model = self._ensure_vehicle_model(vehicle_id)
            strategy = "per-vehicle"
        elif category is VehicleCategory.SEMI_NEW:
            model, donor_id = self._similarity_model(vehicle_id)
            strategy = "similarity"
            if model is None:
                model = self._baseline_model(vehicle_id)
                strategy = "baseline"
        else:  # NEW
            model = self._ensure_unified_model(exclude=vehicle_id)
            strategy = "unified"
            if model is None:
                model = self._baseline_model(vehicle_id)
                strategy = "baseline"

        prediction = float(max(model.predict(row)[0], 0.0))
        state = self._state(vehicle_id)
        state.pending.append((today, prediction))
        return Forecast(
            vehicle_id=vehicle_id,
            category=category,
            strategy=strategy,
            days_to_maintenance=prediction,
            usage_left=usage_left,
            as_of_day=today,
            donor_id=donor_id,
        )

    # -- feedback loop -----------------------------------------------------------

    def _resolve_forecasts(self, vehicle_id: str) -> None:
        """Score pending forecasts whose cycle has now completed."""
        if self.monitor is None:
            return
        state = self._state(vehicle_id)
        if not state.pending:
            return
        series = self.series(vehicle_id)
        completed = series.completed_cycles
        if len(completed) <= state.resolved_through_cycle:
            return
        d_true = series.days_to_maintenance
        still_pending = []
        for day, predicted in state.pending:
            truth = d_true[day] if day < d_true.size else np.nan
            if np.isfinite(truth):
                self.monitor.record(vehicle_id, float(truth), predicted)
            else:
                still_pending.append((day, predicted))
        state.pending = still_pending
        state.resolved_through_cycle = len(completed)
