"""Online next-maintenance prediction service.

The deployment the paper describes ("the data owner ... has decided to
put the present application under deployment"): a long-running service
that ingests daily utilization per vehicle, keeps each vehicle's model
fresh, routes every prediction request through the methodology matrix of
Section 4 —

* **old** vehicle -> its per-vehicle model (retrained whenever a new
  maintenance cycle completes);
* **semi-new** -> ``Model_Sim`` trained on the most similar old vehicle
  (falling back to the baseline when the fleet has no old vehicles yet);
* **new** -> ``Model_Uni`` trained on the old vehicles' first cycles —

and resolves past forecasts into the drift monitor once cycles complete
and the ground truth becomes known.
"""

from __future__ import annotations

import threading
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from ..core.categorize import VehicleCategory, categorize_usage
from ..core.coldstart import first_cycle_dataset
from ..core.predictors import BaselinePredictor
from ..core.registry import make_predictor
from ..core.series import VehicleSeries
from ..obs import NULL_STAGE, Observability, tracing
from ..dataprep.transformation import (
    RelationalDataset,
    build_relational_dataset,
)
from ..similarity.measures import most_similar
from .cycle_cache import CycleStateCache
from .kernel_cache import CompiledModelCache
from .monitoring import DriftMonitor
from .persistence import ModelStore
from .reliability import (
    CircuitBreaker,
    FleetHealth,
    IngestionGuard,
    RetryPolicy,
    VehicleHealth,
)

__all__ = ["Forecast", "MaintenancePredictionService"]

#: Section-4 strategy ladder per category: on repeated failures the
#: resilient service steps down rung by rung, ending at the Eq. 5-6
#: baseline (which needs only the vehicle's own usage history).
_STRATEGY_LADDER: dict[VehicleCategory, tuple[str, ...]] = {
    VehicleCategory.OLD: ("per-vehicle", "similarity", "unified"),
    VehicleCategory.SEMI_NEW: ("similarity", "unified"),
    VehicleCategory.NEW: ("unified",),
}


@dataclass(frozen=True)
class Forecast:
    """A served prediction.

    ``degraded`` is ``True`` when the served strategy is not the one the
    Section-4 routing would normally pick — a training/prediction rung
    failed or its circuit breaker was open — and ``fallback_reason``
    then records why, rung by rung.
    """

    vehicle_id: str
    category: VehicleCategory
    strategy: str  # "per-vehicle", "similarity", "unified", "baseline"
    days_to_maintenance: float
    usage_left: float
    as_of_day: int
    donor_id: str | None = None
    degraded: bool = False
    fallback_reason: str | None = None
    model_version: int | None = None  # per-vehicle store version served

    def to_dict(self) -> dict:
        """JSON-ready view; :meth:`from_dict` round-trips it exactly.

        ``category`` is serialized as the :class:`VehicleCategory`
        member *name* (``"SEMI_NEW"``), not its value, so the pair
        survives any future value renames.
        """
        return {
            "vehicle_id": self.vehicle_id,
            "category": self.category.name,
            "strategy": self.strategy,
            "days_to_maintenance": self.days_to_maintenance,
            "usage_left": self.usage_left,
            "as_of_day": self.as_of_day,
            "donor_id": self.donor_id,
            "degraded": self.degraded,
            "fallback_reason": self.fallback_reason,
            "model_version": self.model_version,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Forecast":
        """Rebuild a forecast serialized by :meth:`to_dict`."""
        version = data.get("model_version")
        return cls(
            vehicle_id=data["vehicle_id"],
            category=VehicleCategory[data["category"]],
            strategy=data["strategy"],
            days_to_maintenance=float(data["days_to_maintenance"]),
            usage_left=float(data["usage_left"]),
            as_of_day=int(data["as_of_day"]),
            donor_id=data.get("donor_id"),
            degraded=bool(data.get("degraded", False)),
            fallback_reason=data.get("fallback_reason"),
            model_version=None if version is None else int(version),
        )


class _UsageBuffer:
    """Preallocated append-only utilization buffer for one vehicle.

    Replaces the per-vehicle Python list on the serving hot path:
    readings land in a preallocated float64 ndarray (doubled when
    full), so every consumer that calls ``np.asarray`` on the history
    — series derivation, categorization, similarity targets, feature
    rows — gets a zero-copy view instead of a list conversion.

    Views handed out by ``__array__`` are stable snapshots: appends
    write past the view's end, and a growth reallocation leaves the old
    buffer (and any views onto it) untouched.
    """

    __slots__ = ("_data", "_n")

    def __init__(self, values=()):
        values = np.asarray(values, dtype=np.float64).reshape(-1)
        self._n = values.size
        self._data = np.empty(max(16, self._n), dtype=np.float64)
        self._data[: self._n] = values

    def append(self, value: float) -> None:
        if self._n == self._data.size:
            grown = np.empty(self._data.size * 2, dtype=np.float64)
            grown[: self._n] = self._data[: self._n]
            self._data = grown
        self._data[self._n] = value
        self._n += 1

    def __len__(self) -> int:
        return self._n

    def __iter__(self):
        return iter(self._data[: self._n])

    def __getitem__(self, index):
        return self._data[: self._n][index]

    def __array__(self, dtype=None, copy=None):
        view = self._data[: self._n]
        if dtype is not None and np.dtype(dtype) != view.dtype:
            return view.astype(dtype)
        if copy:
            return view.copy()
        return view


@dataclass
class _VehicleState:
    usage: _UsageBuffer = field(default_factory=_UsageBuffer)
    model: object | None = None
    model_trained_cycles: int = -1
    model_version: int | None = None  # store version of the serving model
    pinned_version: int | None = None  # operator pin; blocks retrain/promote
    sim_model: object | None = None
    sim_key: tuple | None = None  # (donor id, donor cycle count)
    pending: list = field(default_factory=list)  # (day, predicted, strategy)
    resolved_through_cycle: int = 0
    # (id(usage buffer), n_days) -> category memo: the buffer is
    # append-only, so a category computed at a given length never
    # changes; donor scans re-categorize the whole fleet otherwise.
    category_memo: tuple[int, int, VehicleCategory] | None = field(
        default=None, repr=False
    )


#: Audit-trail cap for :attr:`MaintenancePredictionService.lifecycle_log`.
_LIFECYCLE_LOG_LIMIT = 512

#: Valid actions for :meth:`MaintenancePredictionService.apply_lifecycle_event`.
_LIFECYCLE_ACTIONS = ("promote", "rollback", "pin", "unpin")


class MaintenancePredictionService:
    """Stateful fleet prediction service.

    Parameters
    ----------
    t_v:
        Usage budget per maintenance cycle (shared fleet-wide, as in
        the paper).
    window:
        Feature lag window for every model.
    algorithm:
        Registry key for the regression models (default the paper's
        best, RF).
    store:
        Optional :class:`ModelStore`; fitted models are persisted there
        with vehicle/strategy metadata.
    monitor:
        Optional :class:`DriftMonitor` fed with resolved residuals.
    similarity_measure:
        Donor-selection measure for semi-new vehicles.
    cycle_cache:
        ``True`` (or a shared :class:`CycleStateCache`) switches
        :meth:`series` to the incremental cycle-state path: appending a
        day updates ``C``/``L``/``D`` in O(1) instead of re-deriving the
        full history.  Derived series are bit-identical to the default
        from-scratch path (the equivalence suite pins this).
    guard:
        Optional :class:`IngestionGuard`; when set, :meth:`ingest` never
        raises on a dirty reading — each anomaly is rejected, clamped,
        imputed or quarantined per the guard's policy table.  When
        ``None`` (default) invalid readings raise as before.
    breaker:
        Optional :class:`CircuitBreaker` (``True`` for defaults).  When
        set, :meth:`predict` becomes degraded-mode tolerant: a failing
        training/prediction rung steps down the Section-4 ladder to the
        Eq. 5-6 baseline instead of raising, and persistence errors are
        swallowed and counted.  On clean data every forecast stays
        bit-identical to the non-resilient path.
    retry:
        Optional :class:`RetryPolicy` applied around model persistence
        (transient save I/O errors are retried with jittered backoff).
    predictor_factory:
        Override for :func:`~repro.core.registry.make_predictor`
        (the fault-injection harness hooks in here).
    obs:
        Optional :class:`~repro.obs.Observability`; when attached, the
        ingest / feature-build / train / predict stages are profiled
        and ladder fallbacks land as trace span events.  ``None``
        (default) keeps every hook a no-op.
    retrain_on_cycle:
        ``True`` (the historical contract) retrains a vehicle's model
        whenever a new maintenance cycle completes.  ``False`` freezes
        trained champions — the per-vehicle model keeps serving across
        cycle boundaries and is only replaced via
        :meth:`apply_lifecycle_event` (the lifecycle controller's
        evaluation-gated promotion path).
    """

    def __init__(
        self,
        t_v: float,
        window: int = 6,
        algorithm: str = "RF",
        store: ModelStore | None = None,
        monitor: DriftMonitor | None = None,
        similarity_measure="average_usage",
        cycle_cache: CycleStateCache | bool | None = None,
        guard: IngestionGuard | None = None,
        breaker: CircuitBreaker | bool | None = None,
        retry: RetryPolicy | None = None,
        predictor_factory=None,
        obs: Observability | None = None,
        retrain_on_cycle: bool = True,
    ):
        if t_v <= 0:
            raise ValueError(f"t_v must be positive, got {t_v}.")
        if window < 0:
            raise ValueError(f"window must be >= 0, got {window}.")
        self.t_v = float(t_v)
        self.window = window
        self.algorithm = algorithm
        self.store = store
        self.monitor = monitor
        self.similarity_measure = similarity_measure
        if cycle_cache is True:
            cycle_cache = CycleStateCache()
        elif cycle_cache is False:
            cycle_cache = None
        self.cycle_cache: CycleStateCache | None = cycle_cache
        self.guard = guard
        if breaker is True:
            breaker = CircuitBreaker()
        elif breaker is False:
            breaker = None
        self.breaker: CircuitBreaker | None = breaker
        self.retry = retry
        self.obs = obs
        # ``False`` hands model freshness over to the lifecycle
        # subsystem: a trained champion keeps serving across cycle
        # boundaries until an evaluation-gated promotion replaces it.
        self.retrain_on_cycle = retrain_on_cycle
        #: Audit trail of lifecycle decisions (bounded ring, newest last).
        self.lifecycle_log: list[dict] = []
        self._make_predictor = predictor_factory or make_predictor
        # Write-ahead journal (duck-typed: anything with ``append``).
        # ``None`` keeps journaling entirely off the ingest hot path;
        # the recovery manager wires one in after replay completes.
        self.journal = None
        self._journal_depth = 0  # > 0 suppresses journaling (replay)
        self._vehicles: dict[str, _VehicleState] = {}
        self._unified_model = None
        self._unified_trained_on: frozenset[str] = frozenset()
        #: Compiled-kernel cache for the batched predict path, keyed by
        #: serving scope with version-token invalidation.
        self.kernel_cache = CompiledModelCache()
        # Shared fitted Model_Sim per donor: every semi-new vehicle with
        # the same (deterministically trained) donor serves the same
        # predictor object, so the batched path can stack their rows
        # into one kernel call.  Keyed donor_id -> (sim_key, predictor).
        self._sim_donor_models: dict[str, tuple[tuple, object]] = {}
        self._persist_lock = threading.Lock()
        self._fallback_counts: dict[str, Counter] = {}
        self._persist_failures = 0

    # -- journaling ----------------------------------------------------------

    @contextmanager
    def journal_suspended(self):
        """Suppress journaling inside the block (recovery replay, and
        bulk paths that journaled one record for the whole batch)."""
        self._journal_depth += 1
        try:
            yield
        finally:
            self._journal_depth -= 1

    def _journal_append(self, kind: str, **payload) -> int | None:
        """Journal one mutation record; no-op without an active journal.

        The per-reading :meth:`ingest` hot path inlines this check
        instead of calling here — a method call plus kwargs dict per
        reading would cost real throughput when journaling is off.
        """
        if self.journal is None or self._journal_depth:
            return None
        return self.journal.append(kind, **payload)

    # -- ingestion -----------------------------------------------------------

    def register_vehicle(self, vehicle_id: str) -> None:
        # Journal-before-apply: replay re-executes the same call, so a
        # duplicate registration re-raises identically during recovery.
        if self.journal is not None and self._journal_depth == 0:
            self.journal.append("register", v=vehicle_id)
        if vehicle_id in self._vehicles:
            raise ValueError(f"Vehicle {vehicle_id!r} already registered.")
        self._vehicles[vehicle_id] = _VehicleState()

    @property
    def vehicle_ids(self) -> list[str]:
        return sorted(self._vehicles)

    def has_vehicle(self, vehicle_id: str) -> bool:
        """Whether the vehicle is registered (O(1), no state mutation)."""
        return vehicle_id in self._vehicles

    def n_days(self, vehicle_id: str) -> int:
        """Observed days for one vehicle without deriving its series.

        The gateway's admission check calls this per request; unlike
        :meth:`series` it never touches the cycle cache, so it is safe
        from any thread.
        """
        return len(self._state(vehicle_id).usage)

    def _state(self, vehicle_id: str) -> _VehicleState:
        try:
            return self._vehicles[vehicle_id]
        except KeyError:
            raise KeyError(
                f"Unknown vehicle {vehicle_id!r}; register it first."
            ) from None

    def _stage(self, name: str, **fields):
        """Profiling hook for one pipeline stage; no-op without obs."""
        obs = self.obs
        return NULL_STAGE if obs is None else obs.stage(name, **fields)

    def ingest(
        self, vehicle_id: str, daily_seconds: float, *, day: int | None = None
    ) -> None:
        """Append one day of utilization for a vehicle.

        Without a :attr:`guard`, an out-of-range or non-finite reading
        raises ``ValueError`` (the historical contract).  With a guard,
        the reading is screened instead — rejected, clamped, imputed or
        quarantined per policy — and this method never raises on dirty
        data.  ``day`` is the report's day index; providing it enables
        duplicate-day and out-of-order detection.
        """
        with self._stage("ingest", vehicle_id=vehicle_id):
            # Journal-before-apply, inlined (see _journal_append): the
            # journal holds the *requested* reading, pre-guard, so
            # replay routes it through the same screening and lands on
            # the same applied state.
            if self.journal is not None and self._journal_depth == 0:
                if day is None:
                    self.journal.append("ingest", v=vehicle_id, s=daily_seconds)
                else:
                    self.journal.append(
                        "ingest", v=vehicle_id, s=daily_seconds, d=day
                    )
            if self.guard is None:
                if not np.isfinite(daily_seconds) or not 0 <= daily_seconds <= 86_400:
                    raise ValueError(
                        f"daily_seconds must be in [0, 86400], got {daily_seconds}."
                    )
                state = self._state(vehicle_id)
                state.usage.append(float(daily_seconds))
                self._resolve_forecasts(vehicle_id)
                return
            state = self._state(vehicle_id)
            value = self.guard.admit(
                vehicle_id, daily_seconds, day=day, recent=state.usage
            )
            if value is not None:
                state.usage.append(value)
                self._resolve_forecasts(vehicle_id)

    def ingest_series(
        self, vehicle_id: str, usage, *, start_day: int | None = None
    ) -> None:
        """Append many days atomically: validate all, then commit.

        Without a guard, any invalid reading raises *before* a single
        day is appended — a bad element mid-array no longer leaves the
        earlier days behind.  With a guard, every reading is screened
        individually (the guard never raises).  ``start_day`` gives the
        day index of ``usage[0]`` for the guard's ordering checks.
        """
        values = np.asarray(usage, dtype=np.float64)
        self._state(vehicle_id)  # unknown-vehicle check before any mutation
        # One bulk journal record for the whole batch (base64 float64
        # payload, bit-exact); the per-element ingests below run with
        # journaling suspended.
        if start_day is None:
            self._journal_append("series", v=vehicle_id, u=values)
        else:
            self._journal_append("series", v=vehicle_id, u=values, d0=start_day)
        if self.guard is None and values.size:
            valid = np.isfinite(values) & (values >= 0) & (values <= 86_400)
            if not valid.all():
                index = int(np.argmax(~valid))
                raise ValueError(
                    f"ingest_series for {vehicle_id!r} rejected: element "
                    f"{index} ({values[index]}) outside [0, 86400]; "
                    "no days were ingested."
                )
        with self.journal_suspended():
            for offset, seconds in enumerate(values):
                day = None if start_day is None else start_day + offset
                self.ingest(vehicle_id, float(seconds), day=day)

    # -- vehicle views ---------------------------------------------------------

    def series(self, vehicle_id: str) -> VehicleSeries:
        state = self._state(vehicle_id)
        if self.cycle_cache is not None:
            bundle = self.cycle_cache.bundle(
                vehicle_id, state.usage, self.t_v
            )
            return VehicleSeries(
                vehicle_id=vehicle_id,
                usage=bundle.usage,
                t_v=self.t_v,
                _bundle=bundle,
            )
        return VehicleSeries(
            vehicle_id=vehicle_id,
            usage=np.asarray(state.usage, dtype=np.float64),
            t_v=self.t_v,
        )

    def category(self, vehicle_id: str) -> VehicleCategory:
        state = self._state(vehicle_id)
        key = (id(state.usage), len(state.usage))
        memo = state.category_memo
        if memo is not None and memo[:2] == key:
            return memo[2]
        category = categorize_usage(np.asarray(state.usage), self.t_v)
        state.category_memo = (*key, category)
        return category

    def _old_vehicles(self, exclude: str | None = None) -> list[VehicleSeries]:
        out = []
        for vehicle_id in self._vehicles:
            if vehicle_id == exclude:
                continue
            if self.category(vehicle_id) is VehicleCategory.OLD:
                out.append(self.series(vehicle_id))
        return out

    # -- model management --------------------------------------------------------

    def _persist(self, key: str, predictor, **metadata) -> int | None:
        """Best-effort persistence: retried, and in resilient mode a
        persistent failure is swallowed and counted (a prediction should
        never fail because the model could not be *saved*).  Returns the
        stored version number, ``None`` without a store or on a
        swallowed failure."""
        if self.store is None:
            return None

        def _save() -> int:
            with self._persist_lock:
                return self.store.save(
                    key,
                    predictor,
                    {
                        "algorithm": self.algorithm,
                        "window": self.window,
                        **metadata,
                    },
                )

        try:
            if self.retry is not None:
                return self.retry.call(_save)
            return _save()
        except Exception:
            if self.breaker is None:
                raise
            self._persist_failures += 1
            return None

    def _ensure_vehicle_model(self, vehicle_id: str):
        """Per-vehicle model, retrained when a new cycle has completed.

        A pinned vehicle (see :meth:`apply_lifecycle_event`) always
        serves its pinned store version — no retraining, however stale.
        With :attr:`retrain_on_cycle` off, an already-trained champion
        keeps serving across cycle boundaries (lifecycle promotion is
        then the only replacement path).
        """
        state = self._state(vehicle_id)
        if state.pinned_version is not None:
            if (
                state.model is not None
                and state.model_version == state.pinned_version
            ):
                return state.model
            if self.store is None:
                raise ValueError(
                    f"Vehicle {vehicle_id!r} is pinned to version "
                    f"{state.pinned_version} but the service has no store."
                )
            artifact = self.store.load(
                f"{vehicle_id}.per-vehicle", state.pinned_version
            )
            state.model = artifact.predictor
            state.model_version = artifact.version
            state.model_trained_cycles = int(
                artifact.metadata.get("trained_cycles", -1)
            )
            return state.model
        series = self.series(vehicle_id)
        n_cycles = len(series.completed_cycles)
        if (
            state.model is None
            and state.model_version is not None
            and self.store is not None
        ):
            # Checkpoint restore: the state carries a (possibly promoted)
            # version number without its in-memory model.  Reload that
            # exact artifact rather than retraining over the promotion.
            try:
                artifact = self.store.load(
                    f"{vehicle_id}.per-vehicle",
                    state.model_version,
                    quarantine=False,
                )
            except Exception:
                state.model_version = None  # pruned/corrupt: retrain below
            else:
                self.install_model(
                    vehicle_id,
                    artifact.predictor,
                    trained_cycles=int(
                        artifact.metadata.get("trained_cycles", -1)
                    ),
                    version=artifact.version,
                )
        if state.model is not None and (
            not self.retrain_on_cycle
            or state.model_trained_cycles == n_cycles
        ):
            return state.model
        with self._stage("train", strategy="per-vehicle", vehicle_id=vehicle_id):
            dataset = build_relational_dataset(series.bundle, self.window)
            if dataset.n_records == 0:
                raise ValueError(
                    f"Vehicle {vehicle_id!r} has no labeled records yet."
                )
            predictor = self._make_predictor(self.algorithm)
            predictor.fit(dataset, usage=series.usage)
        state.model = predictor
        state.model_trained_cycles = n_cycles
        state.model_version = self._persist(
            f"{vehicle_id}.per-vehicle",
            predictor,
            strategy="per-vehicle",
            trained_cycles=n_cycles,
        )
        return predictor

    def _ensure_unified_model(self, exclude: str | None = None):
        """``Model_Uni`` over the current old vehicles' first cycles."""
        donors = self._old_vehicles(exclude=exclude)
        donors = [s for s in donors if s.first_cycle().completed]
        if not donors:
            return None
        donor_ids = frozenset(s.vehicle_id for s in donors)
        if self._unified_model is not None and donor_ids == self._unified_trained_on:
            return self._unified_model
        with self._stage("train", strategy="unified", donors=len(donors)):
            merged = RelationalDataset.concatenate(
                [first_cycle_dataset(s, self.window) for s in donors]
            )
            predictor = self._make_predictor(self.algorithm)
            predictor.fit(merged)
        self._unified_model = predictor
        self._unified_trained_on = donor_ids
        self._persist(
            "fleet.unified",
            predictor,
            strategy="unified",
            donors=sorted(donor_ids),
        )
        return predictor

    def _similarity_model(self, vehicle_id: str):
        """``Model_Sim`` for one semi-new vehicle; None without donors.

        The fitted donor model is cached on the vehicle's state keyed on
        (donor id, donor cycle count) — like the per-vehicle and unified
        paths — so repeated predictions between donor changes do not
        re-fit (the donor's *first* cycle, the training data, is frozen
        once completed).
        """
        donors = [
            s
            for s in self._old_vehicles(exclude=vehicle_id)
            if s.first_cycle().completed
        ]
        if not donors:
            return None, None
        target = np.asarray(self._state(vehicle_id).usage)
        candidates = {s.vehicle_id: s.usage for s in donors}
        donor_id, _ = most_similar(
            target, candidates, measure=self.similarity_measure
        )
        donor = next(s for s in donors if s.vehicle_id == donor_id)
        state = self._state(vehicle_id)
        cache_key = (donor_id, len(donor.completed_cycles))
        if state.sim_model is not None and state.sim_key == cache_key:
            return state.sim_model, donor_id
        # One fitted model per donor, shared by every target vehicle
        # that routes to it: training is deterministic (fixed seed,
        # donor-only data), so sharing is bit-identical to per-target
        # fits — and a shared object is what lets the batched predict
        # path stack same-donor vehicles into one kernel call.
        shared = self._sim_donor_models.get(donor_id)
        if shared is not None and shared[0] == cache_key:
            predictor = shared[1]
        else:
            with self._stage(
                "train",
                strategy="similarity",
                vehicle_id=vehicle_id,
                donor=donor_id,
            ):
                predictor = self._make_predictor(self.algorithm)
                predictor.fit(
                    first_cycle_dataset(donor, self.window),
                    usage=donor.usage[: donor.first_cycle().end + 1],
                )
            self._sim_donor_models[donor_id] = (cache_key, predictor)
        state.sim_model = predictor
        state.sim_key = cache_key
        self._persist(
            f"{vehicle_id}.similarity",
            predictor,
            strategy="similarity",
            donor=donor_id,
        )
        return predictor, donor_id

    def _baseline_model(self, vehicle_id: str):
        state = self._state(vehicle_id)
        predictor = BaselinePredictor()
        dummy = RelationalDataset(
            X=np.zeros((0, self.window + 1)),
            y=np.zeros(0),
            t_index=np.zeros(0, dtype=np.intp),
            window=self.window,
        )
        predictor.fit(dummy, usage=np.asarray(state.usage))
        return predictor

    # -- model lifecycle -------------------------------------------------------

    def _load_stored_model(self, vehicle_id: str, version: int | None):
        """Tolerant store load for lifecycle installs; ``None`` on any
        failure (journal replay must succeed even when an artifact was
        pruned or the store moved — the vehicle then retrains lazily)."""
        if self.store is None:
            return None
        try:
            artifact = self.store.load(
                f"{vehicle_id}.per-vehicle", version, quarantine=False
            )
        except Exception:
            return None
        return artifact.predictor

    def install_model(
        self,
        vehicle_id: str,
        predictor,
        *,
        trained_cycles: int,
        version: int | None = None,
    ) -> None:
        """Atomically swap a vehicle's serving model.

        Metadata lands first and the ``model`` reference is assigned
        last — a concurrent :meth:`predict` sees either the old
        champion or the fully-described new one, never a half-installed
        model (zero serving interruption).
        """
        state = self._state(vehicle_id)
        state.model_trained_cycles = int(trained_cycles)
        state.model_version = None if version is None else int(version)
        state.model = predictor
        # The old champion's compiled kernel must never serve the new
        # model (identity/version checks would catch it on lookup, but
        # dropping the entry keeps the cache from pinning the old
        # model's flattened tables in memory).
        self.kernel_cache.invalidate(f"{vehicle_id}:per-vehicle")

    def apply_lifecycle_event(
        self,
        action: str,
        vehicle_id: str,
        *,
        version: int | None = None,
        trained_cycles: int | None = None,
        reason: str | None = None,
        predictor=None,
    ) -> dict:
        """Apply one journaled lifecycle decision to the serving state.

        Actions: ``promote`` (install an evaluation-gated challenger as
        the new champion), ``rollback`` / ``pin`` (pin the vehicle to a
        stored version and serve it), ``unpin`` (release the pin; the
        normal freshness rules apply again).  The decision is journaled
        *before* it is applied, so a crash mid-install replays to the
        same state; replay passes no ``predictor`` and reloads the
        artifact from the store (or leaves the model to lazy retrain
        when the artifact is gone).  Returns the audit-log entry.
        """
        if action not in _LIFECYCLE_ACTIONS:
            raise ValueError(
                f"Unknown lifecycle action {action!r}; "
                f"expected one of {_LIFECYCLE_ACTIONS}."
            )
        state = self._state(vehicle_id)
        if action in ("rollback", "pin") and version is None:
            raise ValueError(f"Lifecycle {action} requires a version.")
        if self.journal is not None and self._journal_depth == 0:
            payload = {"a": action, "v": vehicle_id}
            if version is not None:
                payload["ver"] = int(version)
            if trained_cycles is not None:
                payload["c"] = int(trained_cycles)
            if reason is not None:
                payload["r"] = reason
            self.journal.append("lifecycle", **payload)
        if action == "promote":
            state.pinned_version = None
            model = predictor
            if model is None:
                model = self._load_stored_model(vehicle_id, version)
            if model is not None:
                self.install_model(
                    vehicle_id,
                    model,
                    trained_cycles=(
                        -1 if trained_cycles is None else trained_cycles
                    ),
                    version=version,
                )
            else:
                # Replay with the artifact gone: drop to deterministic
                # lazy retraining instead of serving a stale champion.
                state.model = None
                state.model_trained_cycles = -1
                state.model_version = None
        elif action in ("rollback", "pin"):
            state.pinned_version = int(version)
            model = predictor
            if model is None:
                model = self._load_stored_model(vehicle_id, version)
            if model is not None:
                self.install_model(
                    vehicle_id,
                    model,
                    trained_cycles=(
                        -1 if trained_cycles is None else trained_cycles
                    ),
                    version=version,
                )
            else:
                # Pinned but not loadable right now: the next predict
                # resolves the pin through _ensure_vehicle_model (and
                # raises there if the artifact truly is gone).
                state.model = None
                state.model_version = None
        else:  # unpin
            state.pinned_version = None
        event = {
            "action": action,
            "vehicle_id": vehicle_id,
            "version": None if version is None else int(version),
            "reason": reason,
        }
        self.lifecycle_log.append(event)
        if len(self.lifecycle_log) > _LIFECYCLE_LOG_LIMIT:
            del self.lifecycle_log[: -_LIFECYCLE_LOG_LIMIT]
        tracing.add_event(
            "lifecycle",
            action=action,
            vehicle_id=vehicle_id,
            version=version,
            reason=reason,
        )
        return event

    # -- prediction -----------------------------------------------------------

    def _feature_row(self, series: VehicleSeries) -> tuple[np.ndarray, float, int]:
        today = series.n_days - 1
        if today < self.window:
            raise ValueError(
                f"Vehicle {series.vehicle_id!r} has {series.n_days} days; "
                f"window={self.window} needs at least {self.window + 1}."
            )
        usage_left = series.usage_left[today]
        row = np.empty((1, self.window + 1))
        row[0, 0] = usage_left
        if self.window:
            # Lags 1..W are usage[today-1] down to usage[today-W]: one
            # reversed slice instead of a per-lag Python loop.
            row[0, 1:] = series.usage[today - self.window : today][::-1]
        return row, float(usage_left), today

    def _attempt_strategy(self, strategy: str, vehicle_id: str):
        """(model, donor_id) for one ladder rung; model None = no donors."""
        if strategy == "per-vehicle":
            return self._ensure_vehicle_model(vehicle_id), None
        if strategy == "similarity":
            return self._similarity_model(vehicle_id)
        return self._ensure_unified_model(exclude=vehicle_id), None

    def _count_fallback(self, vehicle_id: str, strategy: str) -> None:
        self._fallback_counts.setdefault(vehicle_id, Counter())[strategy] += 1

    def _predict_resilient(
        self, vehicle_id: str, category: VehicleCategory, row: np.ndarray
    ) -> tuple[float, str, str | None, str | None]:
        """Walk the Section-4 ladder under the circuit breaker.

        Returns ``(prediction, strategy, donor_id, fallback_reason)``;
        the reason is ``None`` when the primary routing succeeded (a
        donor-less baseline is normal routing, not degradation).
        """
        reasons: list[str] = []
        for strategy in _STRATEGY_LADDER[category]:
            key = f"{vehicle_id}:{strategy}"
            if not self.breaker.allow(key):
                reasons.append(f"{strategy}: circuit open")
                tracing.add_event(
                    "breaker-open", vehicle_id=vehicle_id, strategy=strategy
                )
                continue
            try:
                model, donor_id = self._attempt_strategy(strategy, vehicle_id)
                if model is None:
                    continue  # no donors available: normal routing
                prediction = float(max(model.predict(row)[0], 0.0))
            except Exception as exc:
                self.breaker.record_failure(key)
                reasons.append(f"{strategy}: {type(exc).__name__}: {exc}")
                tracing.add_event(
                    "rung-failed",
                    vehicle_id=vehicle_id,
                    strategy=strategy,
                    error=f"{type(exc).__name__}: {exc}",
                )
                continue
            self.breaker.record_success(key)
            reason = "; ".join(reasons) or None
            if reasons:
                self._count_fallback(vehicle_id, strategy)
                tracing.add_event(
                    "fallback",
                    vehicle_id=vehicle_id,
                    strategy=strategy,
                    fallback_reason=reason,
                )
            return prediction, strategy, donor_id, reason
        baseline = self._baseline_model(vehicle_id)
        prediction = float(max(baseline.predict(row)[0], 0.0))
        reason = "; ".join(reasons) or None
        if reason is not None:
            self._count_fallback(vehicle_id, "baseline")
            tracing.add_event(
                "fallback",
                vehicle_id=vehicle_id,
                strategy="baseline",
                fallback_reason=reason,
            )
        return prediction, "baseline", None, reason

    def predict(self, vehicle_id: str) -> Forecast:
        """Forecast days to next maintenance from the latest ingested day.

        With a :attr:`breaker`, any failing rung of the Section-4 ladder
        steps down to the next one (ending at the Eq. 5-6 baseline) and
        the forecast is flagged ``degraded`` with the reason; without
        one, a rung failure raises as before.
        """
        # No dedicated span here: the engine's ``engine.predict`` child
        # already times this boundary, and when a span is active in
        # this context (resilient services, direct calls) the stage
        # timer stamps a ``stage_ms:predict`` attribute onto it — a
        # second span per request would only cost hot-path
        # microseconds (the gateway bench holds tracing to < 5%
        # throughput).
        with self._stage("predict", vehicle_id=vehicle_id):
            return self._predict(vehicle_id)

    def _predict(self, vehicle_id: str) -> Forecast:
        series = self.series(vehicle_id)
        if series.n_days == 0:
            raise ValueError(f"Vehicle {vehicle_id!r} has no data yet.")
        category = self.category(vehicle_id)
        with self._stage("feature-build", vehicle_id=vehicle_id):
            row, usage_left, today = self._feature_row(series)

        if self.breaker is not None:
            prediction, strategy, donor_id, reason = self._predict_resilient(
                vehicle_id, category, row
            )
        else:
            donor_id = None
            if category is VehicleCategory.OLD:
                model = self._ensure_vehicle_model(vehicle_id)
                strategy = "per-vehicle"
            elif category is VehicleCategory.SEMI_NEW:
                model, donor_id = self._similarity_model(vehicle_id)
                strategy = "similarity"
                if model is None:
                    model = self._baseline_model(vehicle_id)
                    strategy = "baseline"
            else:  # NEW
                model = self._ensure_unified_model(exclude=vehicle_id)
                strategy = "unified"
                if model is None:
                    model = self._baseline_model(vehicle_id)
                    strategy = "baseline"
            prediction = float(max(model.predict(row)[0], 0.0))
            reason = None

        state = self._state(vehicle_id)
        state.pending.append((today, prediction, strategy))
        return Forecast(
            vehicle_id=vehicle_id,
            category=category,
            strategy=strategy,
            days_to_maintenance=prediction,
            usage_left=usage_left,
            as_of_day=today,
            donor_id=donor_id,
            degraded=reason is not None,
            fallback_reason=reason,
            model_version=(
                state.model_version if strategy == "per-vehicle" else None
            ),
        )

    def predict_batch(self, vehicle_ids: list[str]) -> list[Forecast]:
        """Forecast many vehicles through shared compiled kernels.

        Three phases, bit-identical to calling :meth:`predict` per id:

        1. route every vehicle through the Section-4 matrix exactly as
           the serial path does (same training, same model caches, in
           the given order);
        2. group vehicles by the *model object* they resolved to, fetch
           that model's compiled kernel from :attr:`kernel_cache`, and
           run one stacked kernel call per group (kernels flagged not
           batch-safe — linear matvecs — run row-at-a-time through the
           same kernel; uncompilable models fall back to their own
           trusted ``predict``);
        3. record pending forecasts and build the :class:`Forecast`
           objects in input order.

        Grouping is sound because tree-ensemble kernels are pure
        gathers plus row-separable elementwise aggregation — row ``i``
        of a stacked batch is bitwise the single-row prediction.
        Resilient services (with a circuit breaker) fall back to
        per-vehicle :meth:`predict` so ladder accounting is unchanged.
        """
        ids = list(vehicle_ids)
        if self.breaker is not None:
            return [self.predict(vehicle_id) for vehicle_id in ids]
        with self._stage("predict", vehicles=len(ids)):
            return self._predict_batch(ids)

    def _predict_batch(self, ids: list[str]) -> list[Forecast]:
        # Phase 1: serial Section-4 routing (models trained/cached in
        # input order, exactly like consecutive predict() calls).
        plans = []
        for vehicle_id in ids:
            series = self.series(vehicle_id)
            if series.n_days == 0:
                raise ValueError(f"Vehicle {vehicle_id!r} has no data yet.")
            category = self.category(vehicle_id)
            with self._stage("feature-build", vehicle_id=vehicle_id):
                row, usage_left, today = self._feature_row(series)
            donor_id = None
            scope = None  # (cache scope, version token); None = uncached
            if category is VehicleCategory.OLD:
                model = self._ensure_vehicle_model(vehicle_id)
                strategy = "per-vehicle"
                scope = (
                    f"{vehicle_id}:per-vehicle",
                    self._state(vehicle_id).model_version,
                )
            elif category is VehicleCategory.SEMI_NEW:
                model, donor_id = self._similarity_model(vehicle_id)
                strategy = "similarity"
                if model is None:
                    model = self._baseline_model(vehicle_id)
                    strategy = "baseline"
                else:
                    scope = (
                        f"sim:{donor_id}",
                        self._state(vehicle_id).sim_key,
                    )
            else:  # NEW
                model = self._ensure_unified_model(exclude=vehicle_id)
                strategy = "unified"
                if model is None:
                    model = self._baseline_model(vehicle_id)
                    strategy = "baseline"
                else:
                    scope = ("fleet:unified", self._unified_trained_on)
            plans.append(
                (vehicle_id, row, usage_left, today, category, model,
                 strategy, donor_id, scope)
            )

        # Phase 2: one kernel call per shared model identity.
        predictions: list[float | None] = [None] * len(plans)
        groups: dict[int, list[int]] = {}
        for index, plan in enumerate(plans):
            groups.setdefault(id(plan[5]), []).append(index)
        for indices in groups.values():
            model = plans[indices[0]][5]
            scope = plans[indices[0]][8]
            compiled = (
                self.kernel_cache.get(scope[0], model, scope[1])
                if scope is not None
                else None
            )
            if compiled is not None and compiled.batch_safe and len(indices) > 1:
                X = np.concatenate([plans[i][1] for i in indices], axis=0)
                out = compiled.predict(X)
                self.kernel_cache.record_batch(len(indices))
                for position, i in enumerate(indices):
                    predictions[i] = float(max(out[position], 0.0))
            elif compiled is not None:
                # Not batch-safe (linear matvec) or a single row: the
                # compiled kernel still skips per-call validation.
                for i in indices:
                    out = compiled.predict(plans[i][1])
                    self.kernel_cache.record_batch(1)
                    predictions[i] = float(max(out[0], 0.0))
            else:
                trusted = getattr(model, "trusted_predict", False)
                for i in indices:
                    row = plans[i][1]
                    out = (
                        model.predict(row, validate=False)
                        if trusted
                        else model.predict(row)
                    )
                    predictions[i] = float(max(out[0], 0.0))

        # Phase 3: bookkeeping and Forecast construction, input order.
        forecasts = []
        for plan, prediction in zip(plans, predictions):
            vehicle_id, _, usage_left, today, category = plan[:5]
            strategy, donor_id = plan[6], plan[7]
            state = self._state(vehicle_id)
            state.pending.append((today, prediction, strategy))
            forecasts.append(
                Forecast(
                    vehicle_id=vehicle_id,
                    category=category,
                    strategy=strategy,
                    days_to_maintenance=prediction,
                    usage_left=usage_left,
                    as_of_day=today,
                    donor_id=donor_id,
                    degraded=False,
                    fallback_reason=None,
                    model_version=(
                        state.model_version
                        if strategy == "per-vehicle"
                        else None
                    ),
                )
            )
        return forecasts

    # -- health ----------------------------------------------------------------

    def health(self) -> FleetHealth:
        """Aggregated resilience report: guard, fallback and breaker
        counters per vehicle, plus persistence failures."""
        ids = set(self._vehicles)
        if self.guard is not None:
            ids.update(self.guard.vehicle_ids)
        breaker_by_vehicle: dict[str, dict] = {}
        if self.breaker is not None:
            for key, state in self.breaker.snapshot().items():
                vid, _, strategy = key.rpartition(":")
                breaker_by_vehicle.setdefault(vid, {})[strategy] = state
        guard = self.guard
        vehicles = {
            vid: VehicleHealth(
                vehicle_id=vid,
                accepted=guard.accepted_count(vid) if guard else 0,
                anomalies=guard.anomaly_counts(vid) if guard else {},
                policies=guard.policy_counts(vid) if guard else {},
                quarantined=len(guard.dead_letters(vid)) if guard else 0,
                fallbacks=dict(self._fallback_counts.get(vid, {})),
                breaker=breaker_by_vehicle.get(vid, {}),
            )
            for vid in sorted(ids)
        }
        return FleetHealth(
            vehicles=vehicles,
            persist_failures=self._persist_failures,
            dead_letter_overflow=guard.overflow_count() if guard else 0,
        )

    # -- checkpoint state ------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-ready snapshot of everything a restart cannot re-derive.

        Covered: usage histories, pending forecasts, guard counters and
        dead letters, breaker states, drift residuals, fallback and
        persistence counters, plus the configuration fingerprint that
        :meth:`load_state_dict` validates.  Models are deliberately
        *not* snapshotted — they retrain deterministically from the
        usage histories (the equivalence suite pins this); the latest
        persisted version per store key is recorded informationally.
        """
        vehicles = {}
        for vid in sorted(self._vehicles):
            state = self._vehicles[vid]
            vehicles[vid] = {
                "usage": [float(x) for x in state.usage],
                "pending": [
                    [int(day), float(predicted), strategy]
                    for day, predicted, strategy in state.pending
                ],
                "resolved_through_cycle": state.resolved_through_cycle,
                "model_version": state.model_version,
                "pinned_version": state.pinned_version,
            }
        snapshot = {
            "schema": 1,
            "config": {
                "t_v": self.t_v,
                "window": self.window,
                "algorithm": self.algorithm,
            },
            "vehicles": vehicles,
            "fallback_counts": {
                vid: dict(counts)
                for vid, counts in sorted(self._fallback_counts.items())
            },
            "persist_failures": self._persist_failures,
            "guard": self.guard.state_dict() if self.guard else None,
            "breaker": self.breaker.state_dict() if self.breaker else None,
            "monitor": self.monitor.state_dict() if self.monitor else None,
            "lifecycle_log": [dict(event) for event in self.lifecycle_log],
        }
        if self.store is not None:
            snapshot["model_versions"] = {
                key: versions[-1]
                for key in self.store.keys()
                if (versions := self.store.versions(key))
            }
        return snapshot

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot into this service.

        Raises ``ValueError`` when the snapshot's configuration
        fingerprint does not match this service, or when component
        presence (guard/breaker/monitor) diverges — recovering counters
        into a differently-shaped service would silently mis-route.
        Models are left to retrain lazily; caches are invalidated.
        """
        if not isinstance(state, dict) or state.get("schema") != 1:
            raise ValueError(
                f"Unsupported service state schema: "
                f"{state.get('schema') if isinstance(state, dict) else state!r}."
            )
        config = state.get("config")
        if not isinstance(config, dict):
            raise ValueError("Service state has no config fingerprint.")
        fingerprint = (
            float(config.get("t_v", float("nan"))),
            int(config.get("window", -1)),
            config.get("algorithm"),
        )
        if fingerprint != (self.t_v, self.window, self.algorithm):
            raise ValueError(
                f"Config fingerprint mismatch: snapshot {fingerprint}, "
                f"service {(self.t_v, self.window, self.algorithm)}."
            )
        for name, component in (
            ("guard", self.guard),
            ("breaker", self.breaker),
            ("monitor", self.monitor),
        ):
            if (state.get(name) is not None) != (component is not None):
                have = "with" if component is not None else "without"
                raise ValueError(
                    f"Snapshot {'has' if state.get(name) else 'lacks'} "
                    f"{name} state but this service runs {have} one."
                )
        self._vehicles = {
            vid: _VehicleState(
                usage=_UsageBuffer(snap["usage"]),
                pending=[
                    (int(day), float(predicted), str(strategy))
                    for day, predicted, strategy in snap.get("pending", [])
                ],
                resolved_through_cycle=int(
                    snap.get("resolved_through_cycle", 0)
                ),
                model_version=(
                    None
                    if snap.get("model_version") is None
                    else int(snap["model_version"])
                ),
                pinned_version=(
                    None
                    if snap.get("pinned_version") is None
                    else int(snap["pinned_version"])
                ),
            )
            for vid, snap in state.get("vehicles", {}).items()
        }
        self.lifecycle_log = [
            dict(event) for event in state.get("lifecycle_log", [])
        ]
        self._fallback_counts = {
            vid: Counter({k: int(n) for k, n in counts.items()})
            for vid, counts in state.get("fallback_counts", {}).items()
        }
        self._persist_failures = int(state.get("persist_failures", 0))
        if self.guard is not None:
            self.guard.load_state_dict(state["guard"])
        if self.breaker is not None:
            self.breaker.load_state_dict(state["breaker"])
        if self.monitor is not None:
            self.monitor.load_state_dict(state["monitor"])
        self._unified_model = None
        self._unified_trained_on = frozenset()
        self._sim_donor_models.clear()
        # Restored states may pin different model versions than the
        # ones that were serving: every compiled kernel is stale.
        self.kernel_cache.invalidate()
        if self.cycle_cache is not None:
            self.cycle_cache.invalidate()

    # -- feedback loop -----------------------------------------------------------

    def _resolve_forecasts(self, vehicle_id: str) -> None:
        """Score pending forecasts whose cycle has now completed."""
        if self.monitor is None:
            return
        state = self._state(vehicle_id)
        if not state.pending:
            return
        series = self.series(vehicle_id)
        completed = series.completed_cycles
        if len(completed) <= state.resolved_through_cycle:
            return
        d_true = series.days_to_maintenance
        still_pending = []
        for day, predicted, strategy in state.pending:
            truth = d_true[day] if day < d_true.size else np.nan
            if np.isfinite(truth):
                self.monitor.record(
                    vehicle_id, float(truth), predicted, strategy=strategy
                )
            else:
                still_pending.append((day, predicted, strategy))
        state.pending = still_pending
        state.resolved_through_cycle = len(completed)
