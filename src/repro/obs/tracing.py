"""Structured request tracing for the serving stack.

One trace per gateway request: the HTTP handler opens a *root span*
keyed by the request id, and every layer underneath — the micro-batch
dispatcher, :meth:`FleetEngine.predict_many`, the Section-4 strategy
ladder, :class:`ModelStore` reads — attaches child spans and events to
whatever span is *active* in the current :mod:`contextvars` context.

The design goal is that instrumentation sites cost nothing when no
trace is active: :func:`span` and :func:`add_event` first read the
context variable, and when it is ``None`` (tracing disabled, or the
call is not under a traced request) they return immediately without
allocating a span.  Forecast values are never touched — tracing only
*records* — so forecasts are bit-identical with tracing on or off (the
gateway bench enforces this).

Propagation rules:

* within one task/thread, ``with span(...)`` nests naturally;
* into the gateway's engine worker thread, the gateway copies the
  caller's context (``contextvars.copy_context``);
* across the micro-batch queue — where one ``predict_many`` call
  serves several requests with *different* traces — the gateway
  carries each request's span object explicitly; the engine's worker
  threads capture plain timestamps and the dispatching thread records
  each request's ``engine.predict`` child via
  :meth:`Tracer.record_span` (resilient services instead
  :func:`activate` the span inside the worker so ladder events attach
  live).

Completed traces are held in a bounded ring (oldest evicted) and served
by ``GET /v1/trace/{request_id}``.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from contextvars import ContextVar

__all__ = [
    "Span",
    "Tracer",
    "current_span",
    "add_event",
    "activate",
    "child_span",
    "span",
]

_ACTIVE: ContextVar["Span | None"] = ContextVar(
    "repro_active_span", default=None
)


def current_span() -> "Span | None":
    """The span active in this context, or ``None`` (the no-op state)."""
    return _ACTIVE.get()


def add_event(name: str, **attributes) -> None:
    """Record an event on the active span; free no-op without one."""
    active = _ACTIVE.get()
    if active is not None:
        active.event(name, **attributes)


class activate:
    """Make ``target`` the active span in this context.

    The engine uses this to re-establish a request's trace inside a
    worker thread where the gateway's context did not propagate (each
    request of a micro-batch carries its own span object).

    A ``__slots__`` context-manager class, not a generator: this sits
    on the per-prediction hot path and the generator protocol costs
    roughly a microsecond per use.
    """

    __slots__ = ("target", "_token")

    def __init__(self, target: "Span | None"):
        self.target = target

    def __enter__(self) -> "Span | None":
        if self.target is None:
            self._token = None
            return None
        self._token = _ACTIVE.set(self.target)
        return self.target

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._token is not None:
            _ACTIVE.reset(self._token)
        return False


class child_span:
    """Open a child of an *explicit* parent and make it active.

    The micro-batch hop: one ``predict_many`` call serves requests
    with different traces, so the engine cannot rely on its calling
    context — each request's root span travels explicitly and this
    creates and activates the child in one step (a single ContextVar
    write instead of an :class:`activate` + :class:`span` pair).  A
    ``None`` parent makes the whole thing a no-op.
    """

    __slots__ = ("parent", "name", "attributes", "_child", "_token")

    def __init__(self, parent: "Span | None", name: str, **attributes):
        self.parent = parent
        self.name = name
        self.attributes = attributes

    def __enter__(self) -> "Span | None":
        parent = self.parent
        if parent is None:
            self._child = None
            return None
        child = parent.tracer._start_span(self.name, parent, self.attributes)
        self._child = child
        self._token = _ACTIVE.set(child)
        return child

    def __exit__(self, exc_type, exc, tb) -> bool:
        child = self._child
        if child is None:
            return False
        _ACTIVE.reset(self._token)
        if exc_type is not None:
            child.finish(f"error: {exc_type.__name__}")
        elif child.end_s is None:
            child.finish("ok")
        return False


class span:
    """Open a child span of the active one; free no-op without a parent.

    Instrumentation sites call this unconditionally — when the current
    context carries no trace (tracing disabled, in-process use, a
    background task) the body runs untouched and nothing is recorded.
    An exception escaping the body marks the span's status with the
    exception type and re-raises.
    """

    __slots__ = ("name", "attributes", "_child", "_token")

    def __init__(self, name: str, **attributes):
        self.name = name
        self.attributes = attributes

    def __enter__(self) -> "Span | None":
        parent = _ACTIVE.get()
        if parent is None:
            self._child = None
            return None
        child = parent.tracer._start_span(self.name, parent, self.attributes)
        self._child = child
        self._token = _ACTIVE.set(child)
        return child

    def __exit__(self, exc_type, exc, tb) -> bool:
        child = self._child
        if child is None:
            return False
        _ACTIVE.reset(self._token)
        if exc_type is not None:
            child.finish(f"error: {exc_type.__name__}")
        elif child.end_s is None:
            child.finish("ok")
        return False


class Span:
    """One timed operation within a request trace.

    The hot path (creation, events, :meth:`finish`) takes no locks:
    events are stored as raw ``(name, perf_counter, attributes)``
    tuples and :meth:`finish` renders the span into a *plain tuple*
    appended to its trace's sink list (``list.append`` is atomic under
    the GIL).  Tuples, not Span objects, for two reasons: the ring
    holds hundreds of completed traces, and tuples of atomic values
    are untracked by the cyclic garbage collector after one young-
    generation scan — keeping live Span objects in the ring made GC
    traversal the single largest tracing cost at gateway rates.  All
    JSON shaping is deferred to export time.
    """

    __slots__ = (
        "tracer",
        "request_id",
        "span_id",
        "parent_id",
        "name",
        "attributes",
        "events",
        "start_s",
        "end_s",
        "status",
        "_sink",
    )

    def __init__(
        self,
        tracer: "Tracer",
        request_id: str,
        span_id: int,
        parent_id: int | None,
        name: str,
        attributes: dict,
        sink: list,
    ):
        self.tracer = tracer
        self.request_id = request_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attributes = attributes
        self.events: list[tuple] | None = None
        self.start_s = time.perf_counter()
        self.end_s: float | None = None
        self.status = "in-progress"
        self._sink = sink

    def event(self, name: str, **attributes) -> None:
        if self.events is None:
            self.events = []
        self.events.append((name, time.perf_counter(), attributes))

    def set_attribute(self, key: str, value) -> None:
        self.attributes[key] = value

    def finish(self, status: str = "ok") -> None:
        """Close the span and export it to its trace (idempotent)."""
        if self.end_s is not None:
            return
        self.end_s = end = time.perf_counter()
        self.status = status
        sink = self._sink
        self._sink = None
        sink.append(
            (
                self.span_id,
                self.parent_id,
                self.name,
                self.start_s,
                end,
                status,
                self.attributes,
                tuple(self.events) if self.events else (),
            )
        )


def _render_span(record: tuple) -> dict:
    span_id, parent_id, name, start_s, end_s, status, attrs, events = record
    return {
        "span_id": span_id,
        "parent_id": parent_id,
        "name": name,
        "start_ms": round(start_s * 1e3, 3),
        "duration_ms": round((end_s - start_s) * 1e3, 3),
        "status": status,
        "attributes": attrs,
        "events": [
            {
                "name": event_name,
                "offset_ms": round((at - start_s) * 1e3, 3),
                "attributes": attributes,
            }
            for event_name, at, attributes in events
        ],
    }


class Tracer:
    """Bounded in-memory trace store keyed by request id.

    ``capacity`` bounds the number of *traces* held (oldest evicted);
    counters for started traces / recorded spans / evictions feed the
    consolidated metrics snapshot via :meth:`stats`.
    """

    def __init__(self, capacity: int = 512, *, enabled: bool = True):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}.")
        self.capacity = capacity
        self.enabled = enabled
        self._lock = threading.Lock()
        self._traces: OrderedDict[str, list[tuple]] = OrderedDict()
        # itertools.count() advances atomically under the GIL, so span
        # creation allocates its id without touching the tracer lock.
        self._next_span_id = itertools.count(1)
        self.traces_started = 0
        self.traces_evicted = 0
        self._spans_evicted = 0

    # -- span lifecycle ----------------------------------------------------

    def start_trace(self, request_id: str, name: str, **attributes) -> Span | None:
        """Open the root span of a new trace; ``None`` when disabled.

        A repeated ``request_id`` replaces the earlier trace — request
        ids identify requests, and a client re-sending one gets the
        fresh recording.  This is the only locking step of a trace's
        hot path; child spans and finishes are lock-free.
        """
        if not self.enabled:
            return None
        sink: list[tuple] = []
        with self._lock:
            self.traces_started += 1
            replaced = self._traces.pop(request_id, None)
            if replaced is not None:
                self._spans_evicted += len(replaced)
            while len(self._traces) >= self.capacity:
                _, evicted = self._traces.popitem(last=False)
                self._spans_evicted += len(evicted)
                self.traces_evicted += 1
            self._traces[request_id] = sink
        return Span(
            self, request_id, next(self._next_span_id), None, name,
            attributes, sink,
        )

    def record_span(
        self,
        name: str,
        parent: Span,
        start_s: float,
        end_s: float,
        status: str = "ok",
        **attributes,
    ) -> None:
        """Record an already-completed span from explicit timestamps.

        The engine's batched hot path uses this: worker threads capture
        plain ``perf_counter`` pairs (touching a shared span object
        from several threads costs an order of magnitude more than the
        span machinery itself), and the dispatcher thread materialises
        the spans afterwards in one tight loop — as finished-span
        tuples directly, no intermediate Span object.
        """
        sink = parent._sink
        if sink is None:
            with self._lock:
                sink = self._traces.get(parent.request_id)
            if sink is None:
                return
        sink.append(
            (
                next(self._next_span_id),
                parent.span_id,
                name,
                start_s,
                end_s,
                status,
                attributes,
                (),
            )
        )

    def _start_span(self, name: str, parent: Span, attributes: dict) -> Span:
        # Children share the parent's sink: a span finished after its
        # trace was evicted appends to an orphaned list and vanishes
        # with it, exactly like the trace it belonged to.
        sink = parent._sink
        if sink is None:
            # The parent already finished and unlinked its sink (a late
            # child); re-attach via the ring, or record nowhere if the
            # trace has been evicted meanwhile.
            with self._lock:
                sink = self._traces.get(parent.request_id)
            if sink is None:
                sink = []
        return Span(
            self, parent.request_id, next(self._next_span_id),
            parent.span_id, name, attributes, sink,
        )

    # -- export ------------------------------------------------------------

    def export(self, request_id: str) -> dict | None:
        """JSON-ready trace for one request id, or ``None`` if unknown.

        Spans are sorted by span id (creation order), root first; the
        dict shaping deferred by the spans happens here.
        """
        with self._lock:
            sink = self._traces.get(request_id)
            if sink is None:
                return None
            spans = list(sink)
        spans.sort(key=lambda record: record[0])
        return {
            "request_id": request_id,
            "spans": [_render_span(record) for record in spans],
        }

    def request_ids(self) -> list[str]:
        with self._lock:
            return list(self._traces)

    def stats(self) -> dict:
        with self._lock:
            held_spans = sum(len(sink) for sink in self._traces.values())
            return {
                "enabled": self.enabled,
                "capacity": self.capacity,
                "traces_held": len(self._traces),
                "traces_started": self.traces_started,
                "traces_evicted": self.traces_evicted,
                "spans_recorded": self._spans_evicted + held_spans,
            }
