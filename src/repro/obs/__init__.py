"""Unified observability for the serving stack (``repro.obs``).

One stdlib-only subsystem replacing the four disconnected telemetry
surfaces the repo grew across PRs 1–3:

* :class:`~repro.obs.metrics.MetricsRegistry` — thread-safe counters,
  gauges and histograms (with the exact-quantile summary formerly
  private to the gateway), plus collector hooks through which fleet
  health, drift and cache statistics join the consolidated
  ``/v1/metrics`` snapshot;
* :class:`~repro.obs.tracing.Tracer` — per-request structured trace
  spans propagated from the gateway's HTTP handler through the
  micro-batch dispatcher, ``FleetEngine.predict_many``, the Section-4
  strategy ladder and ``ModelStore`` reads, served by
  ``GET /v1/trace/{request_id}``;
* :class:`~repro.obs.events.EventLog` — a bounded ring of structured
  records exported as JSON lines (``repro obs`` CLI subcommand);
* :class:`Observability` — the facade bundling the three, with
  :meth:`Observability.stage` as the per-stage profiling hook
  (ingest / feature-build / train / predict).

Everything no-ops cheaply when not attached: services take
``obs=None`` by default and tracing hooks return immediately without
an active span.  The gateway head-samples anonymous traffic (1-in-N;
client-identified requests always traced) and the gateway bench pins
the overhead of that default at under 5 % of throughput, with
forecasts bit-identical whether tracing records or not.
"""

from __future__ import annotations

import time

from . import tracing
from .events import EventLog
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, percentile
from .tracing import Span, Tracer, activate, add_event, current_span, span

__all__ = [
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_STAGE",
    "Observability",
    "Span",
    "Tracer",
    "activate",
    "add_event",
    "current_span",
    "percentile",
    "span",
    "tracing",
]

#: Histogram name under which stage durations land in the registry
#: (labelled by stage, e.g. ``stage_seconds{stage=train}``).
STAGE_HISTOGRAM = "stage_seconds"


class _NullStage:
    """Do-nothing stage timer for the ``obs is None`` fast path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


#: Shared no-op stage: ``with (obs.stage(...) if obs else NULL_STAGE):``
NULL_STAGE = _NullStage()


class _StageTimer:
    """Times one pipeline stage; records on exit.

    On exit it (1) records the duration into the registry's
    ``stage_seconds{stage=...}`` histogram, (2) emits one ``stage``
    record to the event log, and (3) stamps a ``stage_ms:<name>``
    attribute onto the active trace span, if any.  An attribute, not a
    span event: stage timers sit on the per-prediction hot path, and a
    dict store is several times cheaper than allocating an event
    record (the gateway bench holds tracing to < 5% throughput).
    """

    __slots__ = ("_obs", "_name", "_fields", "_t0")

    def __init__(self, obs: "Observability", name: str, fields: dict):
        self._obs = obs
        self._name = name
        self._fields = fields

    def __enter__(self):
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        elapsed = time.perf_counter() - self._t0
        obs = self._obs
        ms = round(elapsed * 1e3, 3)
        obs.registry.histogram(STAGE_HISTOGRAM, stage=self._name).record(
            elapsed
        )
        obs.events.emit("stage", stage=self._name, ms=ms, **self._fields)
        span = tracing.current_span()
        if span is not None:
            span.set_attribute(f"stage_ms:{self._name}", ms)
        return False


class Observability:
    """Facade bundling the metrics registry, tracer and event log.

    One instance is shared by a gateway, its engine and the service
    underneath, so every layer writes into the same registry and the
    same trace store.  ``profile=False`` turns the per-stage profiling
    hooks into no-ops while leaving metrics and tracing on.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        events: EventLog | None = None,
        *,
        profile: bool = True,
    ):
        self.registry = registry or MetricsRegistry()
        self.tracer = tracer or Tracer()
        self.events = events or EventLog()
        self.profile = profile
        self.registry.register_collector(
            "tracing", self.tracer.stats, replace=True
        )
        self.registry.register_collector(
            "events", self.events.stats, replace=True
        )

    def stage(self, name: str, **fields):
        """Context manager timing one pipeline stage.

        The canonical stages are ``ingest``, ``feature-build``,
        ``train`` and ``predict``; extra keyword fields (vehicle id,
        batch size) are carried on the event-log record only, not as
        histogram labels.
        """
        if not self.profile:
            return NULL_STAGE
        return _StageTimer(self, name, fields)

    def stage_summaries(self) -> dict[str, dict]:
        """Per-stage duration summaries from the registry histograms."""
        return {
            labels["stage"]: histogram.summary()
            for labels, histogram in self.registry.labeled(STAGE_HISTOGRAM)
            if "stage" in labels
        }
