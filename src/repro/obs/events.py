"""Ring-buffer event log with a JSON-lines export.

Per-stage profiling hooks (ingest / feature-build / train / predict)
and other operational breadcrumbs land here as structured records.  The
buffer is bounded — a long-running service never grows it past
``capacity`` records; the sequence number keeps counting, so consumers
can tell exactly how many records were dropped.

Each record renders as one JSON line (``{"seq": ..., "ts": ...,
"kind": ..., ...fields}``) — the format the ``repro obs`` CLI
subcommand emits and the golden-schema suite pins, so downstream
dashboards can tail it without a parser of their own.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque

__all__ = ["EventLog"]


class EventLog:
    """Thread-safe bounded log of structured events.

    Parameters
    ----------
    capacity:
        Maximum records retained (oldest dropped first).
    clock:
        Injectable wall-clock (tests pass a deterministic one); the
        default is :func:`time.time`.
    """

    def __init__(self, capacity: int = 4096, *, clock=time.time):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}.")
        self.capacity = capacity
        self._clock = clock
        self._lock = threading.Lock()
        self._records: deque[dict] = deque(maxlen=capacity)
        self._seq = 0

    def emit(self, kind: str, **fields) -> dict:
        """Append one record; returns it (with ``seq``/``ts`` filled in).

        ``seq`` and ``ts`` always lead the record, then ``kind``, then
        the caller's fields in keyword order — JSON object order is
        insertion order, so every line starts ``{"seq": ...``.
        """
        with self._lock:
            self._seq += 1
            record = {
                "seq": self._seq,
                "ts": round(float(self._clock()), 6),
                "kind": kind,
                **fields,
            }
            self._records.append(record)
        return record

    def tail(self, n: int | None = None) -> list[dict]:
        """The most recent ``n`` records (all when ``None``), oldest first."""
        with self._lock:
            records = list(self._records)
        if n is None or n >= len(records):
            return records
        if n <= 0:
            return []
        return records[-n:]

    def to_jsonl(self, n: int | None = None) -> str:
        """The retained records as JSON lines (one compact object each)."""
        return "\n".join(
            json.dumps(record, separators=(",", ":"))
            for record in self.tail(n)
        )

    def stats(self) -> dict:
        with self._lock:
            held = len(self._records)
            return {
                "capacity": self.capacity,
                "emitted": self._seq,
                "held": held,
                "dropped": self._seq - held,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)
