"""Thread-safe metrics primitives shared across the serving stack.

Before this module existed the repo had four disconnected telemetry
surfaces (gateway counters, fleet-health counters, drift alerts,
experiment timings), each with its own ad-hoc storage and no
thread-safety story.  :class:`MetricsRegistry` is the single
instrumentation layer they are rewired onto:

* **counters** — monotonically increasing integers (requests served,
  readings rejected, residuals resolved);
* **gauges** — last-value or high-water-mark numbers (queue depth);
* **histograms** — streaming summaries with exact count/mean/max and
  percentile estimates from a bounded reservoir (latency, batch sizes,
  per-stage durations).

Every metric is identified by a name plus an optional label set
(``registry.counter("gateway.requests", endpoint="predict")``), and all
mutation and snapshotting happens under one registry-wide re-entrant
lock, so a :meth:`MetricsRegistry.snapshot` taken mid-storm is a
consistent point-in-time view — a counter can never appear to lose an
increment, and a high-water gauge can never read below a depth that was
recorded before the snapshot began.

Subsystems that keep their own state (fleet health, drift monitor,
cycle cache) plug in as *collectors*: callables invoked at snapshot
time whose dict result appears as a named section of the snapshot.
Stdlib-only; no numpy.
"""

from __future__ import annotations

import threading
from collections import deque

__all__ = [
    "percentile",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Snapshot keys reserved for the registry's own metric kinds —
#: collectors may not shadow them.
_RESERVED_SECTIONS = ("counters", "gauges", "histograms")


def percentile(ordered: list[float], q: float) -> float:
    """Exact nearest-rank percentile of an ascending-sorted sample.

    This is the estimator the gateway has always served (previously the
    private ``gateway._percentile``): index ``round(q*n + 0.5) - 1``
    clamped into the sample, i.e. nearest-rank with Python's
    round-half-even tie handling.  The result is always an element of
    ``ordered``, so it is bounded by ``min``/``max`` and monotone in
    ``q`` (the property suite pins both).

    Raises ``ValueError`` on an empty sample — there is no percentile
    of nothing (callers with a zero count short-circuit before here).
    """
    if not ordered:
        raise ValueError("percentile() of an empty sample")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}.")
    index = max(0, min(len(ordered) - 1, int(round(q * len(ordered) + 0.5)) - 1))
    return ordered[index]


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.RLock | None = None):
        self._lock = lock or threading.RLock()
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"Counters only go up; got increment {n}.")
        with self._lock:
            self.value += n


class Gauge:
    """A point-in-time number; supports plain set and high-water max."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.RLock | None = None):
        self._lock = lock or threading.RLock()
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def update_max(self, value: float) -> None:
        """Raise the gauge to ``value`` if it is a new high-water mark.

        The compare-and-set runs under the lock, so concurrent callers
        can never regress the mark (the race the old event-loop-only
        ``GatewayMetrics.note_queue_depth`` had when called off-loop).
        """
        with self._lock:
            if value > self.value:
                self.value = value


class Histogram:
    """Streaming summary: exact count/mean/max, percentile estimates
    from a bounded reservoir of the most recent samples.

    The summary shape (``count``/``mean``/``max``/``p50``/``p95``/
    ``p99``) is what ``/v1/metrics`` has always served for latency and
    batch-size distributions.
    """

    __slots__ = ("_lock", "count", "total", "peak", "_samples")

    def __init__(
        self,
        sample_cap: int = 8192,
        lock: threading.RLock | None = None,
    ):
        if sample_cap < 1:
            raise ValueError(f"sample_cap must be >= 1, got {sample_cap}.")
        self._lock = lock or threading.RLock()
        self.count = 0
        self.total = 0.0
        self.peak = 0.0
        self._samples: deque[float] = deque(maxlen=sample_cap)

    def record(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value > self.peak:
                self.peak = value
            self._samples.append(value)

    def summary(self) -> dict:
        with self._lock:
            if not self.count:
                return {"count": 0}
            ordered = sorted(self._samples)
            return {
                "count": self.count,
                "mean": self.total / self.count,
                "max": self.peak,
                "p50": percentile(ordered, 0.50),
                "p95": percentile(ordered, 0.95),
                "p99": percentile(ordered, 0.99),
            }


def _labels_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


def _render_name(name: str, key: tuple) -> str:
    if not key:
        return name
    inner = ",".join(f"{k}={v}" for k, v in key)
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """The consolidated, thread-safe metrics surface.

    Metric handles are created on demand and cached by (name, labels);
    repeated lookups return the same object, so hot paths can either
    hold the handle or re-resolve it — both are safe from any thread.
    All metrics share the registry's single re-entrant lock, which also
    guards :meth:`snapshot`, making snapshots internally consistent.
    """

    def __init__(self):
        self.lock = threading.RLock()
        self._counters: dict[str, dict[tuple, Counter]] = {}
        self._gauges: dict[str, dict[tuple, Gauge]] = {}
        self._histograms: dict[str, dict[tuple, Histogram]] = {}
        self._collectors: dict[str, object] = {}

    # -- handle factories --------------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        return self._get_or_create(self._counters, Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get_or_create(self._gauges, Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get_or_create(self._histograms, Histogram, name, labels)

    def _get_or_create(self, table: dict, factory, name: str, labels: dict):
        key = _labels_key(labels)
        with self.lock:
            series = table.setdefault(name, {})
            metric = series.get(key)
            if metric is None:
                metric = series[key] = factory(lock=self.lock)
            return metric

    # -- label-series views ------------------------------------------------

    def labeled(self, name: str) -> list[tuple[dict, object]]:
        """All (labels, metric) pairs stored under ``name``, any kind."""
        with self.lock:
            out = []
            for table in (self._counters, self._gauges, self._histograms):
                for key, metric in table.get(name, {}).items():
                    out.append((dict(key), metric))
            return out

    # -- collectors --------------------------------------------------------

    def register_collector(
        self, name: str, fn, *, replace: bool = False
    ) -> None:
        """Attach a callable whose dict result becomes a snapshot section.

        Collectors are how stateful subsystems (fleet health, drift
        monitor, cycle cache) surface their counters without being
        polled by every mutation.
        """
        if name in _RESERVED_SECTIONS:
            raise ValueError(
                f"Collector name {name!r} shadows a reserved section."
            )
        with self.lock:
            if name in self._collectors and not replace:
                raise ValueError(f"Collector {name!r} already registered.")
            self._collectors[name] = fn

    # -- snapshot ----------------------------------------------------------

    def snapshot(self) -> dict:
        """One consistent, JSON-ready view of every metric and collector.

        Shape::

            {
              "counters":   {"name{label=v}": int, ...},
              "gauges":     {...},
              "histograms": {"name{label=v}": {count, mean, max, p50, p95, p99}},
              "<collector>": {...},   # one section per registered collector
            }
        """
        with self.lock:
            out: dict = {
                "counters": {
                    _render_name(name, key): metric.value
                    for name, series in sorted(self._counters.items())
                    for key, metric in sorted(series.items())
                },
                "gauges": {
                    _render_name(name, key): metric.value
                    for name, series in sorted(self._gauges.items())
                    for key, metric in sorted(series.items())
                },
                "histograms": {
                    _render_name(name, key): metric.summary()
                    for name, series in sorted(self._histograms.items())
                    for key, metric in sorted(series.items())
                },
            }
            for name, fn in sorted(self._collectors.items()):
                out[name] = fn()
            return out
