"""Fleet calibration statistics.

The synthetic fleet must match the *published* statistics of the paper's
proprietary dataset, or the reproduction's conclusions would not carry.
This module computes the quantities the paper reports so tests (and
DESIGN.md readers) can check them:

* working-day utilization levels (Figure 1: 10-30 k s/day);
* maintenance cycle lengths (Figure 2: mostly 65-105 days, one long
  first cycle of 221 days for a sample vehicle);
* mean daily utilization inside the first cycle vs subsequent cycles
  (Section 4.4: 10 676 s vs 13 792 s, i.e. ~30 % lighter).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.cycles import segment_cycles
from .generator import Fleet

__all__ = ["FleetCalibrationReport", "calibrate"]


@dataclass(frozen=True)
class FleetCalibrationReport:
    """Aggregate statistics of a generated fleet.

    Attributes
    ----------
    n_vehicles, n_days:
        Fleet dimensions.
    working_day_mean:
        Mean utilization over days with non-zero usage.
    mean_daily_usage:
        Mean utilization over *all* days (idle days included).
    cycle_length_median, cycle_length_p10, cycle_length_p90:
        Distribution of completed-cycle lengths across the fleet.
    first_cycle_mean_daily, later_cycle_mean_daily:
        Mean daily utilization within first vs subsequent cycles.
    first_cycle_ratio:
        ``first_cycle_mean_daily / later_cycle_mean_daily`` (paper ~0.77).
    zero_usage_fraction:
        Fraction of days with zero utilization.
    """

    n_vehicles: int
    n_days: int
    working_day_mean: float
    mean_daily_usage: float
    cycle_length_median: float
    cycle_length_p10: float
    cycle_length_p90: float
    first_cycle_mean_daily: float
    later_cycle_mean_daily: float
    first_cycle_ratio: float
    zero_usage_fraction: float

    def summary(self) -> str:
        """Human-readable multi-line rendering."""
        return "\n".join(
            [
                f"fleet: {self.n_vehicles} vehicles x {self.n_days} days",
                f"working-day mean utilization: {self.working_day_mean:,.0f} s",
                f"mean daily utilization:       {self.mean_daily_usage:,.0f} s",
                "cycle length (days): "
                f"p10={self.cycle_length_p10:.0f} "
                f"median={self.cycle_length_median:.0f} "
                f"p90={self.cycle_length_p90:.0f}",
                "first-cycle mean daily usage: "
                f"{self.first_cycle_mean_daily:,.0f} s "
                f"vs later {self.later_cycle_mean_daily:,.0f} s "
                f"(ratio {self.first_cycle_ratio:.2f})",
                f"zero-usage days: {self.zero_usage_fraction:.1%}",
            ]
        )


def calibrate(fleet: Fleet) -> FleetCalibrationReport:
    """Compute the calibration statistics of a fleet."""
    if len(fleet) == 0:
        raise ValueError("Cannot calibrate an empty fleet.")

    cycle_lengths: list[int] = []
    first_cycle_days: list[np.ndarray] = []
    later_cycle_days: list[np.ndarray] = []
    all_usage: list[np.ndarray] = []

    for vehicle in fleet:
        usage = vehicle.usage
        all_usage.append(usage)
        cycles = segment_cycles(usage, vehicle.spec.t_v)
        completed = [c for c in cycles if c.completed]
        cycle_lengths.extend(c.n_days for c in completed)
        for order, cycle in enumerate(completed):
            segment = usage[cycle.start : cycle.end + 1]
            if order == 0:
                first_cycle_days.append(segment)
            else:
                later_cycle_days.append(segment)

    usage_all = np.concatenate(all_usage)
    working = usage_all[usage_all > 0]
    first = (
        np.concatenate(first_cycle_days) if first_cycle_days else np.zeros(0)
    )
    later = (
        np.concatenate(later_cycle_days) if later_cycle_days else np.zeros(0)
    )
    lengths = np.asarray(cycle_lengths, dtype=float)

    def safe_mean(values: np.ndarray) -> float:
        return float(values.mean()) if values.size else float("nan")

    first_mean = safe_mean(first)
    later_mean = safe_mean(later)
    return FleetCalibrationReport(
        n_vehicles=len(fleet),
        n_days=int(fleet.vehicles[0].n_days),
        working_day_mean=safe_mean(working),
        mean_daily_usage=safe_mean(usage_all),
        cycle_length_median=(
            float(np.median(lengths)) if lengths.size else float("nan")
        ),
        cycle_length_p10=(
            float(np.percentile(lengths, 10)) if lengths.size else float("nan")
        ),
        cycle_length_p90=(
            float(np.percentile(lengths, 90)) if lengths.size else float("nan")
        ),
        first_cycle_mean_daily=first_mean,
        later_cycle_mean_daily=later_mean,
        first_cycle_ratio=(
            first_mean / later_mean if later_mean > 0 else float("nan")
        ),
        zero_usage_fraction=float(np.mean(usage_all == 0)),
    )
