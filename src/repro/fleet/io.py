"""CSV persistence for fleets.

Stores a fleet as two plain files a downstream user can inspect with any
tool: ``<stem>_usage.csv`` (long format: vehicle_id, day, date, usage
seconds) and ``<stem>_meta.json`` (specs and generation metadata).
"""

from __future__ import annotations

import csv
import datetime as dt
import json
from pathlib import Path

import numpy as np

from .generator import Fleet
from .profiles import UsageProfile
from .vehicle import SimulatedVehicle, VehicleSpec

__all__ = ["save_fleet", "load_fleet"]


def save_fleet(fleet: Fleet, directory, stem: str = "fleet") -> tuple[Path, Path]:
    """Write ``fleet`` under ``directory``; returns (usage_path, meta_path)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    usage_path = directory / f"{stem}_usage.csv"
    meta_path = directory / f"{stem}_meta.json"

    with usage_path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["vehicle_id", "day", "date", "usage_seconds"])
        for vehicle in fleet:
            for day, seconds in enumerate(vehicle.usage):
                writer.writerow(
                    [
                        vehicle.vehicle_id,
                        day,
                        vehicle.date_of_day(day).isoformat(),
                        f"{seconds:.3f}",
                    ]
                )

    meta = {
        "t_v": fleet.t_v,
        "seed": fleet.seed,
        "metadata": fleet.metadata,
        "vehicles": [
            {
                "vehicle_id": v.spec.vehicle_id,
                "vehicle_type": v.spec.vehicle_type,
                "model": v.spec.model,
                "t_v": v.spec.t_v,
                "start_date": v.start_date.isoformat(),
                "profile": {
                    "name": v.spec.profile.name,
                    "work_day_mean": v.spec.profile.work_day_mean,
                    "work_day_sd": v.spec.profile.work_day_sd,
                    "p_work_to_idle": v.spec.profile.p_work_to_idle,
                    "p_idle_to_work": v.spec.profile.p_idle_to_work,
                    "long_idle_rate": v.spec.profile.long_idle_rate,
                    "long_idle_mean_days": v.spec.profile.long_idle_mean_days,
                    "seasonal_amplitude": v.spec.profile.seasonal_amplitude,
                    "seasonal_phase": v.spec.profile.seasonal_phase,
                    "first_cycle_factor": v.spec.profile.first_cycle_factor,
                },
            }
            for v in fleet
        ],
    }
    with meta_path.open("w") as handle:
        json.dump(meta, handle, indent=2)
    return usage_path, meta_path


def load_fleet(directory, stem: str = "fleet") -> Fleet:
    """Load a fleet previously written by :func:`save_fleet`."""
    directory = Path(directory)
    usage_path = directory / f"{stem}_usage.csv"
    meta_path = directory / f"{stem}_meta.json"
    if not usage_path.exists() or not meta_path.exists():
        raise FileNotFoundError(
            f"Fleet files {usage_path.name} / {meta_path.name} not found "
            f"in {directory}."
        )

    with meta_path.open() as handle:
        meta = json.load(handle)

    series: dict[str, dict[int, float]] = {}
    with usage_path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            per_vehicle = series.setdefault(row["vehicle_id"], {})
            per_vehicle[int(row["day"])] = float(row["usage_seconds"])

    vehicles = []
    for entry in meta["vehicles"]:
        vid = entry["vehicle_id"]
        days = series.get(vid, {})
        usage = np.zeros(max(days) + 1 if days else 0)
        for day, seconds in days.items():
            usage[day] = seconds
        spec = VehicleSpec(
            vehicle_id=vid,
            vehicle_type=entry["vehicle_type"],
            model=entry["model"],
            t_v=entry["t_v"],
            profile=UsageProfile(**entry["profile"]),
        )
        vehicles.append(
            SimulatedVehicle(
                spec=spec,
                usage=usage,
                start_date=dt.date.fromisoformat(entry["start_date"]),
            )
        )
    return Fleet(
        vehicles=vehicles,
        t_v=meta["t_v"],
        seed=meta["seed"],
        metadata=meta["metadata"],
    )
