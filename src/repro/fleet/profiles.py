"""Vehicle usage archetypes.

Section 1 of the paper motivates the whole problem with usage
heterogeneity: "some vehicles could remain unused for a relatively long
period of time, then be moved to a construction site, and keep working at
full capacity for many days or weeks", and Figure 1 contrasts a steady
vehicle (20-30 k s/day with an idle day every 10-15 working days) with a
regime-switching one (idle for ~40 days, then suddenly active).

Each :class:`UsageProfile` parameterizes the stochastic daily-utilization
process in :mod:`repro.fleet.usage`.  The archetype constants below are
calibrated so the generated fleet matches the paper's published statistics
(see the calibration tests in ``tests/fleet/test_calibration.py``):

* typical working days: 10 000 - 30 000 s;
* maintenance cycles (``T_v = 2e6`` s): mostly 65 - 170 days;
* mean daily utilization in the first cycle ~30 % lower than in
  subsequent cycles (paper: 10 676 s vs 13 792 s).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "UsageProfile",
    "STEADY_WORKER",
    "REGIME_SWITCHER",
    "SEASONAL",
    "BURSTY",
    "LIGHT_DUTY",
    "ARCHETYPES",
]


@dataclass(frozen=True)
class UsageProfile:
    """Parameters of one vehicle's daily utilization process.

    Attributes
    ----------
    name:
        Archetype label.
    work_day_mean, work_day_sd:
        Seconds of utilization on a working day (Gaussian, clipped to
        ``[0, 86400]``).
    p_work_to_idle:
        Daily probability of an ordinary (short) idle day following a
        working day.  ``1/12`` gives Figure 1's "few days without usage
        every 10-15 working days".
    p_idle_to_work:
        Probability of resuming work after a short idle day.
    long_idle_rate:
        Per-working-day probability of entering a *long* idle spell
        (vehicle parked or between sites).
    long_idle_mean_days:
        Mean geometric length of a long idle spell.
    seasonal_amplitude:
        Relative amplitude of a yearly sinusoidal usage modulation
        (0 disables it).
    seasonal_phase:
        Phase (radians) of the seasonal peak.
    first_cycle_factor:
        Usage attenuation at the very start of the vehicle's life; the
        working-day mean ramps linearly (in cumulative-usage progress)
        from this factor up to 1.0 over the first maintenance cycle.
        The ramp is what makes a semi-new vehicle's own past average a
        misleading rate estimate — the cold-start failure mode of the
        paper's baseline (Table 3, BL = 34.9).
    regime_mean_days:
        Mean duration of a persistent work-intensity regime.  Every
        regime draws a new intensity multiplier; this is the
        non-stationarity the paper's Section 1 calls out ("According to
        the current vehicles' workload, maintenance schedule often
        changes").  0 disables regimes.
    regime_spread:
        Half-width of the uniform intensity-multiplier distribution;
        regimes draw from ``[1 - spread, 1 + spread]``.
    annual_drift:
        Relative yearly growth of the working-day mean (fleet workload
        ramping up over the years).  Anchored at the series midpoint so
        the *overall* mean stays at ``work_day_mean``; what it changes
        is that a whole-history average systematically underestimates
        the *current* rate — the failure mode that makes the paper's
        baseline the worst old-vehicle predictor (Table 1).
    """

    name: str
    work_day_mean: float
    work_day_sd: float
    p_work_to_idle: float = 1.0 / 12.0
    p_idle_to_work: float = 0.85
    long_idle_rate: float = 0.0
    long_idle_mean_days: float = 0.0
    seasonal_amplitude: float = 0.0
    seasonal_phase: float = 0.0
    first_cycle_factor: float = 0.65
    regime_mean_days: float = 75.0
    regime_spread: float = 0.45
    annual_drift: float = 0.12

    def __post_init__(self) -> None:
        if self.work_day_mean <= 0:
            raise ValueError(
                f"work_day_mean must be positive, got {self.work_day_mean}."
            )
        if self.work_day_sd < 0:
            raise ValueError(
                f"work_day_sd must be non-negative, got {self.work_day_sd}."
            )
        for name in ("p_work_to_idle", "p_idle_to_work", "long_idle_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}.")
        if not 0.0 <= self.seasonal_amplitude < 1.0:
            raise ValueError(
                "seasonal_amplitude must be in [0, 1), got "
                f"{self.seasonal_amplitude}."
            )
        if self.long_idle_rate > 0 and self.long_idle_mean_days < 1:
            raise ValueError(
                "long_idle_mean_days must be >= 1 when long_idle_rate > 0."
            )
        if not 0.0 < self.first_cycle_factor <= 1.5:
            raise ValueError(
                "first_cycle_factor must be in (0, 1.5], got "
                f"{self.first_cycle_factor}."
            )
        if self.regime_mean_days < 0:
            raise ValueError(
                f"regime_mean_days must be >= 0, got {self.regime_mean_days}."
            )
        if not 0.0 <= self.regime_spread < 1.0:
            raise ValueError(
                f"regime_spread must be in [0, 1), got {self.regime_spread}."
            )
        if not -0.5 <= self.annual_drift <= 0.5:
            raise ValueError(
                f"annual_drift must be in [-0.5, 0.5], got {self.annual_drift}."
            )


#: Figure 1's v1: 20-30 k s/day, an idle day every 10-15 working days.
STEADY_WORKER = UsageProfile(
    name="steady_worker",
    work_day_mean=26_000.0,
    work_day_sd=4_500.0,
    p_work_to_idle=1.0 / 12.0,
    p_idle_to_work=0.9,
    long_idle_rate=1.0 / 150.0,
    long_idle_mean_days=12.0,
)

#: Figure 1's v2: weeks of inactivity, then sudden full-capacity work.
REGIME_SWITCHER = UsageProfile(
    name="regime_switcher",
    work_day_mean=30_000.0,
    work_day_sd=6_000.0,
    p_work_to_idle=1.0 / 15.0,
    p_idle_to_work=0.8,
    long_idle_rate=1.0 / 55.0,
    long_idle_mean_days=28.0,
)

#: Construction-season vehicle: strong yearly modulation.
SEASONAL = UsageProfile(
    name="seasonal",
    work_day_mean=22_000.0,
    work_day_sd=5_000.0,
    p_work_to_idle=1.0 / 10.0,
    p_idle_to_work=0.8,
    seasonal_amplitude=0.55,
    seasonal_phase=0.0,
    long_idle_rate=1.0 / 110.0,
    long_idle_mean_days=20.0,
)

#: High-variance on/off usage: rental-style machine.
BURSTY = UsageProfile(
    name="bursty",
    work_day_mean=20_000.0,
    work_day_sd=9_000.0,
    p_work_to_idle=1.0 / 6.0,
    p_idle_to_work=0.55,
    long_idle_rate=1.0 / 80.0,
    long_idle_mean_days=21.0,
)

#: Lightly used machine: long cycles, the paper's slow extreme.
LIGHT_DUTY = UsageProfile(
    name="light_duty",
    work_day_mean=13_000.0,
    work_day_sd=4_000.0,
    p_work_to_idle=1.0 / 8.0,
    p_idle_to_work=0.7,
    long_idle_rate=1.0 / 100.0,
    long_idle_mean_days=18.0,
)

ARCHETYPES: tuple[UsageProfile, ...] = (
    STEADY_WORKER,
    REGIME_SWITCHER,
    SEASONAL,
    BURSTY,
    LIGHT_DUTY,
)
