"""Vehicle specification and simulated vehicle containers."""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field

import numpy as np

from .profiles import UsageProfile

__all__ = ["VehicleSpec", "SimulatedVehicle", "VEHICLE_TYPES"]

#: Industrial / construction vehicle families, for metadata realism.
VEHICLE_TYPES = (
    "excavator",
    "wheel_loader",
    "bulldozer",
    "telehandler",
    "crane",
    "dump_truck",
)


@dataclass(frozen=True)
class VehicleSpec:
    """Static description of one fleet vehicle.

    Attributes
    ----------
    vehicle_id:
        Unique identifier, e.g. ``"v07"``.
    vehicle_type:
        Family (excavator, crane, ...), metadata only.
    model:
        Vendor model string, metadata only.
    t_v:
        Allowed utilization seconds between maintenances (the paper uses
        ``2 000 000`` for every vehicle).
    profile:
        Usage archetype driving the daily utilization process.
    """

    vehicle_id: str
    vehicle_type: str
    model: str
    t_v: float
    profile: UsageProfile

    def __post_init__(self) -> None:
        if not self.vehicle_id:
            raise ValueError("vehicle_id must be non-empty.")
        if self.t_v <= 0:
            raise ValueError(f"t_v must be positive, got {self.t_v}.")


@dataclass
class SimulatedVehicle:
    """A vehicle spec plus its generated daily utilization series.

    Attributes
    ----------
    spec:
        Static vehicle description.
    usage:
        Daily utilization seconds, ``usage[t]`` for day ``t``.
    start_date:
        Calendar date of day 0 of the series.
    """

    spec: VehicleSpec
    usage: np.ndarray
    start_date: dt.date = field(default_factory=lambda: dt.date(2015, 1, 1))

    def __post_init__(self) -> None:
        self.usage = np.asarray(self.usage, dtype=np.float64)
        if self.usage.ndim != 1:
            raise ValueError(
                f"usage must be 1-D, got shape {self.usage.shape}."
            )
        finite = self.usage[np.isfinite(self.usage)]
        if finite.size and (finite.min() < 0 or finite.max() > 86_400.0):
            raise ValueError(
                "usage values must lie in [0, 86400] seconds per day."
            )

    @property
    def vehicle_id(self) -> str:
        return self.spec.vehicle_id

    @property
    def n_days(self) -> int:
        return int(self.usage.size)

    @property
    def total_usage(self) -> float:
        return float(np.nansum(self.usage))

    def date_of_day(self, t: int) -> dt.date:
        """Calendar date corresponding to series index ``t``."""
        if not 0 <= t < self.n_days:
            raise IndexError(f"day {t} outside [0, {self.n_days}).")
        return self.start_date + dt.timedelta(days=t)

    def usage_window(self, start: int, stop: int) -> np.ndarray:
        """Copy of ``usage[start:stop]`` with bounds checking."""
        if not 0 <= start <= stop <= self.n_days:
            raise IndexError(
                f"window [{start}, {stop}) outside [0, {self.n_days}]."
            )
        return self.usage[start:stop].copy()
