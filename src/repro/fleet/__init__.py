"""Synthetic fleet usage simulator.

Generates the stand-in for the paper's proprietary Tierra dataset: 24
heterogeneous industrial vehicles over ~4.75 years, with calibrated
utilization statistics (see DESIGN.md and :mod:`repro.fleet.calibration`).
"""

from .calibration import FleetCalibrationReport, calibrate
from .generator import DEFAULT_END, DEFAULT_START, Fleet, FleetGenerator
from .io import load_fleet, save_fleet
from .profiles import (
    ARCHETYPES,
    BURSTY,
    LIGHT_DUTY,
    REGIME_SWITCHER,
    SEASONAL,
    STEADY_WORKER,
    UsageProfile,
)
from .usage import DailyUsageSimulator
from .vehicle import VEHICLE_TYPES, SimulatedVehicle, VehicleSpec

__all__ = [
    "FleetCalibrationReport",
    "calibrate",
    "Fleet",
    "FleetGenerator",
    "DEFAULT_START",
    "DEFAULT_END",
    "load_fleet",
    "save_fleet",
    "UsageProfile",
    "ARCHETYPES",
    "STEADY_WORKER",
    "REGIME_SWITCHER",
    "SEASONAL",
    "BURSTY",
    "LIGHT_DUTY",
    "DailyUsageSimulator",
    "SimulatedVehicle",
    "VehicleSpec",
    "VEHICLE_TYPES",
]
