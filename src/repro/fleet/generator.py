"""Synthetic fleet dataset generation.

Builds the stand-in for the paper's proprietary dataset: "historical usage
of 24 heterogeneous vehicles acquired over a 4 year period (from January
2015 to September 2019)" with ``T_v = 2 000 000`` seconds between
maintenances.  Archetypes are assigned round-robin so every fleet mixes
steady, regime-switching, seasonal, bursty and light-duty machines.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field

import numpy as np

from .profiles import ARCHETYPES, UsageProfile
from .usage import DailyUsageSimulator
from .vehicle import VEHICLE_TYPES, SimulatedVehicle, VehicleSpec

__all__ = ["Fleet", "FleetGenerator", "DEFAULT_START", "DEFAULT_END"]

DEFAULT_START = dt.date(2015, 1, 1)
DEFAULT_END = dt.date(2019, 9, 30)

_MODEL_PREFIXES = ("TX", "LD", "KM", "HV", "GR", "BW")


@dataclass
class Fleet:
    """A generated fleet: ordered vehicles plus generation metadata."""

    vehicles: list[SimulatedVehicle]
    t_v: float
    seed: int | None = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        ids = [v.vehicle_id for v in self.vehicles]
        if len(set(ids)) != len(ids):
            raise ValueError(f"Duplicate vehicle ids in fleet: {ids}.")
        self._by_id = {v.vehicle_id: v for v in self.vehicles}

    def __len__(self) -> int:
        return len(self.vehicles)

    def __iter__(self):
        return iter(self.vehicles)

    def __getitem__(self, vehicle_id: str) -> SimulatedVehicle:
        try:
            return self._by_id[vehicle_id]
        except KeyError:
            raise KeyError(
                f"Unknown vehicle {vehicle_id!r}; fleet has {self.vehicle_ids}."
            ) from None

    @property
    def vehicle_ids(self) -> list[str]:
        return [v.vehicle_id for v in self.vehicles]

    def usage_matrix(self) -> np.ndarray:
        """Stack usage series into a ``(n_vehicles, n_days)`` matrix.

        Requires equal series lengths (true for generated fleets).
        """
        lengths = {v.n_days for v in self.vehicles}
        if len(lengths) != 1:
            raise ValueError(
                f"Vehicles have unequal series lengths {sorted(lengths)}; "
                "a dense matrix is not defined."
            )
        return np.vstack([v.usage for v in self.vehicles])

    def split(self, train_fraction: float, rng=None) -> tuple[list[str], list[str]]:
        """Random vehicle-level split, as in Section 4.4 (17 / 7 vehicles).

        Returns ``(train_ids, test_ids)``.
        """
        if not 0.0 < train_fraction < 1.0:
            raise ValueError(
                f"train_fraction must be in (0, 1), got {train_fraction}."
            )
        rng = np.random.default_rng(rng)
        ids = list(self.vehicle_ids)
        rng.shuffle(ids)
        n_train = int(round(train_fraction * len(ids)))
        n_train = min(max(n_train, 1), len(ids) - 1)
        return sorted(ids[:n_train]), sorted(ids[n_train:])


class FleetGenerator:
    """Generate calibrated synthetic fleets.

    Parameters
    ----------
    n_vehicles:
        Fleet size (paper: 24).
    start_date, end_date:
        Acquisition window (paper: 2015-01-01 to 2019-09-30).
    t_v:
        Usage budget per maintenance cycle (paper: 2e6 seconds).
    seed:
        Master seed; each vehicle gets an independent child seed, so the
        same fleet is reproduced for a given (seed, n_vehicles) pair.
    archetypes:
        Profile pool, assigned round-robin; defaults to the five
        calibrated archetypes of :mod:`repro.fleet.profiles`.
    """

    def __init__(
        self,
        n_vehicles: int = 24,
        start_date: dt.date = DEFAULT_START,
        end_date: dt.date = DEFAULT_END,
        t_v: float = 2_000_000.0,
        seed: int | None = 0,
        archetypes: tuple[UsageProfile, ...] = ARCHETYPES,
    ):
        if n_vehicles < 1:
            raise ValueError(f"n_vehicles must be >= 1, got {n_vehicles}.")
        if end_date <= start_date:
            raise ValueError(
                f"end_date {end_date} must follow start_date {start_date}."
            )
        if t_v <= 0:
            raise ValueError(f"t_v must be positive, got {t_v}.")
        if not archetypes:
            raise ValueError("archetypes must be non-empty.")
        self.n_vehicles = n_vehicles
        self.start_date = start_date
        self.end_date = end_date
        self.t_v = t_v
        self.seed = seed
        self.archetypes = tuple(archetypes)

    @property
    def n_days(self) -> int:
        return (self.end_date - self.start_date).days + 1

    def _spec_for(self, index: int, rng: np.random.Generator) -> VehicleSpec:
        profile = self.archetypes[index % len(self.archetypes)]
        vehicle_type = VEHICLE_TYPES[index % len(VEHICLE_TYPES)]
        prefix = _MODEL_PREFIXES[index % len(_MODEL_PREFIXES)]
        model = f"{prefix}-{int(rng.integers(100, 1000))}"
        return VehicleSpec(
            vehicle_id=f"v{index + 1:02d}",
            vehicle_type=vehicle_type,
            model=model,
            t_v=self.t_v,
            profile=profile,
        )

    def generate(self) -> Fleet:
        """Build the fleet; deterministic for a fixed seed."""
        master = np.random.default_rng(self.seed)
        vehicles = []
        n_days = self.n_days
        for index in range(self.n_vehicles):
            child = np.random.default_rng(master.integers(2**63))
            spec = self._spec_for(index, child)
            simulator = DailyUsageSimulator(spec.profile, t_v=self.t_v)
            usage = simulator.generate(n_days, child)
            vehicles.append(
                SimulatedVehicle(
                    spec=spec, usage=usage, start_date=self.start_date
                )
            )
        return Fleet(
            vehicles=vehicles,
            t_v=self.t_v,
            seed=self.seed,
            metadata={
                "start_date": self.start_date.isoformat(),
                "end_date": self.end_date.isoformat(),
                "n_days": n_days,
                "archetypes": [p.name for p in self.archetypes],
            },
        )
