"""Stochastic daily-utilization process.

Generates the per-vehicle series ``U_v(t)`` (seconds worked on day ``t``)
that the paper acquires from CAN telematics.  The process combines:

* a two-state (working / idle) day-level Markov chain;
* occasional *long* idle spells of geometric length (vehicle parked or
  between construction sites) — the non-stationarity the paper calls out;
* a yearly sinusoidal modulation for seasonal archetypes;
* a first-cycle attenuation factor: usage stays lighter until cumulative
  utilization first reaches ``T_v`` (the paper measured the first cycle
  ~30 % lighter than subsequent ones).
"""

from __future__ import annotations

import numpy as np

from .profiles import UsageProfile

__all__ = ["DailyUsageSimulator", "SECONDS_PER_DAY", "DAYS_PER_YEAR"]

SECONDS_PER_DAY = 86_400.0
DAYS_PER_YEAR = 365.25


class DailyUsageSimulator:
    """Sample daily utilization series for one vehicle profile.

    Parameters
    ----------
    profile:
        Usage archetype.
    t_v:
        Allowed usage seconds between maintenances; only used to decide
        when the first-cycle attenuation ends.  ``None`` disables the
        first-cycle effect.
    """

    def __init__(self, profile: UsageProfile, t_v: float | None = 2_000_000.0):
        if t_v is not None and t_v <= 0:
            raise ValueError(f"t_v must be positive, got {t_v}.")
        self.profile = profile
        self.t_v = t_v

    def _seasonal_factor(self, day: int) -> float:
        profile = self.profile
        if profile.seasonal_amplitude == 0.0:
            return 1.0
        angle = 2.0 * np.pi * day / DAYS_PER_YEAR + profile.seasonal_phase
        return 1.0 + profile.seasonal_amplitude * np.sin(angle)

    def _draw_regime(self, rng: np.random.Generator) -> float:
        spread = self.profile.regime_spread
        if spread == 0.0:
            return 1.0
        return float(rng.uniform(1.0 - spread, 1.0 + spread))

    def _draw_regime_length(self, rng: np.random.Generator) -> int:
        mean = self.profile.regime_mean_days
        if mean <= 0:
            return np.iinfo(np.int32).max  # a single, never-ending regime
        return max(7, int(rng.geometric(1.0 / mean)))

    def _first_cycle_ramp(self, cumulative: float) -> float:
        """Attenuation during the first cycle, ramping up with progress.

        Starts at ``first_cycle_factor`` and reaches 1.0 when cumulative
        usage hits ``T_v``; 1.0 afterwards.  The linear-in-progress ramp
        keeps the first cycle's *mean* daily usage roughly
        ``(1 + factor) / 2`` of later cycles (paper: ~0.77).
        """
        if self.t_v is None or cumulative >= self.t_v:
            return 1.0
        start = self.profile.first_cycle_factor
        progress = cumulative / self.t_v
        return start + (1.0 - start) * progress

    def generate(
        self, n_days: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Return a length-``n_days`` array of daily utilization seconds."""
        if n_days < 0:
            raise ValueError(f"n_days must be >= 0, got {n_days}.")
        profile = self.profile
        usage = np.zeros(n_days)
        working = rng.random() < 0.7  # most vehicles start deployed
        long_idle_left = 0
        cumulative = 0.0
        regime_factor = self._draw_regime(rng)
        regime_left = self._draw_regime_length(rng)
        # Midpoint-anchored workload drift: overall mean stays put while
        # early days run lighter and late days heavier.
        midpoint = n_days / 2.0

        for day in range(n_days):
            regime_left -= 1
            if regime_left <= 0:
                regime_factor = self._draw_regime(rng)
                regime_left = self._draw_regime_length(rng)

            if long_idle_left > 0:
                long_idle_left -= 1
                working = long_idle_left == 0 and rng.random() < profile.p_idle_to_work
                continue

            if working:
                drift = (1.0 + profile.annual_drift) ** (
                    (day - midpoint) / DAYS_PER_YEAR
                )
                mean = (
                    profile.work_day_mean
                    * self._seasonal_factor(day)
                    * regime_factor
                    * drift
                    * self._first_cycle_ramp(cumulative)
                )
                seconds = rng.normal(mean, profile.work_day_sd)
                seconds = float(np.clip(seconds, 0.0, SECONDS_PER_DAY))
                usage[day] = seconds
                cumulative += seconds
                # State transitions for tomorrow.
                if (
                    profile.long_idle_rate
                    and rng.random() < profile.long_idle_rate
                ):
                    long_idle_left = max(
                        1, int(rng.geometric(1.0 / profile.long_idle_mean_days))
                    )
                    working = False
                elif rng.random() < profile.p_work_to_idle:
                    working = False
            else:
                working = rng.random() < profile.p_idle_to_work

        return usage

    def expected_cycle_days(self) -> float:
        """Rough expected cycle length (steady state, no seasonality).

        Useful for calibration checks: ``T_v`` divided by the stationary
        mean daily usage of the working/idle Markov chain.
        """
        if self.t_v is None:
            raise ValueError("expected_cycle_days requires t_v.")
        profile = self.profile
        p_wi = profile.p_work_to_idle
        p_iw = profile.p_idle_to_work
        # Stationary probability of the working state of the 2-state chain.
        p_working = p_iw / (p_iw + p_wi)
        if profile.long_idle_rate > 0:
            # Long idle spells dilute working days further.
            expected_spell = profile.long_idle_mean_days
            dilution = 1.0 / (1.0 + profile.long_idle_rate * expected_spell)
            p_working *= dilution
        mean_daily = p_working * profile.work_day_mean
        if mean_daily <= 0:
            return np.inf
        return self.t_v / mean_daily
