"""Command-line interface.

Operational entry points for the reproduction:

* ``generate``  — write the synthetic fleet to CSV/JSON;
* ``calibrate`` — print the fleet calibration report;
* ``evaluate``  — regenerate a table/figure of the paper;
* ``predict``   — train a model for one vehicle of a stored fleet and
  forecast its next maintenance;
* ``chaos``     — replay a seeded fault-injection scenario against the
  resilient serving stack and print the fleet health report, or (with
  ``--kill-after``) run the SIGKILL kill-recovery drill, or (with
  ``--drift``) run the drift-injection lifecycle drill;
* ``lifecycle`` — drive the model-lifecycle controller over a seeded
  drift scenario: print its admin status, run one sweep, or watch
  promotions land day by day;
* ``recover``   — recover a durable state directory (write-ahead
  journal + checkpoints), or inspect it read-only with ``--dry-run``;
* ``serve``     — run the asyncio HTTP gateway (micro-batching,
  admission control, deadline-aware backpressure) in front of a fleet
  engine;
* ``obs``       — profile the serving pipeline stages (ingest /
  feature-build / train / predict) over a deterministic scenario and
  dump the event log as JSON lines.

Usage: ``python -m repro <command> [options]`` (see ``--help`` per
command).
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["build_parser", "main"]


def _positive_int(text: str) -> int:
    """argparse type for worker/size knobs: an integer >= 1.

    ``--max-workers 0`` (or a negative count) used to slip through to
    the executor and fail deep inside ``concurrent.futures``; rejecting
    it at the parser gives a clear, immediate error instead.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _cmd_generate(args) -> int:
    from .fleet import FleetGenerator, calibrate, save_fleet

    fleet = FleetGenerator(
        n_vehicles=args.vehicles, t_v=args.t_v, seed=args.seed
    ).generate()
    usage_path, meta_path = save_fleet(fleet, args.output, stem=args.stem)
    print(f"Wrote {usage_path}")
    print(f"Wrote {meta_path}")
    print()
    print(calibrate(fleet).summary())
    return 0


def _cmd_calibrate(args) -> int:
    from .fleet import FleetGenerator, calibrate, load_fleet

    if args.input:
        fleet = load_fleet(args.input, stem=args.stem)
    else:
        fleet = FleetGenerator(
            n_vehicles=args.vehicles, t_v=args.t_v, seed=args.seed
        ).generate()
    print(calibrate(fleet).summary())
    return 0


_EXPERIMENTS = (
    "table1",
    "table2",
    "table3",
    "figure4",
    "figure5",
    "timing",
    "model-selection",
    "all",
)


def _cmd_evaluate(args) -> int:
    from .experiments import (
        ExperimentSetup,
        run_figure4,
        run_figure5,
        run_model_selection,
        run_table1,
        run_table2,
        run_table3,
        run_timing,
    )

    setup = ExperimentSetup(
        seed=args.seed,
        n_vehicles=args.vehicles,
        fast=not args.paper_grids,
        n_old_vehicles=args.old_vehicles,
        max_workers=args.max_workers,
        executor_kind=args.executor,
    )

    def render_all() -> list[str]:
        figure4 = run_figure4(setup)
        table2 = run_table2(setup, figure4)
        return [
            run_table1(setup).render(),
            figure4.render(),
            table2.render(),
            run_figure5(setup, table2).render(),
            run_table3(setup).render(),
            run_model_selection(setup).render(),
            run_timing(setup).render(),
        ]

    if args.experiment == "all":
        for text in render_all():
            print(text)
            print()
        return 0
    if args.experiment == "table1":
        result = run_table1(setup)
    elif args.experiment == "table3":
        result = run_table3(setup)
    elif args.experiment == "timing":
        result = run_timing(setup)
    elif args.experiment == "model-selection":
        result = run_model_selection(setup)
    else:
        figure4 = run_figure4(setup)
        if args.experiment == "figure4":
            result = figure4
        elif args.experiment == "table2":
            result = run_table2(setup, figure4)
        else:  # figure5
            result = run_figure5(setup, run_table2(setup, figure4))
    print(result.render())
    return 0


def _cmd_predict(args) -> int:
    import datetime as dt

    from .core import FleetMaintenancePlanner, VehicleSeries, make_predictor
    from .dataprep import build_relational_dataset
    from .fleet import load_fleet

    fleet = load_fleet(args.input, stem=args.stem)
    try:
        vehicle = fleet[args.vehicle]
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2
    series = VehicleSeries.from_vehicle(vehicle)
    dataset = build_relational_dataset(series.bundle, window=args.window)
    if dataset.n_records == 0:
        print(
            f"Vehicle {args.vehicle!r} has no completed cycles to train on.",
            file=sys.stderr,
        )
        return 2
    predictor = make_predictor(args.algorithm)
    predictor.fit(dataset, usage=series.usage)
    forecast = FleetMaintenancePlanner.forecast_vehicle(
        series, predictor, window=args.window
    )
    due = vehicle.date_of_day(series.n_days - 1) + dt.timedelta(
        days=int(round(forecast.days_to_maintenance))
    )
    print(f"vehicle          : {forecast.vehicle_id}")
    print(f"category         : {forecast.category.value}")
    print(f"budget left      : {forecast.usage_left:,.0f} s")
    print(f"days to maint.   : {forecast.days_to_maintenance:.1f}")
    print(f"predicted due    : {due.isoformat()}")
    return 0


def _run_kill_drill(args) -> int:
    """``chaos --kill-after``: SIGKILL a journaling worker mid-ingest,
    recover from the state dir, and fail loudly if the recovered state
    diverges from an uninterrupted reference run."""
    import json
    import tempfile

    from .durability.drill import kill_recovery_drill

    work_dir = args.state_dir
    if work_dir is None:
        work_dir = tempfile.mkdtemp(prefix="repro-drill-")
    report = kill_recovery_drill(
        work_dir,
        n_vehicles=args.vehicles,
        days=args.days,
        seed=args.seed,
        kill_after=args.kill_after,
        t_v=args.t_v,
        torn_tail=args.torn_tail,
    )
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(
            f"killed worker after {report['applied_acked']}/"
            f"{report['ops_total']} ops "
            f"(durably acked: {report['durable_acked']})"
        )
        print(
            f"recovered: checkpoint seq {report['checkpoint_seq']}, "
            f"{report['replayed']} journal records replayed, "
            f"last seq {report['last_seq']}"
        )
        if report["torn_tail"]:
            print(
                f"torn tail: {report['torn_bytes']} bytes planted, "
                f"{report['torn_records_dropped']} torn records dropped"
            )
        for label, ok in (
            ("acknowledged writes survived", report["acked_survived"]),
            ("forecasts bit-identical", report["forecasts_match"]),
            ("fleet health identical", report["health_match"]),
        ):
            print(f"[{'ok' if ok else 'FAIL'}] {label}")
        print(f"state dir left at {work_dir}")
    return 0 if report["ok"] else 1


def _run_drift_drill(args) -> int:
    """``chaos --drift``: inject concept drift into part of the fleet,
    let the lifecycle controller promote evaluation-gated replacements,
    and fail loudly unless the fleet's error recovers with zero serving
    interruption."""
    import json

    from .lifecycle import drift_promotion_drill

    report = drift_promotion_drill(seed=args.seed, n_vehicles=args.vehicles)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(
            f"drifted  : {', '.join(report['drifted'])} "
            f"(peak mae {max(report['peak_mae'].values()):.2f}d)"
        )
        print(
            f"promoted : {', '.join(report['promoted']) or '(none)'} "
            f"(final mae "
            f"{max(report['final_mae'].get(v, 0.0) for v in report['drifted']):.2f}d)"
        )
        print(f"counters : {report['counters']}")
        print()
        for check in report["checks"]:
            print(f"[{'ok' if check['ok'] else 'FAIL'}] {check['name']}")
    return 0 if report["ok"] else 1


def _cmd_chaos(args) -> int:
    """Deterministic chaos run: dirty readings, failing trainers and
    flaky storage against the resilient service; self-verifies that the
    FleetHealth counters match the injected fault counts exactly."""
    if args.drift:
        return _run_drift_drill(args)
    if args.kill_after is not None:
        return _run_kill_drill(args)

    import tempfile

    import numpy as np

    from .serving import (
        CircuitBreaker,
        DriftMonitor,
        EngineConfig,
        FaultInjector,
        FaultyStore,
        FleetEngine,
        IngestionGuard,
        MaintenancePredictionService,
        ModelStore,
        RetryPolicy,
        corrupt_readings,
        faulty_predictor_factory,
    )

    rng = np.random.default_rng(args.seed)
    clean = {
        f"v{i:02d}": rng.uniform(10_000, 28_000, size=args.days)
        for i in range(args.vehicles)
    }
    injector = FaultInjector(
        seed=args.seed,
        rates={
            "reading.non_finite": 0.03,
            "reading.negative": 0.02,
            "reading.too_large": 0.02,
            "reading.duplicate": 0.02,
            "reading.out_of_order": 0.02,
            "train": 0.15,
            "predict": 0.05,
            "store.save": 0.20,
            "store.corrupt": 0.10,
        },
    )
    feeds = {
        vehicle_id: list(corrupt_readings(injector, usage))
        for vehicle_id, usage in sorted(clean.items())
    }
    retry = RetryPolicy(attempts=3, sleep=lambda _s: None, seed=args.seed)

    with tempfile.TemporaryDirectory() as tmp:
        service = MaintenancePredictionService(
            t_v=args.t_v,
            window=0,
            algorithm="LR",
            store=FaultyStore(ModelStore(tmp), injector),
            monitor=DriftMonitor(min_samples=1),
            guard=IngestionGuard(),
            breaker=CircuitBreaker(),
            retry=retry,
            predictor_factory=faulty_predictor_factory(injector),
        )
        engine = FleetEngine(
            service, config=EngineConfig(max_workers=1, executor="serial")
        )
        engine.register_fleet(clean)

        degraded = total_forecasts = 0
        last_forecasts = []
        steps = max(len(feed) for feed in feeds.values())
        for step in range(steps):
            for vehicle_id in sorted(feeds):
                feed = feeds[vehicle_id]
                if step < len(feed):
                    day, value = feed[step]
                    service.ingest(vehicle_id, value, day=day)
            if (step + 1) % 5 == 0 or step == steps - 1:
                forecasts = engine.predict_all()
                total_forecasts += len(forecasts)
                degraded += sum(1 for f in forecasts if f.degraded)
                last_forecasts = forecasts

        health = engine.health()
        if not args.json:
            print(health.render())
            print()
            print(
                f"forecasts served : {total_forecasts} ({degraded} degraded)"
            )
            print(f"injected         : {dict(injector.injected)}")

        anomalies = health.total_anomalies()
        checks = [
            (
                "reading faults quarantined/flagged",
                anomalies.get("non-finite", 0)
                == injector.injected["reading.non_finite"]
                and anomalies.get("negative", 0)
                == injector.injected["reading.negative"]
                and anomalies.get("too-large", 0)
                == injector.injected["reading.too_large"]
                and anomalies.get("duplicate-day", 0)
                == injector.injected["reading.duplicate"]
                and anomalies.get("out-of-order", 0)
                == injector.injected["reading.out_of_order"],
            ),
            (
                "breaker failures == injected train+predict faults",
                health.breaker_failures()
                == injector.injected["train"] + injector.injected["predict"],
            ),
            (
                "store faults == retried + persist failures",
                injector.injected["store.save"]
                == retry.retries + health.persist_failures,
            ),
        ]
        failed = sum(not ok for _label, ok in checks)
        if args.json:
            import json

            print(
                json.dumps(
                    {
                        "health": health.as_dict(),
                        "forecasts": [f.to_dict() for f in last_forecasts],
                        "forecasts_served": total_forecasts,
                        "degraded_serves": degraded,
                        "injected": dict(injector.injected),
                        "checks": {label: ok for label, ok in checks},
                    },
                    indent=2,
                )
            )
        else:
            print()
            for label, ok in checks:
                print(f"[{'ok' if ok else 'FAIL'}] {label}")
        return 1 if failed else 0


def _cmd_lifecycle(args) -> int:
    """Drive the lifecycle controller over a seeded drift scenario.

    Replays the drill fleet in-process (warm champions, then inject
    drift into the first ``--drifted`` vehicles), then either prints
    the controller's admin ``status``, runs one sweep (``run-once``),
    or follows ``--ticks`` further days with a sweep per day
    (``watch``) — the same decision stream the gateway serves at
    ``/v1/lifecycle``.
    """
    import json
    import tempfile

    import numpy as np

    from .lifecycle.drill import _build_stack, _daily_usage

    rng = np.random.default_rng(args.seed)
    ids = [f"v{i:02d}" for i in range(args.vehicles)]
    drifted = set(ids[: args.drifted])
    with tempfile.TemporaryDirectory(prefix="repro-lifecycle-") as tmp:
        engine, controller = _build_stack(store_dir=tmp)
        engine.register_fleet(ids)
        rates = dict(
            zip(ids, rng.uniform(15_000.0, 21_000.0, size=len(ids)))
        )
        day = 0

        def one_day(drifting: bool) -> None:
            nonlocal day
            engine.ingest_day(
                {
                    vid: _daily_usage(
                        rng,
                        rates[vid]
                        * (
                            args.drift_factor
                            if drifting and vid in drifted
                            else 1.0
                        ),
                    )
                    for vid in ids
                },
                day=day,
            )
            if day >= 15:
                engine.predict_all()
            day += 1

        for _ in range(args.warm_days):
            one_day(False)
        for _ in range(args.drift_days):
            one_day(True)

        if args.mode == "status":
            status = controller.status()
            if args.json:
                print(json.dumps(status, indent=2, sort_keys=True))
            else:
                print(f"policy   : {status['policy']}")
                print(f"counters : {status['counters']}")
                for vid, info in sorted(status["vehicles"].items()):
                    mae = info["mean_abs_error"]
                    print(
                        f"  {vid}  {info['category']:<8} "
                        f"v{info['model_version']}  "
                        f"pinned={info['pinned_version'] or '-'}  "
                        f"mae={'n/a' if mae is None else f'{mae:.2f}d'}"
                    )
            return 0

        if args.mode == "run-once":
            entries = controller.run_once()
            if args.json:
                print(json.dumps(entries, indent=2, sort_keys=True))
            else:
                if not entries:
                    print("no candidates due")
                for entry in entries:
                    print(
                        f"{entry['vehicle_id']}: {entry['outcome']} "
                        f"({entry['trigger']}) — {entry['detail']}"
                    )
            return 0

        # watch: keep the drifted regime running, one sweep per day.
        decisions = []
        for tick in range(args.ticks):
            one_day(True)
            for entry in controller.run_once():
                decisions.append({"day": day - 1, **entry})
                if not args.json:
                    print(
                        f"day {day - 1}: {entry['vehicle_id']} "
                        f"{entry['outcome']} ({entry['trigger']}) — "
                        f"{entry['detail']}"
                    )
        if args.json:
            print(
                json.dumps(
                    {
                        "decisions": decisions,
                        "counters": controller.counters(),
                    },
                    indent=2,
                    sort_keys=True,
                )
            )
        else:
            print(
                f"watched {args.ticks} day(s): "
                f"{controller.counters()['promotions']} promotion(s), "
                f"{controller.counters()['rejections']} rejection(s)"
            )
        return 0


def _cmd_recover(args) -> int:
    """Recover a durable state dir, or inspect it with ``--dry-run``.

    Dry-run is strictly read-only: it scans the journal segments
    (verifying CRC framing), probes the newest valid checkpoint without
    quarantining corrupt generations, and reports the lock holder —
    then exits 1 if the journal is damaged beyond its torn tail.  A
    full recover builds a service from the checkpointed state (or a
    guarded default-config service when no checkpoint exists yet),
    replays the journal, takes a fresh checkpoint, and releases.
    """
    import json
    from pathlib import Path

    from .durability import (
        CheckpointManager,
        DurabilityConfig,
        JournalCorruptError,
        LockHeldError,
        RecoveryError,
        RecoveryManager,
        WriteAheadJournal,
        build_service_from_state,
    )
    from .durability.recovery import LOCK_FILENAME, LockFile

    state_dir = Path(args.state)
    if args.dry_run:
        lock = LockFile(state_dir / LOCK_FILENAME)
        pid = lock.read_pid()
        checkpoints = CheckpointManager(state_dir / "checkpoints")
        ckpt = checkpoints.load_latest(quarantine=False)
        corrupt = None
        try:
            scan = WriteAheadJournal.scan(state_dir / "journal")
        except JournalCorruptError as exc:
            corrupt = str(exc)
            scan = None
        ckpt_seq = ckpt.seq if ckpt is not None else 0
        report = {
            "state_dir": str(state_dir),
            "lock": (
                None
                if pid is None
                else {"pid": pid, "alive": LockFile._pid_alive(pid)}
            ),
            "checkpoint": (
                None
                if ckpt is None
                else {"seq": ckpt.seq, "path": str(ckpt.path)}
            ),
            "checkpoints_discarded": checkpoints.discarded,
            "journal": scan,
            "journal_corrupt": corrupt,
            "replay_needed": (
                max(0, scan["last_seq"] - ckpt_seq)
                if scan is not None
                else None
            ),
        }
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            lock_line = "free"
            if pid is not None:
                alive = LockFile._pid_alive(pid)
                lock_line = f"pid {pid} ({'ALIVE' if alive else 'stale'})"
            print(f"state dir  : {state_dir}")
            print(f"lock       : {lock_line}")
            print(
                "checkpoint : "
                + ("none" if ckpt is None else f"seq {ckpt.seq}")
                + (
                    f" ({checkpoints.discarded} corrupt generation(s))"
                    if checkpoints.discarded
                    else ""
                )
            )
            if scan is not None:
                print(
                    f"journal    : {scan['records']} records in "
                    f"{scan['segments']} segment(s), "
                    f"seq {scan['first_seq']}..{scan['last_seq']}, "
                    f"torn tail {scan['torn_tail_bytes']} bytes"
                )
                print(f"replay     : {report['replay_needed']} record(s)")
            else:
                print(f"journal    : CORRUPT — {corrupt}")
        return 1 if corrupt is not None else 0

    config = DurabilityConfig()
    checkpoints = CheckpointManager(
        state_dir / "checkpoints", keep=config.keep_checkpoints
    )
    ckpt = checkpoints.load_latest(quarantine=False)
    if ckpt is not None:
        service = build_service_from_state(ckpt.state)
    else:
        from .serving import IngestionGuard, MaintenancePredictionService

        service = MaintenancePredictionService(
            t_v=args.t_v,
            window=args.window,
            algorithm=args.algorithm,
            guard=IngestionGuard(),
            cycle_cache=True,
        )
    manager = RecoveryManager(state_dir, service, config=config)
    try:
        report = manager.recover()
    except LockHeldError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except (JournalCorruptError, RecoveryError, ValueError) as exc:
        print(f"error: recovery failed: {exc}", file=sys.stderr)
        return 1
    try:
        if args.json:
            print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
        else:
            print(
                f"recovered {len(service.vehicle_ids)} vehicle(s) from "
                f"checkpoint seq {report.checkpoint_seq} + "
                f"{report.replayed} replayed journal record(s) "
                f"in {report.duration_s * 1000.0:.1f} ms"
            )
            if report.replay_errors:
                print(
                    f"  {report.replay_errors} record(s) re-raised "
                    "during replay (counted, state unaffected)"
                )
            if report.torn_records_dropped:
                print(
                    f"  {report.torn_records_dropped} torn record(s) "
                    "truncated from the journal tail"
                )
            if report.checkpoints_discarded:
                print(
                    f"  {report.checkpoints_discarded} corrupt "
                    "checkpoint generation(s) quarantined"
                )
            if report.lock_stolen:
                print("  stale lock stolen from a dead holder")
    finally:
        manager.close()
    return 0


def _cmd_obs(args) -> int:
    """Profile the pipeline stages over a deterministic scenario.

    Attaches an :class:`~repro.obs.Observability` to an in-process
    engine, replays a seeded fleet (or a saved one), and prints the
    ring-buffer event log as JSON lines — ``--summary`` prints the
    per-stage duration summary and consolidated metrics snapshot
    instead.
    """
    import json

    import numpy as np

    from .obs import EventLog, Observability
    from .serving import DriftMonitor, EngineConfig, FleetEngine

    fleet = None
    if args.input:
        from .fleet import load_fleet

        fleet = load_fleet(args.input, stem=args.stem)
    t_v = args.t_v if args.t_v is not None else (
        fleet.t_v if fleet is not None else 200_000.0
    )
    engine = FleetEngine(
        t_v=t_v,
        window=args.window,
        algorithm=args.algorithm,
        monitor=DriftMonitor(min_samples=1),
        config=EngineConfig(max_workers=1, executor="serial"),
    )
    obs = Observability(events=EventLog(capacity=args.capacity))
    engine.attach_observability(obs)

    if fleet is not None:
        for vehicle in fleet.vehicles:
            engine.service.register_vehicle(vehicle.vehicle_id)
            engine.ingest_history(vehicle.vehicle_id, vehicle.usage)
    else:
        rng = np.random.default_rng(args.seed)
        for i in range(args.vehicles):
            vehicle_id = f"v{i:02d}"
            engine.service.register_vehicle(vehicle_id)
            engine.ingest_history(
                vehicle_id, rng.uniform(10_000, 28_000, size=args.days)
            )
    forecasts = engine.predict_all()

    if args.summary:
        print(
            json.dumps(
                {
                    "forecasts": len(forecasts),
                    "stages": obs.stage_summaries(),
                    "metrics": obs.registry.snapshot(),
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(obs.events.to_jsonl(args.tail))
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from .serving import EngineConfig, FleetEngine
    from .serving.gateway import FleetGateway, GatewayConfig

    gateway_config = GatewayConfig(
        host=args.host,
        port=args.port,
        batch_window_s=args.batch_window_ms / 1000.0,
        max_batch_size=args.max_batch,
        max_queue=args.max_queue,
        default_deadline_s=args.deadline_ms / 1000.0,
        tracing=not args.no_tracing,
    )
    service_kwargs = {}
    if args.resilient:
        from .serving import CircuitBreaker, IngestionGuard, RetryPolicy

        service_kwargs = dict(
            guard=IngestionGuard(),
            breaker=CircuitBreaker(),
            retry=RetryPolicy(),
        )
    if args.store:
        from .serving import ModelStore

        service_kwargs["store"] = ModelStore(args.store)

    fleet = None
    if args.input:
        from .fleet import load_fleet

        fleet = load_fleet(args.input, stem=args.stem)
    t_v = args.t_v if args.t_v is not None else (
        fleet.t_v if fleet is not None else 2_000_000.0
    )

    manager = None
    if args.shards > 1:
        # Shared-nothing pool: N worker processes, each owning the
        # vehicles the consistent-hash router assigns it, with its own
        # model-store / journal / lifecycle partition.  The factory
        # runs inside each forked worker; the preloaded fleet crosses
        # over through fork memory, no pickling.
        from .serving.executor import default_max_workers
        from .serving.sharding import (
            ShardRouter,
            ShardedFleetEngine,
            build_shard_engine,
        )

        router = ShardRouter(args.shards)
        per_shard_workers = (
            args.max_workers
            if args.max_workers is not None
            else max(1, default_max_workers() // args.shards)
        )

        def engine_factory(shard_index: int):
            shard_engine = build_shard_engine(
                shard_index,
                config=EngineConfig(max_workers=per_shard_workers),
                store_dir=args.store,
                resilient=args.resilient,
                monitor=True,
                service_kwargs=dict(
                    t_v=t_v, window=args.window, algorithm=args.algorithm
                ),
            )
            if fleet is not None:
                for vehicle in fleet.vehicles:
                    if router.shard_for(vehicle.vehicle_id) == shard_index:
                        shard_engine.service.register_vehicle(
                            vehicle.vehicle_id
                        )
                        shard_engine.ingest_history(
                            vehicle.vehicle_id, vehicle.usage
                        )
            return shard_engine

        engine = ShardedFleetEngine(
            args.shards,
            engine_factory,
            router=router,
            lifecycle=True,
            durable_dir=args.durable,
        )
        counts = {index: 0 for index in range(args.shards)}
        for vehicle_id in engine.vehicle_ids:
            counts[router.shard_for(vehicle_id)] += 1
        print(
            f"sharded pool: {args.shards} worker processes, "
            f"{per_shard_workers} engine worker(s) each, vehicles/shard "
            + "/".join(str(counts[index]) for index in sorted(counts))
        )
        if fleet is not None:
            print(
                f"preloaded {len(fleet.vehicles)} vehicles from {args.input}"
            )
        if args.durable:
            print(
                f"durable state dir {args.durable}: per-shard partitions "
                + ", ".join(
                    f"shard-{index:02d}" for index in range(args.shards)
                )
                + " recovered in parallel — journaling live traffic"
            )
    else:
        engine = FleetEngine(
            t_v=t_v,
            window=args.window,
            algorithm=args.algorithm,
            config=EngineConfig(max_workers=args.max_workers),
            **service_kwargs,
        )
        if fleet is not None:
            for vehicle in fleet.vehicles:
                engine.service.register_vehicle(vehicle.vehicle_id)
                engine.ingest_history(vehicle.vehicle_id, vehicle.usage)
            print(
                f"preloaded {len(fleet.vehicles)} vehicles from {args.input}"
            )

        # Passive until an admin endpoint (or a drift alert sweep)
        # invokes it, so the controller is always on: /v1/lifecycle
        # works on any served fleet instead of 503ing.  Registers
        # itself on the engine.
        from .lifecycle import LifecycleController

        LifecycleController(engine)

        if args.durable:
            from .durability import LockHeldError, RecoveryManager

            manager = RecoveryManager(args.durable, engine.service)
            try:
                report = manager.recover()
            except LockHeldError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
            engine.attach_durability(manager)
            print(
                f"durable state dir {args.durable}: checkpoint seq "
                f"{report.checkpoint_seq}, {report.replayed} journal "
                "record(s) replayed — journaling live traffic"
            )

    gateway = FleetGateway(engine, gateway_config)

    async def _run() -> None:
        await gateway.serve()
        host, port = gateway.address
        print(f"repro gateway listening on http://{host}:{port}")
        print(
            "endpoints: POST /v1/ingest  GET /v1/predict/{id}  "
            "POST /v1/predict:batch  GET /v1/health  GET /v1/metrics  "
            "GET /v1/trace/{request_id}  GET /v1/lifecycle"
        )
        await gateway.run_until_closed()

    # SIGINT lands differently by version: 3.11+ cancels the main task
    # (run_until_closed absorbs it and drains, asyncio.run returns),
    # 3.10 re-raises KeyboardInterrupt after the same drain.
    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    finally:
        if manager is not None:
            manager.close()
            print(f"durable state checkpointed to {args.durable}")
        if args.shards > 1:
            # Workers checkpoint their own partitions on shutdown.
            engine.close()
            if args.durable:
                print(
                    f"durable shard partitions checkpointed to {args.durable}"
                )
    print("gateway drained")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Next-maintenance prediction for industrial vehicles "
            "(EDBT/ICDT 2020 reproduction)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_fleet_args(p, with_input=False):
        p.add_argument("--vehicles", type=int, default=24)
        p.add_argument("--t-v", dest="t_v", type=float, default=2_000_000.0)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--stem", default="fleet")
        if with_input:
            p.add_argument(
                "--input", default=None, help="directory with a saved fleet"
            )

    generate = sub.add_parser(
        "generate", help="generate the synthetic fleet and save it as CSV"
    )
    add_fleet_args(generate)
    generate.add_argument("--output", required=True, help="output directory")
    generate.set_defaults(func=_cmd_generate)

    calibrate = sub.add_parser(
        "calibrate", help="print fleet calibration statistics"
    )
    add_fleet_args(calibrate, with_input=True)
    calibrate.set_defaults(func=_cmd_calibrate)

    evaluate = sub.add_parser(
        "evaluate", help="regenerate one table/figure of the paper"
    )
    evaluate.add_argument("experiment", choices=_EXPERIMENTS)
    evaluate.add_argument("--vehicles", type=int, default=24)
    evaluate.add_argument("--seed", type=int, default=0)
    evaluate.add_argument(
        "--old-vehicles",
        type=int,
        default=None,
        help="subset size for the old-vehicle experiments",
    )
    evaluate.add_argument(
        "--paper-grids",
        action="store_true",
        help="use the paper's full hyper-parameter grids (slow)",
    )
    evaluate.add_argument(
        "--max-workers",
        type=_positive_int,
        default=None,
        help="fan per-vehicle runs out over N workers (default: serial)",
    )
    evaluate.add_argument(
        "--executor",
        choices=("serial", "thread", "process"),
        default="thread",
        help="worker pool kind used with --max-workers",
    )
    evaluate.set_defaults(func=_cmd_evaluate)

    predict = sub.add_parser(
        "predict", help="forecast one vehicle's next maintenance"
    )
    predict.add_argument("--input", required=True, help="saved fleet directory")
    predict.add_argument("--stem", default="fleet")
    predict.add_argument("--vehicle", required=True)
    predict.add_argument("--algorithm", default="RF")
    predict.add_argument("--window", type=int, default=6)
    predict.set_defaults(func=_cmd_predict)

    chaos = sub.add_parser(
        "chaos",
        help=(
            "replay a seeded fault-injection scenario and print the "
            "fleet health report"
        ),
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--vehicles", type=int, default=6)
    chaos.add_argument("--days", type=int, default=60)
    chaos.add_argument("--t-v", dest="t_v", type=float, default=200_000.0)
    chaos.add_argument(
        "--json",
        action="store_true",
        help="emit the health report, forecasts and checks as JSON",
    )
    chaos.add_argument(
        "--kill-after",
        type=_positive_int,
        default=None,
        metavar="N",
        help=(
            "run the SIGKILL kill-recovery drill instead: kill a "
            "journaling worker after N ops, recover, exit 1 on any "
            "state divergence"
        ),
    )
    chaos.add_argument(
        "--state-dir",
        default=None,
        help=(
            "work dir for --kill-after (left behind for inspection; "
            "default: a fresh temp dir)"
        ),
    )
    chaos.add_argument(
        "--torn-tail",
        action="store_true",
        help="with --kill-after, also tear the journal tail pre-recovery",
    )
    chaos.add_argument(
        "--drift",
        action="store_true",
        help=(
            "run the drift-injection lifecycle drill instead: inject "
            "concept drift, require gated promotions and error "
            "recovery, exit 1 on any failed check"
        ),
    )
    chaos.set_defaults(func=_cmd_chaos)

    lifecycle = sub.add_parser(
        "lifecycle",
        help=(
            "drive the model-lifecycle controller over a seeded drift "
            "scenario: status, run-once, or watch"
        ),
    )
    lifecycle.add_argument("mode", choices=("status", "run-once", "watch"))
    lifecycle.add_argument("--seed", type=int, default=0)
    lifecycle.add_argument("--vehicles", type=int, default=6)
    lifecycle.add_argument(
        "--drifted",
        type=int,
        default=2,
        help="how many vehicles shift regime after the warm phase",
    )
    lifecycle.add_argument("--warm-days", type=int, default=70)
    lifecycle.add_argument("--drift-days", type=int, default=45)
    lifecycle.add_argument("--drift-factor", type=float, default=2.0)
    lifecycle.add_argument(
        "--ticks",
        type=_positive_int,
        default=40,
        help="watch: how many further days to follow (one sweep each)",
    )
    lifecycle.add_argument(
        "--json", action="store_true", help="emit JSON instead of text"
    )
    lifecycle.set_defaults(func=_cmd_lifecycle)

    recover = sub.add_parser(
        "recover",
        help=(
            "recover a durable state dir (journal + checkpoints), or "
            "inspect it read-only with --dry-run"
        ),
    )
    recover.add_argument(
        "--state", required=True, help="durable state directory"
    )
    recover.add_argument(
        "--dry-run",
        action="store_true",
        help="read-only: scan journal/checkpoints/lock, change nothing",
    )
    recover.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    recover.add_argument(
        "--t-v",
        dest="t_v",
        type=float,
        default=200_000.0,
        help="service config when no checkpoint exists yet",
    )
    recover.add_argument("--window", type=int, default=0)
    recover.add_argument("--algorithm", default="LR")
    recover.set_defaults(func=_cmd_recover)

    serve = sub.add_parser(
        "serve",
        help=(
            "run the asyncio HTTP gateway (micro-batching, admission "
            "control, deadlines) in front of a fleet engine"
        ),
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8080, help="0 picks a free port"
    )
    serve.add_argument(
        "--input", default=None, help="saved fleet directory to preload"
    )
    serve.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help=(
            "model artifact directory; enables versioned promotion, "
            "rollback and pinning via /v1/lifecycle"
        ),
    )
    serve.add_argument("--stem", default="fleet")
    serve.add_argument(
        "--t-v",
        dest="t_v",
        type=float,
        default=None,
        help="usage budget per cycle (default: preloaded fleet's, else 2e6)",
    )
    serve.add_argument("--window", type=int, default=6)
    serve.add_argument("--algorithm", default="RF")
    serve.add_argument(
        "--batch-window-ms",
        type=float,
        default=5.0,
        help="micro-batch coalescing window (0 disables batching)",
    )
    serve.add_argument(
        "--max-batch",
        type=_positive_int,
        default=64,
        help="max predict requests per coalesced batch",
    )
    serve.add_argument(
        "--max-queue",
        type=_positive_int,
        default=256,
        help="bounded request queue depth (429 beyond it)",
    )
    serve.add_argument(
        "--deadline-ms",
        type=float,
        default=5000.0,
        help="default per-request deadline (504 once passed)",
    )
    serve.add_argument(
        "--max-workers",
        type=_positive_int,
        default=None,
        help=(
            "engine worker bound for training/prediction fan-out "
            "(sharded: per shard, default host workers / shards)"
        ),
    )
    serve.add_argument(
        "--shards",
        type=_positive_int,
        default=1,
        help=(
            "shared-nothing engine shards (worker processes) with "
            "consistent-hash vehicle routing; 1 = single in-process "
            "engine"
        ),
    )
    serve.add_argument(
        "--resilient",
        action="store_true",
        help="attach IngestionGuard + CircuitBreaker + RetryPolicy",
    )
    serve.add_argument(
        "--no-tracing",
        action="store_true",
        help="disable per-request trace recording (/v1/trace/{id})",
    )
    serve.add_argument(
        "--durable",
        default=None,
        metavar="DIR",
        help=(
            "durable state directory: recover from it before serving, "
            "journal live ingest traffic, checkpoint on shutdown"
        ),
    )
    serve.set_defaults(func=_cmd_serve)

    obs = sub.add_parser(
        "obs",
        help=(
            "profile the pipeline stages over a deterministic scenario "
            "and dump the event log as JSON lines"
        ),
    )
    obs.add_argument("--seed", type=int, default=0)
    obs.add_argument("--vehicles", type=int, default=6)
    obs.add_argument("--days", type=int, default=60)
    obs.add_argument(
        "--t-v",
        dest="t_v",
        type=float,
        default=None,
        help="usage budget per cycle (default: preloaded fleet's, else 2e5)",
    )
    obs.add_argument("--window", type=int, default=0)
    obs.add_argument("--algorithm", default="LR")
    obs.add_argument(
        "--input", default=None, help="saved fleet directory to replay"
    )
    obs.add_argument("--stem", default="fleet")
    obs.add_argument(
        "--capacity",
        type=_positive_int,
        default=4096,
        help="event-log ring capacity",
    )
    obs.add_argument(
        "--tail",
        type=_positive_int,
        default=None,
        help="emit only the most recent N event records",
    )
    obs.add_argument(
        "--summary",
        action="store_true",
        help="print per-stage summaries + metrics snapshot instead of lines",
    )
    obs.set_defaults(func=_cmd_obs)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
