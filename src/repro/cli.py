"""Command-line interface.

Operational entry points for the reproduction:

* ``generate``  — write the synthetic fleet to CSV/JSON;
* ``calibrate`` — print the fleet calibration report;
* ``evaluate``  — regenerate a table/figure of the paper;
* ``predict``   — train a model for one vehicle of a stored fleet and
  forecast its next maintenance.

Usage: ``python -m repro <command> [options]`` (see ``--help`` per
command).
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["build_parser", "main"]


def _cmd_generate(args) -> int:
    from .fleet import FleetGenerator, calibrate, save_fleet

    fleet = FleetGenerator(
        n_vehicles=args.vehicles, t_v=args.t_v, seed=args.seed
    ).generate()
    usage_path, meta_path = save_fleet(fleet, args.output, stem=args.stem)
    print(f"Wrote {usage_path}")
    print(f"Wrote {meta_path}")
    print()
    print(calibrate(fleet).summary())
    return 0


def _cmd_calibrate(args) -> int:
    from .fleet import FleetGenerator, calibrate, load_fleet

    if args.input:
        fleet = load_fleet(args.input, stem=args.stem)
    else:
        fleet = FleetGenerator(
            n_vehicles=args.vehicles, t_v=args.t_v, seed=args.seed
        ).generate()
    print(calibrate(fleet).summary())
    return 0


_EXPERIMENTS = (
    "table1",
    "table2",
    "table3",
    "figure4",
    "figure5",
    "timing",
    "model-selection",
    "all",
)


def _cmd_evaluate(args) -> int:
    from .experiments import (
        ExperimentSetup,
        run_figure4,
        run_figure5,
        run_model_selection,
        run_table1,
        run_table2,
        run_table3,
        run_timing,
    )

    setup = ExperimentSetup(
        seed=args.seed,
        n_vehicles=args.vehicles,
        fast=not args.paper_grids,
        n_old_vehicles=args.old_vehicles,
        max_workers=args.max_workers,
        executor_kind=args.executor,
    )

    def render_all() -> list[str]:
        figure4 = run_figure4(setup)
        table2 = run_table2(setup, figure4)
        return [
            run_table1(setup).render(),
            figure4.render(),
            table2.render(),
            run_figure5(setup, table2).render(),
            run_table3(setup).render(),
            run_model_selection(setup).render(),
            run_timing(setup).render(),
        ]

    if args.experiment == "all":
        for text in render_all():
            print(text)
            print()
        return 0
    if args.experiment == "table1":
        result = run_table1(setup)
    elif args.experiment == "table3":
        result = run_table3(setup)
    elif args.experiment == "timing":
        result = run_timing(setup)
    elif args.experiment == "model-selection":
        result = run_model_selection(setup)
    else:
        figure4 = run_figure4(setup)
        if args.experiment == "figure4":
            result = figure4
        elif args.experiment == "table2":
            result = run_table2(setup, figure4)
        else:  # figure5
            result = run_figure5(setup, run_table2(setup, figure4))
    print(result.render())
    return 0


def _cmd_predict(args) -> int:
    import datetime as dt

    from .core import FleetMaintenancePlanner, VehicleSeries, make_predictor
    from .dataprep import build_relational_dataset
    from .fleet import load_fleet

    fleet = load_fleet(args.input, stem=args.stem)
    try:
        vehicle = fleet[args.vehicle]
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2
    series = VehicleSeries.from_vehicle(vehicle)
    dataset = build_relational_dataset(series.bundle, window=args.window)
    if dataset.n_records == 0:
        print(
            f"Vehicle {args.vehicle!r} has no completed cycles to train on.",
            file=sys.stderr,
        )
        return 2
    predictor = make_predictor(args.algorithm)
    predictor.fit(dataset, usage=series.usage)
    forecast = FleetMaintenancePlanner.forecast_vehicle(
        series, predictor, window=args.window
    )
    due = vehicle.date_of_day(series.n_days - 1) + dt.timedelta(
        days=int(round(forecast.days_to_maintenance))
    )
    print(f"vehicle          : {forecast.vehicle_id}")
    print(f"category         : {forecast.category.value}")
    print(f"budget left      : {forecast.usage_left:,.0f} s")
    print(f"days to maint.   : {forecast.days_to_maintenance:.1f}")
    print(f"predicted due    : {due.isoformat()}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Next-maintenance prediction for industrial vehicles "
            "(EDBT/ICDT 2020 reproduction)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_fleet_args(p, with_input=False):
        p.add_argument("--vehicles", type=int, default=24)
        p.add_argument("--t-v", dest="t_v", type=float, default=2_000_000.0)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--stem", default="fleet")
        if with_input:
            p.add_argument(
                "--input", default=None, help="directory with a saved fleet"
            )

    generate = sub.add_parser(
        "generate", help="generate the synthetic fleet and save it as CSV"
    )
    add_fleet_args(generate)
    generate.add_argument("--output", required=True, help="output directory")
    generate.set_defaults(func=_cmd_generate)

    calibrate = sub.add_parser(
        "calibrate", help="print fleet calibration statistics"
    )
    add_fleet_args(calibrate, with_input=True)
    calibrate.set_defaults(func=_cmd_calibrate)

    evaluate = sub.add_parser(
        "evaluate", help="regenerate one table/figure of the paper"
    )
    evaluate.add_argument("experiment", choices=_EXPERIMENTS)
    evaluate.add_argument("--vehicles", type=int, default=24)
    evaluate.add_argument("--seed", type=int, default=0)
    evaluate.add_argument(
        "--old-vehicles",
        type=int,
        default=None,
        help="subset size for the old-vehicle experiments",
    )
    evaluate.add_argument(
        "--paper-grids",
        action="store_true",
        help="use the paper's full hyper-parameter grids (slow)",
    )
    evaluate.add_argument(
        "--max-workers",
        type=int,
        default=None,
        help="fan per-vehicle runs out over N workers (default: serial)",
    )
    evaluate.add_argument(
        "--executor",
        choices=("serial", "thread", "process"),
        default="thread",
        help="worker pool kind used with --max-workers",
    )
    evaluate.set_defaults(func=_cmd_evaluate)

    predict = sub.add_parser(
        "predict", help="forecast one vehicle's next maintenance"
    )
    predict.add_argument("--input", required=True, help="saved fleet directory")
    predict.add_argument("--stem", default="fleet")
    predict.add_argument("--vehicle", required=True)
    predict.add_argument("--algorithm", default="RF")
    predict.add_argument("--window", type=int, default=6)
    predict.set_defaults(func=_cmd_predict)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
