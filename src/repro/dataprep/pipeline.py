"""End-to-end data preparation pipeline (the five steps of Section 3).

"To prepare vehicle data for the present study, the input CAN bus data
goes through a series of steps: (i) Data Cleaning, (ii) Normalization,
(iii) Aggregation, (iv) Enrichment and (v) Transformation."

The pipeline's entry points accept either raw controller reports (the
telemetry path) or an already-aggregated raw daily array, and emit a
:class:`PreparedVehicle` exposing the clean series, the enriched derived
series, and relational-dataset builders.

Note on ordering: aggregation necessarily precedes cleaning when starting
from reports (you can only see a *daily* gap after aggregating to days);
the paper lists the conceptual steps, not a strict execution order.
Normalization here is *recorded* as a feature-space concern: cycle
arithmetic (L, D) must stay in physical seconds against ``T_v``, so
scaling is applied by the model pipelines at fit time rather than
destructively to the stored series.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.series import VehicleSeries
from .aggregation import aggregate_reports_daily
from .cleaning import CleaningReport, clean_daily_usage
from .enrichment import EnrichedSeries, enrich_usage
from .normalization import UtilizationNormalizer
from .transformation import (
    RelationalDataset,
    augment_with_time_shifts,
    build_relational_dataset,
)

__all__ = ["PreparedVehicle", "DataPreparationPipeline"]


@dataclass
class PreparedVehicle:
    """Everything data preparation produces for one vehicle."""

    vehicle_id: str
    series: VehicleSeries
    enriched: EnrichedSeries
    cleaning_report: CleaningReport
    normalizer: UtilizationNormalizer

    @property
    def usage(self) -> np.ndarray:
        return self.series.usage

    def relational(
        self,
        window: int,
        *,
        day_range: tuple[int, int] | None = None,
        require_labels: bool = True,
    ) -> RelationalDataset:
        """Windowed records from the natural time reference."""
        return build_relational_dataset(
            self.series.bundle,
            window,
            require_labels=require_labels,
            day_range=day_range,
        )

    def relational_augmented(
        self,
        window: int,
        *,
        n_shifts: int,
        rng=None,
        max_shift: int | None = None,
        day_range: tuple[int, int] | None = None,
    ) -> RelationalDataset:
        """Windowed records including time-shift re-sampled copies."""
        return augment_with_time_shifts(
            self.series.usage,
            self.series.t_v,
            window,
            n_shifts=n_shifts,
            rng=rng,
            max_shift=max_shift,
            day_range=day_range,
        )


class DataPreparationPipeline:
    """Configurable five-step preparation for fleet vehicles.

    Parameters
    ----------
    missing_policy, inconsistent_policy:
        Cleaning behaviour (see :mod:`repro.dataprep.cleaning`).
    normalization_mode:
        ``"capacity"`` or ``"minmax"`` — fitted per vehicle and stored on
        the :class:`PreparedVehicle` for model pipelines to use.
    """

    def __init__(
        self,
        missing_policy: str = "zero",
        inconsistent_policy: str = "clip",
        normalization_mode: str = "capacity",
    ):
        self.missing_policy = missing_policy
        self.inconsistent_policy = inconsistent_policy
        self.normalization_mode = normalization_mode

    def prepare_daily(
        self, vehicle_id: str, raw_daily, t_v: float
    ) -> PreparedVehicle:
        """Prepare from an already-aggregated raw daily array."""
        clean, report = clean_daily_usage(
            raw_daily,
            missing_policy=self.missing_policy,
            inconsistent_policy=self.inconsistent_policy,
        )
        normalizer = UtilizationNormalizer(self.normalization_mode).fit(clean)
        enriched = enrich_usage(clean, t_v)
        series = VehicleSeries(vehicle_id=vehicle_id, usage=clean, t_v=t_v)
        return PreparedVehicle(
            vehicle_id=vehicle_id,
            series=series,
            enriched=enriched,
            cleaning_report=report,
            normalizer=normalizer,
        )

    def prepare_reports(
        self,
        vehicle_id: str,
        reports,
        t_v: float,
        n_days: int | None = None,
    ) -> PreparedVehicle:
        """Prepare from raw controller usage reports (telemetry path)."""
        raw_daily = aggregate_reports_daily(reports, n_days=n_days)
        return self.prepare_daily(vehicle_id, raw_daily, t_v)

    def prepare_fleet(self, fleet) -> dict[str, PreparedVehicle]:
        """Prepare every vehicle of a :class:`repro.fleet.generator.Fleet`."""
        return {
            vehicle.vehicle_id: self.prepare_daily(
                vehicle.vehicle_id, vehicle.usage, vehicle.spec.t_v
            )
            for vehicle in fleet
        }
