"""Data aggregation: controller reports -> daily utilization series.

Step (iii) of Section 3: aggregation "at the desired time granularity";
"in our case of study, we primarily focus on daily-usage time series
U(t), i.e., the amount of time each vehicle worked on each day".
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "aggregate_reports_daily",
    "aggregate_daily_to_weekly",
    "SECONDS_PER_DAY",
]

SECONDS_PER_DAY = 86_400.0


def aggregate_reports_daily(reports, n_days: int | None = None) -> np.ndarray:
    """Sum report working seconds into a dense daily array.

    A report's working time is attributed to the day containing its
    ``period_start``.  Days never covered by any report are NaN (missing,
    for the cleaning stage to resolve); covered days accumulate, so
    duplicated uploads produce the over-86400 inconsistencies cleaning
    must also handle.

    Parameters
    ----------
    reports:
        Iterable of :class:`repro.telemetry.controller.UsageReport`.
    n_days:
        Output length; default: up to the last reported day.
    """
    totals: dict[int, float] = {}
    for report in reports:
        if report.period_end < report.period_start:
            raise ValueError(
                f"Report for {report.vehicle_id!r} has period_end before "
                "period_start."
            )
        day = int(report.period_start // SECONDS_PER_DAY)
        totals[day] = totals.get(day, 0.0) + float(report.working_seconds)

    if n_days is None:
        n_days = (max(totals) + 1) if totals else 0
    if n_days < 0:
        raise ValueError(f"n_days must be >= 0, got {n_days}.")
    series = np.full(n_days, np.nan)
    for day, seconds in totals.items():
        if 0 <= day < n_days:
            series[day] = seconds
    return series


def aggregate_daily_to_weekly(daily: np.ndarray) -> np.ndarray:
    """Sum a daily series into weeks (trailing partial week included).

    Used by the exploration reports; NaN days propagate into their week.
    """
    daily = np.asarray(daily, dtype=np.float64)
    if daily.ndim != 1:
        raise ValueError(f"daily must be 1-D, got shape {daily.shape}.")
    n_weeks = int(np.ceil(daily.size / 7))
    out = np.zeros(n_weeks)
    for week in range(n_weeks):
        out[week] = daily[7 * week : 7 * (week + 1)].sum()
    return out
