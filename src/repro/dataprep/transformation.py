"""Data transformation: windowed relational datasets + augmentation.

Step (v) of Section 3, and the data engineering of Section 4: "each
record corresponds to a different day t and consists of a set of
attributes denoting the past utilization levels ... the attributes
include the values U_v(x) [t-W <= x <= t-1].  Along with the utilization
level series, the attributes include the current time left until the
next maintenance, i.e., L_v(t), and the target variable ... D_v(t)."

Also implements the paper's time-shift re-sampling: "Since we do not
know when vehicle actually had the maintenance done, we can shift the
time reference ... We randomly re-sampled multiple times the time
reference starting from different time points within the training data
and build the utilization series."
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from ..core.cycles import SeriesBundle, derive_series

__all__ = [
    "RelationalDataset",
    "build_relational_dataset",
    "augment_with_time_shifts",
    "feature_names_for_window",
]


def feature_names_for_window(window: int) -> list[str]:
    """Column names of the relational layout: ``L(t)`` then the lags."""
    return ["L(t)"] + [f"U(t-{lag})" for lag in range(1, window + 1)]


@dataclass(frozen=True)
class RelationalDataset:
    """A windowed supervised dataset for one (or many stacked) vehicles.

    Attributes
    ----------
    X:
        Feature matrix, columns ``[L(t), U(t-1), ..., U(t-W)]``.
    y:
        Target ``D_v(t)``, days to next maintenance.
    t_index:
        Source day index of each record (per originating series).
    window:
        The window size ``W`` (0 = univariate: only ``L(t)``).
    """

    X: np.ndarray
    y: np.ndarray
    t_index: np.ndarray
    window: int

    def __post_init__(self) -> None:
        if self.X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {self.X.shape}.")
        if self.X.shape[0] != self.y.shape[0] != self.t_index.shape[0]:
            raise ValueError("X, y and t_index must have equal lengths.")
        if self.X.shape[1] != self.window + 1:
            raise ValueError(
                f"X has {self.X.shape[1]} columns; window={self.window} "
                f"requires {self.window + 1}."
            )

    @property
    def n_records(self) -> int:
        return int(self.X.shape[0])

    @property
    def feature_names(self) -> list[str]:
        return feature_names_for_window(self.window)

    def restrict_to_horizon(self, horizon: Iterable[int]) -> "RelationalDataset":
        """Keep only records whose target lies in ``horizon``.

        This is the "trained on D = {1, ..., 29}" restriction of Table 1.
        """
        horizon_list = [int(d) for d in horizon]
        if not horizon_list:
            raise ValueError("horizon must be non-empty.")
        mask = np.isin(self.y.astype(np.int64), horizon_list)
        return RelationalDataset(
            X=self.X[mask],
            y=self.y[mask],
            t_index=self.t_index[mask],
            window=self.window,
        )

    @staticmethod
    def concatenate(datasets: "Iterable[RelationalDataset]") -> "RelationalDataset":
        """Stack datasets with identical windows (augmentation, cold start)."""
        datasets = list(datasets)
        if not datasets:
            raise ValueError("Nothing to concatenate.")
        windows = {d.window for d in datasets}
        if len(windows) != 1:
            raise ValueError(
                f"Cannot concatenate datasets with mixed windows {windows}."
            )
        return RelationalDataset(
            X=np.vstack([d.X for d in datasets]),
            y=np.concatenate([d.y for d in datasets]),
            t_index=np.concatenate([d.t_index for d in datasets]),
            window=datasets[0].window,
        )


def build_relational_dataset(
    bundle: SeriesBundle,
    window: int,
    *,
    require_labels: bool = True,
    day_range: tuple[int, int] | None = None,
) -> RelationalDataset:
    """Materialize the windowed records of a derived series bundle.

    Parameters
    ----------
    bundle:
        Output of :func:`repro.core.cycles.derive_series`.
    window:
        ``W``: number of past utilization days included as features.
        ``0`` gives the univariate model of Eq. 7; ``W > 0`` the
        multivariate model of Eq. 8.
    require_labels:
        Keep only days with a defined target (drop the incomplete final
        cycle).  Set false to build feature rows for live prediction.
    day_range:
        Optional ``(lo, hi)`` half-open day-index bounds, used to carve
        out temporal train/test regions before building records.

    Notes
    -----
    A record for day ``t`` exists only when the full lag window
    ``U(t-W) ... U(t-1)`` is observed (``t >= window``) and ``L(t)`` is
    defined (``t`` belongs to a cycle).
    """
    if window < 0:
        raise ValueError(f"window must be >= 0, got {window}.")
    usage = bundle.usage
    n = usage.size
    lo, hi = (0, n) if day_range is None else day_range
    if not 0 <= lo <= hi <= n:
        raise ValueError(f"day_range {day_range} outside [0, {n}].")

    days = np.arange(max(lo, window), hi)
    if days.size == 0:
        return RelationalDataset(
            X=np.zeros((0, window + 1)),
            y=np.zeros(0),
            t_index=np.zeros(0, dtype=np.intp),
            window=window,
        )

    valid = np.isfinite(bundle.usage_left[days])
    if require_labels:
        valid &= np.isfinite(bundle.days_to_maintenance[days])
    days = days[valid]

    X = np.empty((days.size, window + 1))
    X[:, 0] = bundle.usage_left[days]
    for lag in range(1, window + 1):
        X[:, lag] = usage[days - lag]
    y = bundle.days_to_maintenance[days]
    return RelationalDataset(
        X=X, y=y, t_index=days.astype(np.intp), window=window
    )


def augment_with_time_shifts(
    usage,
    t_v: float,
    window: int,
    *,
    n_shifts: int = 0,
    rng=None,
    max_shift: int | None = None,
    day_range: tuple[int, int] | None = None,
) -> RelationalDataset:
    """Base records plus records from randomly re-anchored time references.

    For every sampled shift ``s``, budget accumulation restarts at day
    ``s``, producing different — but equally valid — cycle boundaries and
    therefore new ``(L, D)`` labelings of the same utilization history.

    Parameters
    ----------
    usage:
        Clean daily utilization series.
    t_v:
        Budget per cycle.
    window:
        Lag window ``W``.
    n_shifts:
        How many extra re-anchored copies to generate (0 = no
        augmentation, just the natural reference).
    rng:
        Seed or generator for the shift draws.
    max_shift:
        Largest shift to sample (exclusive); defaults to the length of
        the series region.  Keep this inside the *training* region to
        avoid leaking test-period structure.
    day_range:
        Forwarded to :func:`build_relational_dataset`.
    """
    usage = np.asarray(usage, dtype=np.float64)
    if n_shifts < 0:
        raise ValueError(f"n_shifts must be >= 0, got {n_shifts}.")
    rng = np.random.default_rng(rng)
    datasets = [
        build_relational_dataset(
            derive_series(usage, t_v, start=0), window, day_range=day_range
        )
    ]
    if n_shifts:
        limit = usage.size if max_shift is None else max_shift
        limit = min(limit, usage.size)
        if limit <= 1:
            raise ValueError(
                "Series too short to draw time shifts (max_shift <= 1)."
            )
        shifts = rng.integers(1, limit, size=n_shifts)
        for shift in shifts:
            bundle = derive_series(usage, t_v, start=int(shift))
            datasets.append(
                build_relational_dataset(bundle, window, day_range=day_range)
            )
    return RelationalDataset.concatenate(datasets)
