"""Data preparation: the five-step chain of Section 3 of the paper.

Cleaning, normalization, aggregation, enrichment and transformation of
raw CAN-derived usage data into the windowed relational datasets the
regression models consume.
"""

from .aggregation import aggregate_daily_to_weekly, aggregate_reports_daily
from .cleaning import (
    INCONSISTENT_POLICIES,
    MISSING_POLICIES,
    CleaningReport,
    clean_daily_usage,
)
from .enrichment import EnrichedSeries, enrich_usage, rolling_mean, rolling_std
from .normalization import UtilizationNormalizer, scale_by_capacity
from .pipeline import DataPreparationPipeline, PreparedVehicle
from .transformation import (
    RelationalDataset,
    augment_with_time_shifts,
    build_relational_dataset,
    feature_names_for_window,
)

__all__ = [
    "aggregate_daily_to_weekly",
    "aggregate_reports_daily",
    "CleaningReport",
    "clean_daily_usage",
    "MISSING_POLICIES",
    "INCONSISTENT_POLICIES",
    "EnrichedSeries",
    "enrich_usage",
    "rolling_mean",
    "rolling_std",
    "UtilizationNormalizer",
    "scale_by_capacity",
    "DataPreparationPipeline",
    "PreparedVehicle",
    "RelationalDataset",
    "augment_with_time_shifts",
    "build_relational_dataset",
    "feature_names_for_window",
]
