"""Data normalization: scaling utilization values to a uniform range.

Step (ii) of Section 3: "Data normalization allows us to scale the values
of the utilization times to a uniform value range (e.g., from 0 to 1)
thus avoiding to introduce bias in regression model learning."

Two modes are offered:

* **capacity scaling** — divide by the physical daily capacity
  (86 400 s), which needs no fitting and is identical for train and test;
* **min-max scaling** — fit the observed range on training data only,
  via :class:`repro.learn.preprocessing.MinMaxScaler`.
"""

from __future__ import annotations

import numpy as np

from ..learn.preprocessing import MinMaxScaler

__all__ = ["UtilizationNormalizer", "scale_by_capacity", "SECONDS_PER_DAY"]

SECONDS_PER_DAY = 86_400.0


def scale_by_capacity(usage) -> np.ndarray:
    """Daily seconds -> fraction of a 24 h day, in ``[0, 1]``."""
    usage = np.asarray(usage, dtype=np.float64)
    return usage / SECONDS_PER_DAY


class UtilizationNormalizer:
    """Fit/transform normalizer for 1-D utilization series.

    Parameters
    ----------
    mode:
        ``"capacity"`` (stateless division by 86 400) or ``"minmax"``
        (range fitted on the training series).
    """

    def __init__(self, mode: str = "capacity"):
        if mode not in ("capacity", "minmax"):
            raise ValueError(
                f"mode must be 'capacity' or 'minmax', got {mode!r}."
            )
        self.mode = mode
        self._scaler: MinMaxScaler | None = None

    def fit(self, usage) -> "UtilizationNormalizer":
        usage = np.asarray(usage, dtype=np.float64)
        if usage.ndim != 1:
            raise ValueError(f"usage must be 1-D, got shape {usage.shape}.")
        if self.mode == "minmax":
            self._scaler = MinMaxScaler().fit(usage.reshape(-1, 1))
        return self

    def transform(self, usage) -> np.ndarray:
        usage = np.asarray(usage, dtype=np.float64)
        if self.mode == "capacity":
            return scale_by_capacity(usage)
        if self._scaler is None:
            raise RuntimeError("minmax normalizer used before fit().")
        return self._scaler.transform(usage.reshape(-1, 1)).ravel()

    def inverse_transform(self, scaled) -> np.ndarray:
        scaled = np.asarray(scaled, dtype=np.float64)
        if self.mode == "capacity":
            return scaled * SECONDS_PER_DAY
        if self._scaler is None:
            raise RuntimeError("minmax normalizer used before fit().")
        return self._scaler.inverse_transform(scaled.reshape(-1, 1)).ravel()

    def fit_transform(self, usage) -> np.ndarray:
        return self.fit(usage).transform(usage)
