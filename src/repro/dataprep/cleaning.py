"""Data cleaning: missing and inconsistent daily-usage values.

Step (i) of the Section-3 preparation chain: "Data cleaning entails
properly handling missing values and inconsistent values."  Raw daily
series coming out of the cloud store can contain:

* **missing** days (NaN) — lost uploads or the vehicle being offline;
* **inconsistent** values — negative working time, or totals exceeding
  86 400 s/day (duplicated uploads, corrupted frames).

Policies are explicit and recorded in a :class:`CleaningReport` so the
preparation pipeline remains auditable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CleaningReport", "clean_daily_usage", "MISSING_POLICIES",
           "INCONSISTENT_POLICIES"]

SECONDS_PER_DAY = 86_400.0

MISSING_POLICIES = ("zero", "interpolate", "ffill")
INCONSISTENT_POLICIES = ("clip", "null")


@dataclass(frozen=True)
class CleaningReport:
    """What :func:`clean_daily_usage` changed.

    Attributes
    ----------
    n_days:
        Series length.
    n_missing:
        Days that had no value at all.
    n_negative:
        Days with negative working time.
    n_overflow:
        Days exceeding 86 400 seconds.
    missing_policy, inconsistent_policy:
        Policies applied.
    """

    n_days: int
    n_missing: int
    n_negative: int
    n_overflow: int
    missing_policy: str
    inconsistent_policy: str

    @property
    def n_inconsistent(self) -> int:
        return self.n_negative + self.n_overflow

    @property
    def fraction_touched(self) -> float:
        if self.n_days == 0:
            return 0.0
        return (self.n_missing + self.n_inconsistent) / self.n_days


def _fill_missing(series: np.ndarray, policy: str) -> np.ndarray:
    missing = ~np.isfinite(series)
    if not missing.any():
        return series
    out = series.copy()
    if policy == "zero":
        out[missing] = 0.0
        return out
    valid_idx = np.nonzero(~missing)[0]
    if valid_idx.size == 0:
        # Nothing to anchor on: all-missing series becomes all-zero.
        return np.zeros_like(out)
    if policy == "interpolate":
        all_idx = np.arange(out.size)
        out[missing] = np.interp(
            all_idx[missing], valid_idx, out[valid_idx]
        )
        return out
    if policy == "ffill":
        # Forward-fill; leading gap falls back to 0 (vehicle not yet seen).
        last = 0.0
        for i in range(out.size):
            if missing[i]:
                out[i] = last
            else:
                last = out[i]
        return out
    raise ValueError(
        f"Unknown missing policy {policy!r}; choose from {MISSING_POLICIES}."
    )


def clean_daily_usage(
    raw,
    *,
    missing_policy: str = "zero",
    inconsistent_policy: str = "clip",
) -> tuple[np.ndarray, CleaningReport]:
    """Clean a raw daily utilization series.

    Parameters
    ----------
    raw:
        1-D array; NaN marks missing days.
    missing_policy:
        ``"zero"`` (default — an unreported day is most plausibly an
        unused day), ``"interpolate"`` or ``"ffill"``.
    inconsistent_policy:
        ``"clip"`` (default — clamp into ``[0, 86400]``) or ``"null"``
        (demote inconsistent values to missing, then apply the missing
        policy).

    Returns
    -------
    (clean_series, report)
    """
    series = np.asarray(raw, dtype=np.float64).copy()
    if series.ndim != 1:
        raise ValueError(f"raw must be 1-D, got shape {series.shape}.")
    if missing_policy not in MISSING_POLICIES:
        raise ValueError(
            f"Unknown missing policy {missing_policy!r}; choose from "
            f"{MISSING_POLICIES}."
        )
    if inconsistent_policy not in INCONSISTENT_POLICIES:
        raise ValueError(
            f"Unknown inconsistent policy {inconsistent_policy!r}; choose "
            f"from {INCONSISTENT_POLICIES}."
        )

    # Infinities are treated as inconsistent, not missing.
    series[np.isinf(series)] = (
        -1.0 if inconsistent_policy == "clip" else np.nan
    )
    n_missing = int(np.sum(~np.isfinite(series)))

    finite = np.isfinite(series)
    negative = finite & (series < 0.0)
    overflow = finite & (series > SECONDS_PER_DAY)
    n_negative = int(negative.sum())
    n_overflow = int(overflow.sum())

    if inconsistent_policy == "clip":
        series[negative] = 0.0
        series[overflow] = SECONDS_PER_DAY
    else:
        series[negative | overflow] = np.nan

    series = _fill_missing(series, missing_policy)

    report = CleaningReport(
        n_days=series.size,
        n_missing=n_missing,
        n_negative=n_negative,
        n_overflow=n_overflow,
        missing_policy=missing_policy,
        inconsistent_policy=inconsistent_policy,
    )
    return series, report
