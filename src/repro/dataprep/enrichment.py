"""Data enrichment: derived maintenance series and usage statistics.

Step (iv) of Section 3.  Enrichment attaches to the clean daily series
the derived quantities the predictors consume — the cycle-aware series
``C``, ``L``, ``D`` of Section 2 (delegated to :mod:`repro.core.cycles`)
plus rolling usage statistics that describe the recent regime.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.cycles import SeriesBundle, derive_series

__all__ = ["EnrichedSeries", "enrich_usage", "rolling_mean", "rolling_std"]


def rolling_mean(series, window: int) -> np.ndarray:
    """Trailing mean over the previous ``window`` days (inclusive).

    Entry ``t`` averages ``series[max(0, t-window+1) : t+1]``; early
    entries use the shorter available prefix.
    """
    series = np.asarray(series, dtype=np.float64)
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}.")
    out = np.empty_like(series)
    csum = np.concatenate([[0.0], np.cumsum(series)])
    for t in range(series.size):
        lo = max(0, t - window + 1)
        out[t] = (csum[t + 1] - csum[lo]) / (t + 1 - lo)
    return out


def rolling_std(series, window: int) -> np.ndarray:
    """Trailing standard deviation, same alignment as :func:`rolling_mean`."""
    series = np.asarray(series, dtype=np.float64)
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}.")
    out = np.empty_like(series)
    for t in range(series.size):
        lo = max(0, t - window + 1)
        out[t] = series[lo : t + 1].std()
    return out


@dataclass(frozen=True)
class EnrichedSeries:
    """Clean usage plus every derived series the predictors may need."""

    usage: np.ndarray
    t_v: float
    bundle: SeriesBundle
    rolling_mean_7: np.ndarray
    rolling_std_7: np.ndarray

    @property
    def days_since_maintenance(self) -> np.ndarray:
        return self.bundle.days_since_maintenance

    @property
    def usage_left(self) -> np.ndarray:
        return self.bundle.usage_left

    @property
    def days_to_maintenance(self) -> np.ndarray:
        return self.bundle.days_to_maintenance


def enrich_usage(usage, t_v: float) -> EnrichedSeries:
    """Attach ``C``/``L``/``D`` and rolling statistics to a clean series."""
    usage = np.asarray(usage, dtype=np.float64)
    bundle = derive_series(usage, t_v)
    return EnrichedSeries(
        usage=usage,
        t_v=float(t_v),
        bundle=bundle,
        rolling_mean_7=rolling_mean(usage, 7),
        rolling_std_7=rolling_std(usage, 7),
    )
