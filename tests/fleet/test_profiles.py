"""Unit tests for repro.fleet.profiles."""

import dataclasses

import pytest

from repro.fleet.profiles import (
    ARCHETYPES,
    BURSTY,
    LIGHT_DUTY,
    REGIME_SWITCHER,
    SEASONAL,
    STEADY_WORKER,
    UsageProfile,
)


class TestArchetypes:
    def test_five_distinct_archetypes(self):
        assert len(ARCHETYPES) == 5
        assert len({p.name for p in ARCHETYPES}) == 5

    def test_steady_worker_matches_figure1(self):
        # Figure 1's v1: 20-30 k s/day, idle every 10-15 working days.
        assert 20_000 <= STEADY_WORKER.work_day_mean <= 30_000
        assert 1 / 15 <= STEADY_WORKER.p_work_to_idle <= 1 / 10

    def test_regime_switcher_has_long_idle(self):
        assert REGIME_SWITCHER.long_idle_rate > 0
        assert REGIME_SWITCHER.long_idle_mean_days >= 14

    def test_seasonal_has_amplitude(self):
        assert SEASONAL.seasonal_amplitude > 0

    def test_light_duty_is_lightest(self):
        assert LIGHT_DUTY.work_day_mean == min(
            p.work_day_mean for p in ARCHETYPES
        )

    def test_all_have_first_cycle_attenuation(self):
        for profile in ARCHETYPES:
            assert profile.first_cycle_factor < 1.0

    def test_bursty_has_highest_relative_variance(self):
        cv = {p.name: p.work_day_sd / p.work_day_mean for p in ARCHETYPES}
        assert max(cv, key=cv.get) == BURSTY.name


class TestValidation:
    def base(self, **over):
        params = dict(name="x", work_day_mean=20_000.0, work_day_sd=4_000.0)
        params.update(over)
        return params

    @pytest.mark.parametrize(
        "over",
        [
            {"work_day_mean": 0.0},
            {"work_day_sd": -1.0},
            {"p_work_to_idle": 1.5},
            {"p_idle_to_work": -0.1},
            {"long_idle_rate": 2.0},
            {"seasonal_amplitude": 1.0},
            {"long_idle_rate": 0.1, "long_idle_mean_days": 0.0},
            {"first_cycle_factor": 0.0},
            {"regime_mean_days": -1.0},
            {"regime_spread": 1.0},
            {"annual_drift": 0.9},
        ],
    )
    def test_invalid_profiles_rejected(self, over):
        with pytest.raises(ValueError):
            UsageProfile(**self.base(**over))

    def test_profiles_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            STEADY_WORKER.work_day_mean = 1.0
