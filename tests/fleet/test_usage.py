"""Unit tests for repro.fleet.usage (DailyUsageSimulator)."""

import numpy as np
import pytest

from repro.fleet.profiles import (
    REGIME_SWITCHER,
    STEADY_WORKER,
    UsageProfile,
)
from repro.fleet.usage import SECONDS_PER_DAY, DailyUsageSimulator


def plain_profile(**over):
    """A profile with every extra effect disabled, for isolation."""
    params = dict(
        name="plain",
        work_day_mean=20_000.0,
        work_day_sd=2_000.0,
        regime_mean_days=0.0,
        regime_spread=0.0,
        annual_drift=0.0,
        first_cycle_factor=1.0,
    )
    params.update(over)
    return UsageProfile(**params)


class TestBasicGeneration:
    def test_length_and_bounds(self, rng):
        sim = DailyUsageSimulator(STEADY_WORKER)
        usage = sim.generate(400, rng)
        assert usage.shape == (400,)
        assert usage.min() >= 0.0
        assert usage.max() <= SECONDS_PER_DAY

    def test_zero_days(self, rng):
        assert DailyUsageSimulator(STEADY_WORKER).generate(0, rng).size == 0

    def test_negative_days_rejected(self, rng):
        with pytest.raises(ValueError):
            DailyUsageSimulator(STEADY_WORKER).generate(-1, rng)

    def test_deterministic_for_seed(self):
        sim = DailyUsageSimulator(STEADY_WORKER)
        a = sim.generate(200, np.random.default_rng(5))
        b = sim.generate(200, np.random.default_rng(5))
        assert np.array_equal(a, b)

    def test_working_days_near_profile_mean(self):
        sim = DailyUsageSimulator(plain_profile(), t_v=None)
        usage = sim.generate(2000, np.random.default_rng(0))
        working = usage[usage > 0]
        assert working.mean() == pytest.approx(20_000.0, rel=0.1)

    def test_invalid_t_v(self):
        with pytest.raises(ValueError, match="t_v"):
            DailyUsageSimulator(STEADY_WORKER, t_v=0.0)


class TestIdleBehaviour:
    def test_idle_days_exist(self):
        sim = DailyUsageSimulator(plain_profile(), t_v=None)
        usage = sim.generate(1000, np.random.default_rng(1))
        assert (usage == 0).sum() > 0

    def test_long_idle_spells_in_regime_switcher(self):
        sim = DailyUsageSimulator(REGIME_SWITCHER, t_v=None)
        usage = sim.generate(1500, np.random.default_rng(2))
        # Find the longest run of zero days: switchers park for weeks.
        is_zero = usage == 0
        longest = max(
            (len(list(g)) for v, g in __import__("itertools").groupby(is_zero) if v),
            default=0,
        )
        assert longest >= 14

    def test_steady_worker_rarely_parks_long(self):
        sim = DailyUsageSimulator(
            plain_profile(p_work_to_idle=1 / 12, p_idle_to_work=0.9),
            t_v=None,
        )
        usage = sim.generate(1500, np.random.default_rng(3))
        import itertools

        longest = max(
            (len(list(g)) for v, g in itertools.groupby(usage == 0) if v),
            default=0,
        )
        assert longest <= 10


class TestFirstCycleRamp:
    def test_first_cycle_lighter_than_rest(self):
        profile = plain_profile(first_cycle_factor=0.5)
        sim = DailyUsageSimulator(profile, t_v=2_000_000.0)
        usage = sim.generate(1500, np.random.default_rng(4))
        cumulative = np.cumsum(usage)
        first_cycle_end = np.searchsorted(cumulative, 2_000_000.0)
        first = usage[: first_cycle_end + 1]
        later = usage[first_cycle_end + 1 :]
        assert first[first > 0].mean() < later[later > 0].mean()

    def test_ramp_factor_boundaries(self):
        profile = plain_profile(first_cycle_factor=0.5)
        sim = DailyUsageSimulator(profile, t_v=1000.0)
        assert sim._first_cycle_ramp(0.0) == pytest.approx(0.5)
        assert sim._first_cycle_ramp(500.0) == pytest.approx(0.75)
        assert sim._first_cycle_ramp(1000.0) == 1.0
        assert sim._first_cycle_ramp(5000.0) == 1.0

    def test_no_t_v_disables_ramp(self):
        sim = DailyUsageSimulator(plain_profile(first_cycle_factor=0.3), t_v=None)
        assert sim._first_cycle_ramp(0.0) == 1.0


class TestSeasonality:
    def test_seasonal_factor_oscillates(self):
        profile = plain_profile(seasonal_amplitude=0.5)
        sim = DailyUsageSimulator(profile)
        factors = [sim._seasonal_factor(d) for d in range(366)]
        assert max(factors) == pytest.approx(1.5, abs=0.01)
        assert min(factors) == pytest.approx(0.5, abs=0.01)

    def test_no_amplitude_constant(self):
        sim = DailyUsageSimulator(plain_profile())
        assert sim._seasonal_factor(100) == 1.0


class TestDrift:
    def test_drift_makes_late_days_heavier(self):
        profile = plain_profile(annual_drift=0.3, p_work_to_idle=0.0, p_idle_to_work=1.0)
        sim = DailyUsageSimulator(profile, t_v=None)
        usage = sim.generate(1460, np.random.default_rng(5))
        first_year = usage[:365]
        last_year = usage[-365:]
        assert last_year.mean() > 1.3 * first_year.mean()


class TestExpectedCycleDays:
    def test_matches_simulation_roughly(self):
        profile = plain_profile(p_work_to_idle=1 / 10, p_idle_to_work=0.9)
        sim = DailyUsageSimulator(profile, t_v=2_000_000.0)
        expected = sim.expected_cycle_days()
        # Simulate and segment: mean completed-cycle length should agree.
        from repro.core.cycles import segment_cycles

        usage = sim.generate(3000, np.random.default_rng(6))
        cycles = [c for c in segment_cycles(usage, 2_000_000.0) if c.completed]
        observed = np.mean([c.n_days for c in cycles[1:]])  # skip ramped first
        assert observed == pytest.approx(expected, rel=0.25)

    def test_requires_t_v(self):
        sim = DailyUsageSimulator(plain_profile(), t_v=None)
        with pytest.raises(ValueError):
            sim.expected_cycle_days()
