"""Calibration tests: the synthetic fleet must match the paper's stats.

These assertions pin the generator to the published characteristics of
the proprietary Tierra dataset (see DESIGN.md section 2); loosening them
means the reproduction's conclusions no longer transfer.
"""

import numpy as np
import pytest

from repro.fleet.calibration import calibrate
from repro.fleet.generator import FleetGenerator


@pytest.fixture(scope="module")
def report(paper_fleet):
    return calibrate(paper_fleet)


# paper_fleet fixture lives in tests/conftest.py (session scope); redeclare
# module-scoped calibration on top of it.
@pytest.fixture(scope="module")
def paper_fleet():
    return FleetGenerator(seed=0).generate()


class TestPaperScaleCalibration:
    def test_fleet_dimensions(self, report):
        assert report.n_vehicles == 24
        assert 1700 <= report.n_days <= 1750

    def test_working_day_utilization_range(self, report):
        # Figure 1: typical working days run 10-30 k seconds.
        assert 15_000 <= report.working_day_mean <= 30_000

    def test_cycle_lengths_match_figure2(self, report):
        # Figure 2: cycles mostly 65-105 days, with longer first cycles;
        # we accept a band around that.
        assert 55 <= report.cycle_length_p10 <= 90
        assert 75 <= report.cycle_length_median <= 120
        assert report.cycle_length_p90 <= 260

    def test_first_cycle_lighter(self, report):
        # Section 4.4: first-cycle mean daily usage ~30 % lower (0.77);
        # our ramp+drift model lands in a looser band below 1.
        assert 0.4 <= report.first_cycle_ratio <= 0.9

    def test_first_cycle_absolute_level(self, report):
        # Paper: 10 676 s within the first cycle.
        assert 7_000 <= report.first_cycle_mean_daily <= 15_000

    def test_zero_usage_days_exist_but_minority(self, report):
        assert 0.05 <= report.zero_usage_fraction <= 0.45

    def test_summary_renders(self, report):
        text = report.summary()
        assert "24 vehicles" in text
        assert "cycle length" in text


class TestCalibrationAcrossSeeds:
    @pytest.mark.parametrize("seed", [1, 2])
    def test_stable_across_seeds(self, seed):
        report = calibrate(FleetGenerator(n_vehicles=10, seed=seed).generate())
        assert 10_000 <= report.working_day_mean <= 32_000
        assert report.first_cycle_ratio < 0.95
        assert np.isfinite(report.cycle_length_median)


class TestEdgeCases:
    def test_empty_fleet_rejected(self):
        from repro.fleet.generator import Fleet

        with pytest.raises(ValueError):
            calibrate(Fleet(vehicles=[], t_v=2e6))
