"""Unit tests for repro.fleet.vehicle."""

import datetime as dt

import numpy as np
import pytest

from repro.fleet.profiles import STEADY_WORKER
from repro.fleet.vehicle import SimulatedVehicle, VehicleSpec


def spec(**over):
    params = dict(
        vehicle_id="v01",
        vehicle_type="excavator",
        model="TX-500",
        t_v=2_000_000.0,
        profile=STEADY_WORKER,
    )
    params.update(over)
    return VehicleSpec(**params)


class TestVehicleSpec:
    def test_valid_spec(self):
        s = spec()
        assert s.vehicle_id == "v01"

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError, match="vehicle_id"):
            spec(vehicle_id="")

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ValueError, match="t_v"):
            spec(t_v=0.0)


class TestSimulatedVehicle:
    def test_basic_properties(self):
        usage = np.array([1000.0, 0.0, 2000.0])
        vehicle = SimulatedVehicle(spec=spec(), usage=usage)
        assert vehicle.vehicle_id == "v01"
        assert vehicle.n_days == 3
        assert vehicle.total_usage == 3000.0

    def test_usage_bounds_enforced(self):
        with pytest.raises(ValueError, match="86400"):
            SimulatedVehicle(spec=spec(), usage=np.array([90_000.0]))
        with pytest.raises(ValueError):
            SimulatedVehicle(spec=spec(), usage=np.array([-1.0]))

    def test_usage_must_be_1d(self):
        with pytest.raises(ValueError, match="1-D"):
            SimulatedVehicle(spec=spec(), usage=np.zeros((2, 2)))

    def test_date_of_day(self):
        vehicle = SimulatedVehicle(
            spec=spec(),
            usage=np.zeros(10),
            start_date=dt.date(2015, 1, 1),
        )
        assert vehicle.date_of_day(0) == dt.date(2015, 1, 1)
        assert vehicle.date_of_day(9) == dt.date(2015, 1, 10)

    def test_date_of_day_bounds(self):
        vehicle = SimulatedVehicle(spec=spec(), usage=np.zeros(5))
        with pytest.raises(IndexError):
            vehicle.date_of_day(5)
        with pytest.raises(IndexError):
            vehicle.date_of_day(-1)

    def test_usage_window_is_a_copy(self):
        vehicle = SimulatedVehicle(spec=spec(), usage=np.arange(5.0))
        window = vehicle.usage_window(1, 3)
        window[0] = 999.0
        assert vehicle.usage[1] == 1.0

    def test_usage_window_bounds(self):
        vehicle = SimulatedVehicle(spec=spec(), usage=np.zeros(5))
        with pytest.raises(IndexError):
            vehicle.usage_window(0, 6)
        with pytest.raises(IndexError):
            vehicle.usage_window(3, 2)
