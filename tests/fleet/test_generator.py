"""Unit tests for repro.fleet.generator."""

import datetime as dt

import numpy as np
import pytest

from repro.fleet.generator import DEFAULT_END, DEFAULT_START, Fleet, FleetGenerator
from repro.fleet.profiles import ARCHETYPES


class TestFleetGenerator:
    def test_paper_scale_defaults(self):
        gen = FleetGenerator()
        assert gen.n_vehicles == 24
        assert gen.t_v == 2_000_000.0
        assert gen.start_date == dt.date(2015, 1, 1)
        assert gen.end_date == dt.date(2019, 9, 30)
        # Jan 2015 - Sep 2019: about 4.75 years of daily data.
        assert 1700 <= gen.n_days <= 1750

    def test_deterministic_for_seed(self):
        a = FleetGenerator(n_vehicles=3, seed=11).generate()
        b = FleetGenerator(n_vehicles=3, seed=11).generate()
        for va, vb in zip(a, b):
            assert np.array_equal(va.usage, vb.usage)
            assert va.spec == vb.spec

    def test_seeds_differ(self):
        a = FleetGenerator(n_vehicles=2, seed=1).generate()
        b = FleetGenerator(n_vehicles=2, seed=2).generate()
        assert not np.array_equal(a.vehicles[0].usage, b.vehicles[0].usage)

    def test_archetypes_assigned_round_robin(self, small_fleet):
        names = [v.spec.profile.name for v in small_fleet]
        expected = [ARCHETYPES[i % len(ARCHETYPES)].name for i in range(len(names))]
        assert names == expected

    def test_vehicle_ids_sequential(self, small_fleet):
        assert small_fleet.vehicle_ids[:3] == ["v01", "v02", "v03"]

    def test_all_series_same_length(self, small_fleet):
        lengths = {v.n_days for v in small_fleet}
        assert len(lengths) == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_vehicles": 0},
            {"t_v": -1.0},
            {"end_date": dt.date(2014, 1, 1)},
            {"archetypes": ()},
        ],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ValueError):
            FleetGenerator(**kwargs)


class TestFleet:
    def test_lookup_by_id(self, small_fleet):
        vehicle = small_fleet["v02"]
        assert vehicle.vehicle_id == "v02"

    def test_unknown_id(self, small_fleet):
        with pytest.raises(KeyError, match="Unknown vehicle"):
            small_fleet["v99"]

    def test_len_and_iter(self, small_fleet):
        assert len(small_fleet) == 6
        assert len(list(small_fleet)) == 6

    def test_usage_matrix_shape(self, small_fleet):
        matrix = small_fleet.usage_matrix()
        assert matrix.shape == (6, small_fleet.vehicles[0].n_days)

    def test_duplicate_ids_rejected(self, small_fleet):
        vehicles = list(small_fleet.vehicles) + [small_fleet.vehicles[0]]
        with pytest.raises(ValueError, match="Duplicate"):
            Fleet(vehicles=vehicles, t_v=2e6)

    def test_split_is_partition(self, small_fleet):
        train, test = small_fleet.split(0.7, rng=0)
        assert sorted(train + test) == sorted(small_fleet.vehicle_ids)
        assert set(train).isdisjoint(test)
        assert len(train) == 4  # round(0.7 * 6)

    def test_split_never_empty_sides(self, small_fleet):
        train, test = small_fleet.split(0.99, rng=0)
        assert len(test) >= 1
        train, test = small_fleet.split(0.01, rng=0)
        assert len(train) >= 1

    def test_split_invalid_fraction(self, small_fleet):
        with pytest.raises(ValueError):
            small_fleet.split(1.0)

    def test_metadata_recorded(self, small_fleet):
        assert "start_date" in small_fleet.metadata
        assert small_fleet.metadata["archetypes"] == [
            p.name for p in ARCHETYPES
        ]
