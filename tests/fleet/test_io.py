"""Unit tests for repro.fleet.io (CSV/JSON persistence)."""

import numpy as np
import pytest

from repro.fleet.io import load_fleet, save_fleet


class TestRoundtrip:
    def test_usage_preserved(self, small_fleet, tmp_path):
        save_fleet(small_fleet, tmp_path)
        loaded = load_fleet(tmp_path)
        assert loaded.vehicle_ids == small_fleet.vehicle_ids
        for original, restored in zip(small_fleet, loaded):
            assert np.allclose(original.usage, restored.usage, atol=1e-3)

    def test_specs_preserved(self, small_fleet, tmp_path):
        save_fleet(small_fleet, tmp_path)
        loaded = load_fleet(tmp_path)
        for original, restored in zip(small_fleet, loaded):
            assert restored.spec.vehicle_type == original.spec.vehicle_type
            assert restored.spec.model == original.spec.model
            assert restored.spec.t_v == original.spec.t_v
            assert restored.spec.profile == original.spec.profile
            assert restored.start_date == original.start_date

    def test_metadata_preserved(self, small_fleet, tmp_path):
        save_fleet(small_fleet, tmp_path)
        loaded = load_fleet(tmp_path)
        assert loaded.t_v == small_fleet.t_v
        assert loaded.seed == small_fleet.seed
        assert loaded.metadata == small_fleet.metadata

    def test_custom_stem(self, small_fleet, tmp_path):
        usage_path, meta_path = save_fleet(small_fleet, tmp_path, stem="alpha")
        assert usage_path.name == "alpha_usage.csv"
        assert meta_path.name == "alpha_meta.json"
        loaded = load_fleet(tmp_path, stem="alpha")
        assert len(loaded) == len(small_fleet)

    def test_missing_files_raise(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_fleet(tmp_path)

    def test_csv_is_long_format_with_header(self, small_fleet, tmp_path):
        usage_path, _ = save_fleet(small_fleet, tmp_path)
        header = usage_path.read_text().splitlines()[0]
        assert header == "vehicle_id,day,date,usage_seconds"
