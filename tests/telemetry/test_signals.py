"""Unit tests for repro.telemetry.signals."""

import numpy as np
import pytest

from repro.telemetry.signals import (
    DEFAULT_CATALOG,
    ENGINE_SPEED,
    OIL_PRESSURE,
    SignalCatalog,
    SignalSpec,
)


class TestSignalSpec:
    def test_encode_decode_roundtrip_within_resolution(self):
        value = 1234.5
        raw = ENGINE_SPEED.encode(value)
        back = ENGINE_SPEED.decode(raw)
        assert back == pytest.approx(value, abs=ENGINE_SPEED.resolution)

    def test_encode_clips_to_raw_range(self):
        assert OIL_PRESSURE.encode(-100.0) == 0
        assert OIL_PRESSURE.encode(1e9) == OIL_PRESSURE.raw_max

    def test_decode_rejects_out_of_range_raw(self):
        with pytest.raises(ValueError, match="Raw value"):
            OIL_PRESSURE.decode(OIL_PRESSURE.raw_max + 1)
        with pytest.raises(ValueError):
            OIL_PRESSURE.decode(-1)

    def test_offset_encoding(self):
        # Coolant temperature uses a -40 degC offset.
        from repro.telemetry.signals import COOLANT_TEMPERATURE

        raw = COOLANT_TEMPERATURE.encode(0.0)
        assert raw == 40
        assert COOLANT_TEMPERATURE.decode(raw) == 0.0

    def test_consistency_check(self):
        assert ENGINE_SPEED.is_consistent(1500.0)
        assert not ENGINE_SPEED.is_consistent(-5.0)
        assert not ENGINE_SPEED.is_consistent(9000.0)
        assert not ENGINE_SPEED.is_consistent(np.nan)

    def test_raw_max_scales_with_byte_length(self):
        assert OIL_PRESSURE.raw_max == 255  # 1 byte
        assert ENGINE_SPEED.raw_max == 65535  # 2 bytes

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"minimum": 10.0, "maximum": 5.0},
            {"resolution": 0.0},
            {"byte_length": 3},
        ],
    )
    def test_invalid_spec(self, kwargs):
        base = dict(
            name="x", spn=999, unit="u", minimum=0.0, maximum=100.0
        )
        base.update(kwargs)
        with pytest.raises(ValueError):
            SignalSpec(**base)


class TestSignalCatalog:
    def test_default_catalog_contents(self):
        assert "engine_speed" in DEFAULT_CATALOG
        assert len(DEFAULT_CATALOG) == 7

    def test_lookup_by_name_and_spn(self):
        assert DEFAULT_CATALOG.by_name("engine_speed").spn == 190
        assert DEFAULT_CATALOG.by_spn(190).name == "engine_speed"

    def test_unknown_lookups_raise(self):
        with pytest.raises(KeyError, match="Unknown signal"):
            DEFAULT_CATALOG.by_name("flux_capacitor")
        with pytest.raises(KeyError, match="Unknown SPN"):
            DEFAULT_CATALOG.by_spn(424242)

    def test_duplicate_name_rejected(self):
        catalog = SignalCatalog([ENGINE_SPEED])
        dup = SignalSpec(
            name="engine_speed", spn=1, unit="rpm", minimum=0, maximum=1
        )
        with pytest.raises(ValueError, match="Duplicate signal name"):
            catalog.register(dup)

    def test_duplicate_spn_rejected(self):
        catalog = SignalCatalog([ENGINE_SPEED])
        dup = SignalSpec(
            name="other", spn=ENGINE_SPEED.spn, unit="u", minimum=0, maximum=1
        )
        with pytest.raises(ValueError, match="Duplicate SPN"):
            catalog.register(dup)

    def test_iteration_and_names(self):
        names = {spec.name for spec in DEFAULT_CATALOG}
        assert names == set(DEFAULT_CATALOG.names)
