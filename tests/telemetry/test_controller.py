"""Unit tests for repro.telemetry.controller."""

import numpy as np
import pytest

from repro.telemetry.canbus import SignalTrafficGenerator, encode_signal_frame
from repro.telemetry.controller import OnboardController, SignalStats
from repro.telemetry.signals import DEFAULT_CATALOG, ENGINE_SPEED, OIL_PRESSURE


class TestSignalStats:
    def test_streaming_moments(self):
        stats = SignalStats()
        for value in [1.0, 2.0, 3.0]:
            stats.update(value)
        assert stats.count == 3
        assert stats.mean == pytest.approx(2.0)
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0

    def test_empty_snapshot_is_nan(self):
        snap = SignalStats().snapshot()
        assert snap["count"] == 0
        assert np.isnan(snap["mean"])


def make_controller(interval=3600.0):
    return OnboardController("v01", report_interval_s=interval)


class TestWorkingTimeIntegration:
    def test_working_window_accumulates_time(self):
        gen = SignalTrafficGenerator(sample_rate_hz=2.0, seed=0)
        controller = make_controller()
        controller.process_frames(gen.generate_window(0.0, 600.0, working=True))
        reports = controller.flush(now=600.0)
        assert len(reports) == 1
        # ~600 s of work observed at 2 Hz sampling.
        assert reports[0].working_seconds == pytest.approx(600.0, rel=0.05)

    def test_idle_window_accumulates_nothing(self):
        gen = SignalTrafficGenerator(sample_rate_hz=2.0, seed=0)
        controller = make_controller()
        controller.process_frames(gen.generate_window(0.0, 600.0, working=False))
        reports = controller.flush(now=600.0)
        assert len(reports) == 1
        assert reports[0].working_seconds == 0.0

    def test_mixed_day_splits_correctly(self):
        gen = SignalTrafficGenerator(sample_rate_hz=2.0, seed=0)
        controller = make_controller()
        controller.process_frames(gen.generate_window(0.0, 300.0, working=True))
        controller.process_frames(gen.generate_window(300.0, 300.0, working=False))
        reports = controller.flush(now=600.0)
        total = sum(r.working_seconds for r in reports)
        assert total == pytest.approx(300.0, rel=0.1)

    def test_periodic_report_cutting(self):
        gen = SignalTrafficGenerator(sample_rate_hz=1.0, seed=0)
        controller = make_controller(interval=100.0)
        controller.process_frames(gen.generate_window(0.0, 350.0, working=True))
        reports = controller.flush(now=350.0)
        assert len(reports) == 4  # 3 full periods + 1 partial
        for report in reports:
            assert report.vehicle_id == "v01"
            assert report.period_end >= report.period_start

    def test_engine_hours_accumulate_across_reports(self):
        gen = SignalTrafficGenerator(sample_rate_hz=1.0, seed=0)
        controller = make_controller(interval=100.0)
        controller.process_frames(gen.generate_window(0.0, 400.0, working=True))
        reports = controller.flush(now=400.0)
        hours = [r.engine_hours_total for r in reports]
        assert hours == sorted(hours)
        assert hours[-1] == pytest.approx(400.0 / 3600.0, rel=0.1)


class TestInconsistentFrames:
    def test_out_of_range_values_counted_not_integrated(self):
        from repro.telemetry.canbus import CANFrame

        controller = make_controller()
        # Max raw (65535) decodes to 8191.875 rpm — beyond the 8000 rpm
        # physical maximum, hence inconsistent.
        bad = CANFrame(
            timestamp=0.0,
            arbitration_id=ENGINE_SPEED.spn,
            data=(65535).to_bytes(2, "little"),
        )
        controller.process_frame(bad)
        reports = controller.flush(now=1.0)
        assert reports[0].inconsistent_frames == 1
        assert "engine_speed" not in reports[0].signal_stats

    def test_unknown_arbitration_id_ignored(self):
        from repro.telemetry.canbus import CANFrame

        controller = make_controller()
        controller.process_frame(
            CANFrame(timestamp=0.0, arbitration_id=424242, data=b"\x00")
        )
        assert controller.flush(now=1.0) == []


class TestSignalStatsInReports:
    def test_stats_cover_all_catalog_signals(self):
        gen = SignalTrafficGenerator(sample_rate_hz=2.0, seed=0)
        controller = make_controller()
        controller.process_frames(gen.generate_window(0.0, 100.0, working=True))
        report = controller.flush(now=100.0)[0]
        assert set(report.signal_stats) == set(DEFAULT_CATALOG.names)
        oil = report.signal_stats["oil_pressure"]
        assert OIL_PRESSURE.minimum <= oil["mean"] <= OIL_PRESSURE.maximum


class TestControllerValidation:
    def test_invalid_interval(self):
        with pytest.raises(ValueError, match="report_interval_s"):
            OnboardController("v01", report_interval_s=0.0)

    def test_working_signal_needs_threshold(self):
        with pytest.raises(ValueError, match="working_threshold"):
            OnboardController("v01", working_signal="oil_pressure")

    def test_flush_idempotent(self):
        controller = make_controller()
        assert controller.flush() == []
        assert controller.flush() == []
