"""Unit tests for repro.telemetry.cloud."""

import numpy as np
import pytest

from repro.telemetry.cloud import SECONDS_PER_DAY, CloudStore
from repro.telemetry.controller import UsageReport


def report(vehicle="v01", start=0.0, end=3600.0, seconds=1800.0):
    return UsageReport(
        vehicle_id=vehicle,
        period_start=start,
        period_end=end,
        working_seconds=seconds,
        engine_hours_total=seconds / 3600.0,
        signal_stats={},
    )


class TestIngestion:
    def test_reliable_store_keeps_everything(self):
        store = CloudStore(seed=0)
        assert store.ingest_many([report(start=i * 3600.0) for i in range(5)]) == 5
        assert store.n_ingested == 5
        assert len(store.reports_for("v01")) == 5

    def test_loss_injection(self):
        store = CloudStore(loss_probability=1.0, seed=0)
        assert not store.ingest(report())
        assert store.n_lost == 1
        assert store.reports_for("v01") == []

    def test_duplication_injection(self):
        store = CloudStore(duplicate_probability=1.0, seed=0)
        store.ingest(report())
        assert store.n_duplicated == 1
        assert len(store.reports_for("v01")) == 2

    def test_vehicle_ids_sorted(self):
        store = CloudStore(seed=0)
        store.ingest(report(vehicle="v02"))
        store.ingest(report(vehicle="v01"))
        assert store.vehicle_ids == ["v01", "v02"]

    def test_reports_sorted_by_period_start(self):
        store = CloudStore(seed=0)
        store.ingest(report(start=7200.0))
        store.ingest(report(start=0.0))
        starts = [r.period_start for r in store.reports_for("v01")]
        assert starts == sorted(starts)

    @pytest.mark.parametrize("field", ["loss_probability", "duplicate_probability"])
    def test_invalid_probability(self, field):
        with pytest.raises(ValueError):
            CloudStore(**{field: -0.1})


class TestDailyAggregation:
    def test_same_day_reports_sum(self):
        store = CloudStore(seed=0)
        store.ingest(report(start=0.0, seconds=1000.0))
        store.ingest(report(start=3600.0, seconds=500.0))
        daily = store.daily_usage("v01")
        assert daily[0] == pytest.approx(1500.0)

    def test_reports_land_on_their_start_day(self):
        store = CloudStore(seed=0)
        store.ingest(report(start=SECONDS_PER_DAY * 3 + 10, seconds=700.0))
        daily = store.daily_usage("v01")
        assert daily == {3: 700.0}

    def test_dense_array_has_nan_gaps(self):
        store = CloudStore(seed=0)
        store.ingest(report(start=0.0, seconds=100.0))
        store.ingest(report(start=SECONDS_PER_DAY * 2, seconds=200.0))
        series = store.daily_usage_array("v01")
        assert series.shape == (3,)
        assert series[0] == 100.0
        assert np.isnan(series[1])
        assert series[2] == 200.0

    def test_explicit_length(self):
        store = CloudStore(seed=0)
        store.ingest(report(start=0.0, seconds=100.0))
        series = store.daily_usage_array("v01", n_days=5)
        assert series.shape == (5,)
        assert np.isnan(series[4])

    def test_unknown_vehicle_empty(self):
        store = CloudStore(seed=0)
        assert store.daily_usage_array("ghost").shape == (0,)

    def test_duplicated_uploads_create_overflow(self):
        """Duplication can push a day past 86 400 s — cleaning's problem."""
        store = CloudStore(duplicate_probability=1.0, seed=0)
        store.ingest(report(seconds=50_000.0))
        daily = store.daily_usage("v01")
        assert daily[0] == pytest.approx(100_000.0)
        assert daily[0] > SECONDS_PER_DAY
