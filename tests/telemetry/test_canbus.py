"""Unit tests for repro.telemetry.canbus."""

import pytest

from repro.telemetry.canbus import (
    CANBus,
    CANFrame,
    SignalTrafficGenerator,
    decode_signal_frame,
    encode_signal_frame,
)
from repro.telemetry.signals import DEFAULT_CATALOG, ENGINE_SPEED


class TestCANFrame:
    def test_valid_frame(self):
        frame = CANFrame(timestamp=1.0, arbitration_id=190, data=b"\x01\x02")
        assert frame.timestamp == 1.0

    def test_payload_size_limit(self):
        with pytest.raises(ValueError, match="8 bytes"):
            CANFrame(timestamp=0.0, arbitration_id=1, data=b"x" * 9)

    def test_arbitration_id_29_bits(self):
        with pytest.raises(ValueError, match="29 bits"):
            CANFrame(timestamp=0.0, arbitration_id=1 << 29, data=b"")


class TestCodec:
    def test_roundtrip(self):
        frame = encode_signal_frame(ENGINE_SPEED, 1500.0, timestamp=12.5)
        name, value = decode_signal_frame(frame)
        assert name == "engine_speed"
        assert value == pytest.approx(1500.0, abs=ENGINE_SPEED.resolution)
        assert frame.timestamp == 12.5

    def test_decode_checks_length(self):
        frame = CANFrame(
            timestamp=0.0, arbitration_id=ENGINE_SPEED.spn, data=b"\x01"
        )
        with pytest.raises(ValueError, match="bytes"):
            decode_signal_frame(frame)

    def test_unknown_spn_raises_keyerror(self):
        frame = CANFrame(timestamp=0.0, arbitration_id=424242, data=b"\x00")
        with pytest.raises(KeyError):
            decode_signal_frame(frame)


class TestCANBus:
    def test_reliable_bus_delivers_everything(self):
        bus = CANBus(seed=0)
        frame = encode_signal_frame(ENGINE_SPEED, 1000.0, 0.0)
        for _ in range(10):
            assert bus.send(frame)
        assert len(bus) == 10
        assert len(bus.drain()) == 10
        assert len(bus) == 0

    def test_drop_probability(self):
        bus = CANBus(drop_probability=1.0, seed=0)
        frame = encode_signal_frame(ENGINE_SPEED, 1000.0, 0.0)
        assert not bus.send(frame)
        assert len(bus) == 0

    def test_partial_drops(self):
        bus = CANBus(drop_probability=0.5, seed=1)
        frame = encode_signal_frame(ENGINE_SPEED, 1000.0, 0.0)
        delivered = sum(bus.send(frame) for _ in range(500))
        assert 150 < delivered < 350

    def test_corruption_changes_payload_sometimes(self):
        bus = CANBus(corrupt_probability=1.0, seed=3)
        frame = encode_signal_frame(ENGINE_SPEED, 1000.0, 0.0)
        n = 50
        for _ in range(n):
            bus.send(frame)
        frames = bus.drain()
        assert len(frames) == n
        assert any(f.data != frame.data for f in frames)

    @pytest.mark.parametrize("field", ["drop_probability", "corrupt_probability"])
    def test_invalid_probability(self, field):
        with pytest.raises(ValueError):
            CANBus(**{field: 1.5})


class TestSignalTrafficGenerator:
    def test_frame_count_matches_rate(self):
        gen = SignalTrafficGenerator(sample_rate_hz=10.0, seed=0)
        frames = gen.generate_window(0.0, duration_s=2.0, working=True)
        assert len(frames) == 20 * len(DEFAULT_CATALOG)

    def test_frames_sorted_by_timestamp(self):
        gen = SignalTrafficGenerator(sample_rate_hz=5.0, seed=0)
        frames = gen.generate_window(0.0, 3.0, working=True)
        times = [f.timestamp for f in frames]
        assert times == sorted(times)

    def test_working_engine_speed_above_threshold(self):
        gen = SignalTrafficGenerator(sample_rate_hz=20.0, seed=0)
        frames = gen.generate_window(0.0, 5.0, working=True)
        speeds = [
            decode_signal_frame(f)[1]
            for f in frames
            if f.arbitration_id == ENGINE_SPEED.spn
        ]
        threshold = ENGINE_SPEED.working_threshold
        assert sum(s >= threshold for s in speeds) / len(speeds) > 0.95

    def test_idle_engine_speed_below_threshold(self):
        gen = SignalTrafficGenerator(sample_rate_hz=20.0, seed=0)
        frames = gen.generate_window(0.0, 5.0, working=False)
        speeds = [
            decode_signal_frame(f)[1]
            for f in frames
            if f.arbitration_id == ENGINE_SPEED.spn
        ]
        threshold = ENGINE_SPEED.working_threshold
        assert all(s < threshold for s in speeds)

    def test_zero_duration_gives_no_frames(self):
        gen = SignalTrafficGenerator(seed=0)
        assert gen.generate_window(0.0, 0.0, working=True) == []

    def test_negative_duration_rejected(self):
        gen = SignalTrafficGenerator(seed=0)
        with pytest.raises(ValueError):
            gen.generate_window(0.0, -1.0, working=True)

    def test_invalid_rate(self):
        with pytest.raises(ValueError, match="sample_rate_hz"):
            SignalTrafficGenerator(sample_rate_hz=0.0)
